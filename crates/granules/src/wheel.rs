//! Hierarchical timer wheel.
//!
//! The execution plane's single source of time: one wheel thread multiplexes
//! every deadline in the system — per-endpoint flush deadlines, parked
//! source-pump backoffs, heartbeat beacons, telemetry sampling ticks — so
//! timer precision no longer depends on a scan tick and the thread count no
//! longer depends on how many timers exist (NEPTUNE §III-B6's argument
//! against per-activity threads, applied to time).
//!
//! Layout: two wheels plus an overflow list.
//!
//! * level 0 — 512 slots x 250 µs ticks ≈ 128 ms revolution;
//! * level 1 — 512 slots x one level-0 revolution ≈ 65.5 s horizon;
//! * overflow — anything beyond the horizon, refiled every full horizon.
//!
//! Insert and cancel are O(1) (hash entry + slot push). Firing takes each
//! due slot as a batch. The wheel sleeps until the *exact* earliest live
//! deadline — computed by an O(live-timers) scan only when the thread is
//! about to go idle — so a 700 µs flush interval fires at 700 µs, not at the
//! next multiple of some polling granularity. Cursor advancement skips
//! empty stretches wholesale (an hour-long idle costs revolutions, not
//! ticks), which keeps catch-up after a long sleep cheap.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Granularity of one level-0 tick.
const TICK_MICROS: u64 = 250;
/// Slots per level; both levels share the fan-out.
const L0_SLOTS: u64 = 512;
const L1_SLOTS: u64 = 512;
/// Ticks covered by level 0 + level 1 together.
const HORIZON_TICKS: u64 = L0_SLOTS * L1_SLOTS;

type TimerCallback = Arc<dyn Fn() + Send + Sync>;

struct WheelEntry {
    deadline: Instant,
    period: Option<Duration>,
    cb: TimerCallback,
}

struct WheelState {
    /// Every tick strictly below `cursor` has been fired and cascaded.
    cursor: u64,
    l0: Vec<Vec<u64>>,
    l1: Vec<Vec<u64>>,
    overflow: Vec<u64>,
    /// Ids currently stored in level-0 slots (including ids whose entry was
    /// cancelled and not yet scrubbed) — lets catch-up skip a whole empty
    /// revolution in one step.
    l0_live: u64,
    entries: HashMap<u64, WheelEntry>,
    next_id: u64,
    shutdown: bool,
}

struct WheelShared {
    state: Mutex<WheelState>,
    cv: Condvar,
    /// Instant of tick 0.
    base: Instant,
    fires: AtomicU64,
}

fn tick_of(base: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(base).as_micros() as u64 / TICK_MICROS
}

/// Place `id` (due at `deadline_tick`) into the level its distance from the
/// cursor selects. Ticks already in the past clamp to the cursor slot so
/// they fire on the next advance.
fn file_entry(st: &mut WheelState, id: u64, deadline_tick: u64) {
    let tick = deadline_tick.max(st.cursor);
    let delta = tick - st.cursor;
    if delta < L0_SLOTS {
        st.l0[(tick % L0_SLOTS) as usize].push(id);
        st.l0_live += 1;
    } else if delta < HORIZON_TICKS {
        st.l1[((tick / L0_SLOTS) % L1_SLOTS) as usize].push(id);
    } else {
        st.overflow.push(id);
    }
}

fn refile(st: &mut WheelState, base: Instant, id: u64) {
    // Cancelled ids are scrubbed here instead of being chased at cancel time.
    let Some(e) = st.entries.get(&id) else { return };
    let tick = tick_of(base, e.deadline);
    file_entry(st, id, tick);
}

/// Called with the cursor sitting on a level-0 boundary: pull the level-1
/// slot covering the upcoming revolution down into level 0 (and, on a full
/// horizon boundary, refile the overflow list first).
fn cascade(st: &mut WheelState, base: Instant) {
    if st.cursor.is_multiple_of(HORIZON_TICKS) {
        let ids = std::mem::take(&mut st.overflow);
        for id in ids {
            refile(st, base, id);
        }
    }
    let slot = ((st.cursor / L0_SLOTS) % L1_SLOTS) as usize;
    let ids = std::mem::take(&mut st.l1[slot]);
    for id in ids {
        // Entries a full level-1 cycle (or more) away land back in level 1
        // or overflow; everything due this revolution drops into level 0.
        refile(st, base, id);
    }
}

/// Fire `id` into `due`; periodic entries are refiled at `deadline + period`
/// (clamped to `now`, so a stalled wheel owes at most one catch-up fire
/// before returning to cadence — "never miss more than one period").
fn fire_id(
    st: &mut WheelState,
    base: Instant,
    now: Instant,
    id: u64,
    due: &mut Vec<TimerCallback>,
) {
    let refile_tick = {
        let Some(e) = st.entries.get_mut(&id) else { return };
        due.push(e.cb.clone());
        match e.period {
            Some(p) => {
                let mut next = e.deadline + p;
                if next <= now {
                    next = now;
                }
                e.deadline = next;
                Some(tick_of(base, next))
            }
            None => None,
        }
    };
    match refile_tick {
        Some(t) => file_entry(st, id, t),
        None => {
            st.entries.remove(&id);
        }
    }
}

/// Advance the cursor to `now`, collecting every due callback. The slot at
/// the current tick is processed *partially*: entries whose sub-tick
/// deadline has not yet passed stay put, so the wheel never fires early.
fn advance(st: &mut WheelState, base: Instant, now: Instant, due: &mut Vec<TimerCallback>) {
    let now_tick = tick_of(base, now);
    while st.cursor < now_tick {
        if st.cursor.is_multiple_of(L0_SLOTS) {
            cascade(st, base);
        }
        if st.l0_live == 0 {
            // Nothing in this revolution: jump to the next cascade boundary
            // (or straight to now) instead of walking empty ticks.
            let next_boundary = (st.cursor / L0_SLOTS + 1) * L0_SLOTS;
            st.cursor = next_boundary.min(now_tick);
            continue;
        }
        let slot = (st.cursor % L0_SLOTS) as usize;
        let ids = std::mem::take(&mut st.l0[slot]);
        st.l0_live -= ids.len() as u64;
        for id in ids {
            fire_id(st, base, now, id, due);
        }
        st.cursor += 1;
    }
    // Partial pass over the slot at the current tick.
    if st.cursor.is_multiple_of(L0_SLOTS) {
        cascade(st, base);
    }
    let slot = (st.cursor % L0_SLOTS) as usize;
    if !st.l0[slot].is_empty() {
        let ids = std::mem::take(&mut st.l0[slot]);
        st.l0_live -= ids.len() as u64;
        for id in ids {
            match st.entries.get(&id) {
                Some(e) if e.deadline <= now => fire_id(st, base, now, id, due),
                Some(_) => {
                    st.l0[slot].push(id);
                    st.l0_live += 1;
                }
                None => {} // cancelled: scrub
            }
        }
    }
}

fn wheel_loop(shared: Arc<WheelShared>) {
    let mut st = shared.state.lock();
    let mut due: Vec<TimerCallback> = Vec::new();
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        advance(&mut st, shared.base, now, &mut due);
        if !due.is_empty() {
            shared.fires.fetch_add(due.len() as u64, Ordering::Relaxed);
            // Run callbacks outside the lock so they may re-enter the wheel.
            drop(st);
            for cb in due.drain(..) {
                cb();
            }
            st = shared.state.lock();
            continue;
        }
        // Exact sleep: earliest live deadline across all levels. An O(n)
        // scan over live timers, but it runs only on the idle transition and
        // is immune to the level-collision subtleties a slot-scan would have
        // to handle (level-1 slots alias ticks one full cycle apart).
        match st.entries.values().map(|e| e.deadline).min() {
            Some(d) => {
                let wait = d.saturating_duration_since(Instant::now());
                shared.cv.wait_for(&mut st, wait);
            }
            None => {
                shared.cv.wait(&mut st);
            }
        }
    }
}

impl WheelShared {
    fn insert(&self, deadline: Instant, period: Option<Duration>, cb: TimerCallback) -> u64 {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.entries.insert(id, WheelEntry { deadline, period, cb });
        let tick = tick_of(self.base, deadline);
        file_entry(&mut st, id, tick);
        drop(st);
        // The new deadline may be earlier than what the wheel is sleeping on.
        self.cv.notify_one();
        id
    }

    fn cancel(&self, id: u64) -> bool {
        self.state.lock().entries.remove(&id).is_some()
    }

    fn active(&self) -> usize {
        self.state.lock().entries.len()
    }
}

/// A single-threaded hierarchical timer wheel multiplexing every deadline of
/// an execution plane. See the module docs for the level layout.
pub struct TimerWheel {
    shared: Arc<WheelShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TimerWheel {
    /// Start the wheel thread (named `granules-wheel`).
    pub fn start() -> Self {
        let shared = Arc::new(WheelShared {
            state: Mutex::new(WheelState {
                cursor: 0,
                l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
                l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
                overflow: Vec::new(),
                l0_live: 0,
                entries: HashMap::new(),
                next_id: 1,
                shutdown: false,
            }),
            cv: Condvar::new(),
            base: Instant::now(),
            fires: AtomicU64::new(0),
        });
        let thread_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("granules-wheel".into())
            .spawn(move || wheel_loop(thread_shared))
            .expect("spawn timer wheel thread");
        TimerWheel { shared, thread: Some(thread) }
    }

    /// Fire `f` once at `deadline` (immediately if already past). Returns a
    /// registration id for [`cancel`](Self::cancel).
    pub fn schedule_once<F: Fn() + Send + Sync + 'static>(&self, deadline: Instant, f: F) -> u64 {
        self.shared.insert(deadline, None, Arc::new(f))
    }

    /// Fire `f` once after `delay`.
    pub fn schedule_in<F: Fn() + Send + Sync + 'static>(&self, delay: Duration, f: F) -> u64 {
        self.schedule_once(Instant::now() + delay, f)
    }

    /// Fire `f` every `period`, first at `now + period`. Missed beats are
    /// collapsed into at most one catch-up fire.
    pub fn register<F: Fn() + Send + Sync + 'static>(&self, period: Duration, f: F) -> u64 {
        assert!(!period.is_zero(), "period must be non-zero");
        self.shared.insert(Instant::now() + period, Some(period), Arc::new(f))
    }

    /// Cancel a registration. Returns `true` if the entry was still live
    /// (one already-collected fire may still land). Idempotent.
    pub fn cancel(&self, id: u64) -> bool {
        self.shared.cancel(id)
    }

    /// Number of live registrations (one-shots not yet fired + periodics).
    pub fn active(&self) -> usize {
        self.shared.active()
    }

    /// Total callbacks fired since start.
    pub fn fires(&self) -> u64 {
        self.shared.fires.load(Ordering::Relaxed)
    }

    /// A cloneable, `Weak`-backed handle for scheduling from places that
    /// must not keep the wheel alive (e.g. endpoint flush arming).
    pub fn scheduler(&self) -> TimerScheduler {
        TimerScheduler { shared: Arc::downgrade(&self.shared) }
    }

    /// Stop and join the wheel thread. Pending timers are dropped.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TimerWheel {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Cloneable scheduling handle onto a [`TimerWheel`]; every method is a
/// no-op returning `None`/`false` once the wheel has shut down, so holders
/// never race the teardown.
#[derive(Clone)]
pub struct TimerScheduler {
    shared: Weak<WheelShared>,
}

impl TimerScheduler {
    /// See [`TimerWheel::schedule_once`].
    pub fn schedule_once<F: Fn() + Send + Sync + 'static>(
        &self,
        deadline: Instant,
        f: F,
    ) -> Option<u64> {
        self.shared.upgrade().map(|s| s.insert(deadline, None, Arc::new(f)))
    }

    /// See [`TimerWheel::register`].
    pub fn register<F: Fn() + Send + Sync + 'static>(&self, period: Duration, f: F) -> Option<u64> {
        assert!(!period.is_zero(), "period must be non-zero");
        self.shared.upgrade().map(|s| s.insert(Instant::now() + period, Some(period), Arc::new(f)))
    }

    /// See [`TimerWheel::cancel`].
    pub fn cancel(&self, id: u64) -> bool {
        self.shared.upgrade().map(|s| s.cancel(id)).unwrap_or(false)
    }

    /// Live registrations, or 0 once the wheel is gone.
    pub fn active(&self) -> usize {
        self.shared.upgrade().map(|s| s.active()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::wait_until;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn one_shot_fires_near_deadline() {
        let wheel = TimerWheel::start();
        let fired_at = Arc::new(StdMutex::new(None::<Instant>));
        let f = fired_at.clone();
        let start = Instant::now();
        let delay = Duration::from_millis(5);
        wheel.schedule_in(delay, move || {
            f.lock().unwrap().get_or_insert_with(Instant::now);
        });
        assert!(wait_until(start + Duration::from_secs(2), || fired_at.lock().unwrap().is_some()));
        let at = fired_at.lock().unwrap().unwrap();
        let elapsed = at - start;
        assert!(elapsed >= delay, "fired {elapsed:?} early, before {delay:?}");
        // Firing error budget: 10% of the interval or one tick+scheduling
        // slack, whichever is larger (CI machines are noisy).
        let budget = Duration::from_millis(3);
        assert!(elapsed <= delay + budget, "fired late: {elapsed:?} vs {delay:?}+{budget:?}");
        assert_eq!(wheel.active(), 0, "one-shot should retire after firing");
        wheel.shutdown();
    }

    #[test]
    fn sub_millisecond_periods_fire_on_time() {
        // The old flusher scanned on a >=500µs tick, so a 600µs interval
        // could fire ~50% late. The wheel must do much better: average
        // inter-fire gap within 25% of the period.
        let wheel = TimerWheel::start();
        let stamps: Arc<StdMutex<Vec<Instant>>> = Arc::new(StdMutex::new(Vec::new()));
        let s = stamps.clone();
        let period = Duration::from_micros(600);
        let id = wheel.register(period, move || s.lock().unwrap().push(Instant::now()));
        let deadline = Instant::now() + Duration::from_secs(2);
        assert!(wait_until(deadline, || stamps.lock().unwrap().len() >= 40));
        wheel.cancel(id);
        let stamps = stamps.lock().unwrap();
        let total = *stamps.last().unwrap() - stamps[0];
        let avg = total / (stamps.len() as u32 - 1);
        assert!(avg <= period * 5 / 4, "average period {avg:?} drifted beyond 125% of {period:?}");
        wheel.shutdown();
    }

    #[test]
    fn deadlines_fire_in_order_across_levels() {
        let wheel = TimerWheel::start();
        let order = Arc::new(StdMutex::new(Vec::new()));
        // Deliberately spans level 0 (<128ms) and level 1 (>128ms) so the
        // cascade path is exercised, registered out of order.
        let delays = [160u64, 5, 90, 20, 140];
        let start = Instant::now();
        for d in delays {
            let o = order.clone();
            wheel.schedule_once(start + Duration::from_millis(d), move || {
                o.lock().unwrap().push(d);
            });
        }
        assert!(wait_until(start + Duration::from_secs(5), || order.lock().unwrap().len() == 5));
        let got = order.lock().unwrap().clone();
        let mut want = delays.to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "deadlines fired out of order");
        wheel.shutdown();
    }

    #[test]
    fn cancel_prevents_fire_and_reports_liveness() {
        let wheel = TimerWheel::start();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let id = wheel.schedule_in(Duration::from_millis(50), move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        assert!(wheel.cancel(id), "entry should still be live");
        assert!(!wheel.cancel(id), "second cancel must report dead");
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(fired.load(Ordering::Relaxed), 0, "cancelled timer fired");
        assert_eq!(wheel.active(), 0);
        wheel.shutdown();
    }

    #[test]
    fn overflow_deadline_survives_and_shutdown_is_prompt() {
        let wheel = TimerWheel::start();
        // Far beyond the ~65s horizon: lands in the overflow list.
        wheel.schedule_in(Duration::from_secs(3600), || {});
        assert_eq!(wheel.active(), 1);
        let t0 = Instant::now();
        wheel.shutdown(); // must not sleep toward the hour mark
        assert!(t0.elapsed() < Duration::from_secs(2), "shutdown blocked on far deadline");
    }

    #[test]
    fn scheduler_handle_outlives_wheel_safely() {
        let wheel = TimerWheel::start();
        let handle = wheel.scheduler();
        assert!(handle.register(Duration::from_secs(10), || {}).is_some());
        assert_eq!(handle.active(), 1);
        wheel.shutdown();
        assert!(handle.schedule_once(Instant::now(), || {}).is_none());
        assert!(!handle.cancel(1));
        assert_eq!(handle.active(), 0);
    }

    #[test]
    fn periodic_catches_up_with_at_most_one_extra_fire() {
        let wheel = TimerWheel::start();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let period = Duration::from_millis(10);
        // A callback that stalls the wheel for 3 periods once.
        let stalled = Arc::new(AtomicU64::new(0));
        let st = stalled.clone();
        wheel.register(period, move || {
            f.fetch_add(1, Ordering::Relaxed);
            if st.fetch_add(1, Ordering::Relaxed) == 0 {
                std::thread::sleep(Duration::from_millis(35));
            }
        });
        std::thread::sleep(Duration::from_millis(120));
        let n = fired.load(Ordering::Relaxed);
        // ~12 periods elapsed; 3 were consumed by the stall, and catch-up
        // may add at most one fire beyond the on-cadence count.
        assert!(n >= 6, "periodic starved after stall: {n} fires");
        assert!(n <= 13, "periodic over-fired catching up: {n} fires");
        wheel.shutdown();
    }
}
