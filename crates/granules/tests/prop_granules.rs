//! Property-based tests for the Granules substrate.
//!
//! Invariants:
//! * No signal is ever lost, regardless of burst pattern, worker count,
//!   or count-threshold: the sum of coalesced signal counts observed by a
//!   task equals the signals delivered (§III-B2's correctness premise —
//!   batching must never drop work).
//! * Schedule specs round-trip their builder forms and validate exactly
//!   the documented constraints.
//! * The worker pool completes every submitted job exactly once.

use neptune_granules::{
    ComputationalTask, Resource, ScheduleSpec, TaskContext, TaskOutcome, WorkerPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct SignalSum(Arc<AtomicU64>, Arc<AtomicU64>);
impl ComputationalTask for SignalSum {
    fn execute(&mut self, ctx: &TaskContext) -> TaskOutcome {
        self.0.fetch_add(ctx.coalesced_signals(), Ordering::Relaxed);
        self.1.fetch_add(1, Ordering::Relaxed);
        TaskOutcome::Continue
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_signal_lost_under_bursts(
        workers in 1usize..5,
        bursts in proptest::collection::vec(1u64..500, 1..20),
        count_threshold in 1u64..8,
        max_runs in prop_oneof![Just(1u64), Just(4), Just(64)],
    ) {
        let resource = Resource::builder("prop").workers(workers).build();
        let seen = Arc::new(AtomicU64::new(0));
        let execs = Arc::new(AtomicU64::new(0));
        let spec = ScheduleSpec::count_based(count_threshold)
            .with_max_consecutive_runs(max_runs);
        let handle = resource
            .deploy(SignalSum(seen.clone(), execs.clone()), spec)
            .unwrap();
        let mut total = 0u64;
        for burst in bursts {
            handle.signal_many(burst);
            total += burst;
        }
        // Top up so the count threshold is guaranteed reachable.
        let remainder = total % count_threshold;
        if remainder != 0 {
            let top_up = count_threshold - remainder;
            handle.signal_many(top_up);
            total += top_up;
        }
        resource.drain();
        // Count-based batching holds back sub-threshold remainders by
        // design (§III-B2): whatever a run left below the threshold — which
        // depends on how bursts coalesced — stays pending. Flush it with a
        // forced execution before checking conservation.
        if handle.pending_signals() > 0 {
            handle.force();
            resource.drain();
        }
        prop_assert_eq!(seen.load(Ordering::Relaxed), total, "signals lost or duplicated");
        // Batching sanity: executions never exceed signals.
        prop_assert!(execs.load(Ordering::Relaxed) <= total);
        resource.shutdown();
    }

    #[test]
    fn schedule_specs_validate_consistently(
        data_driven in any::<bool>(),
        count in 0u64..5,
        period_ms in prop_oneof![Just(None), (0u64..100).prop_map(Some)],
        max_runs in 0u64..5,
    ) {
        let spec = ScheduleSpec {
            data_driven,
            count,
            period: period_ms.map(std::time::Duration::from_millis),
            max_consecutive_runs: max_runs,
        };
        let valid = spec.validate().is_ok();
        let expected = (data_driven || period_ms.is_some_and(|ms| ms > 0))
            && count >= 1
            && period_ms != Some(0)
            && max_runs >= 1;
        prop_assert_eq!(valid, expected, "validate() disagrees with documented rules");
    }

    #[test]
    fn worker_pool_runs_every_job_once(
        workers in 1usize..6,
        jobs in 1usize..200,
    ) {
        let pool = WorkerPool::new("prop", workers);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..jobs {
            let c = counter.clone();
            let accepted = pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            prop_assert!(accepted);
        }
        pool.wait_idle();
        prop_assert_eq!(counter.load(Ordering::Relaxed), jobs as u64);
        prop_assert_eq!(pool.completed(), jobs as u64);
        prop_assert_eq!(pool.panicked(), 0);
        pool.shutdown();
    }
}
