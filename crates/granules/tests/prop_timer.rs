//! Property-based tests for the hierarchical timer wheel.
//!
//! Invariants (ISSUE 4 satellite):
//! * one-shot deadlines fire in deadline order, never early;
//! * periodic registrations never miss more than one period under load —
//!   after any stall the wheel owes at most one catch-up fire before
//!   returning to cadence, so the fire count over a window is bounded
//!   below;
//! * cancellation is race-free: a cancelled id never fires more than the
//!   one callback that may already be in flight, and double-cancel is
//!   inert regardless of interleaving with the firing thread.

use neptune_granules::test_support::wait_until;
use neptune_granules::TimerWheel;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary batches of one-shot deadlines — including duplicates and
    /// already-past deadlines — fire in nondecreasing deadline order and
    /// never before their deadline.
    #[test]
    fn one_shots_fire_in_order_and_never_early(
        delays_ms in proptest::collection::vec(0u64..40, 1..24),
    ) {
        let wheel = TimerWheel::start();
        let fired: Arc<Mutex<Vec<(u64, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();
        for (i, d) in delays_ms.iter().copied().enumerate() {
            let f = fired.clone();
            // Duplicate deadlines are disambiguated by registration index so
            // the ordering check can treat them as equal.
            let key = d * 1000 + i as u64;
            wheel.schedule_once(start + Duration::from_millis(d), move || {
                f.lock().unwrap().push((key, Instant::now()));
            });
        }
        let n = delays_ms.len();
        prop_assert!(wait_until(
            start + Duration::from_secs(10),
            || fired.lock().unwrap().len() == n
        ), "not all one-shots fired");
        let fired = fired.lock().unwrap();
        for (key, at) in fired.iter() {
            let deadline = start + Duration::from_millis(key / 1000);
            prop_assert!(*at >= deadline, "timer fired early: {:?} before {:?}", at, deadline);
        }
        for w in fired.windows(2) {
            prop_assert!(
                w[0].0 / 1000 <= w[1].0 / 1000,
                "deadlines fired out of order: {}ms after {}ms",
                w[1].0 / 1000, w[0].0 / 1000
            );
        }
        prop_assert_eq!(wheel.active(), 0);
        wheel.shutdown();
    }

    /// Under concurrent load (many competing registrations), a periodic
    /// task over a window of W periods fires at least floor(W/2) times —
    /// i.e. it never silently loses more than one period back-to-back —
    /// and never fires more than one catch-up beyond the cadence.
    #[test]
    fn periodic_never_misses_more_than_one_period(
        period_ms in 2u64..8,
        noise in proptest::collection::vec(1u64..30, 0..16),
    ) {
        let wheel = TimerWheel::start();
        // Competing load: a pile of unrelated one-shots and periodics.
        for d in noise.iter().copied() {
            wheel.schedule_in(Duration::from_millis(d), || {});
        }
        let stamps: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
        let s = stamps.clone();
        let period = Duration::from_millis(period_ms);
        let id = wheel.register(period, move || s.lock().unwrap().push(Instant::now()));
        let windows = 10u32;
        std::thread::sleep(period * windows);
        wheel.cancel(id);
        let stamps = stamps.lock().unwrap();
        // At least half the beats landed (missing >1 period in a row would
        // drop below this floor), at most cadence + 1 catch-up.
        prop_assert!(
            stamps.len() as u32 >= windows / 2,
            "periodic starved: {} fires in {} periods", stamps.len(), windows
        );
        prop_assert!(
            stamps.len() as u32 <= windows + 2,
            "periodic over-fired: {} fires in {} periods", stamps.len(), windows
        );
        // No two consecutive fires more than two periods apart (plus OS
        // scheduling slack — CI machines stall threads for milliseconds).
        for w in stamps.windows(2) {
            let gap = w[1] - w[0];
            prop_assert!(
                gap <= period * 2 + Duration::from_millis(10),
                "gap {:?} exceeds two periods ({:?})", gap, period
            );
        }
        wheel.shutdown();
    }

    /// Cancellation racing the firing thread: cancel a one-shot at a random
    /// offset around its deadline. Whatever the interleaving, the callback
    /// runs at most once, cancel() + fire outcomes are consistent (exactly
    /// one of "cancel won" / "fire won" when the race is tight), and a
    /// second cancel always reports dead.
    #[test]
    fn cancellation_is_race_free(
        deadline_us in 0u64..4000,
        cancel_after_us in 0u64..4000,
    ) {
        let wheel = TimerWheel::start();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let start = Instant::now();
        let id = wheel.schedule_once(start + Duration::from_micros(deadline_us), move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        while Instant::now() < start + Duration::from_micros(cancel_after_us) {
            std::thread::yield_now();
        }
        let cancel_won = wheel.cancel(id);
        let second = wheel.cancel(id);
        prop_assert!(!second, "double-cancel must report dead");
        // Give any in-flight fire time to land, then the count must be
        // stable and consistent with the cancel outcome.
        std::thread::sleep(Duration::from_millis(10));
        let n = fired.load(Ordering::Relaxed);
        prop_assert!(n <= 1, "callback ran {n} times");
        if cancel_won {
            prop_assert_eq!(n, 0, "cancel returned live but callback still fired");
        } else {
            prop_assert_eq!(n, 1, "cancel returned dead but callback never fired");
        }
        prop_assert_eq!(wheel.active(), 0);
        wheel.shutdown();
    }
}
