//! Monotonic microsecond clock shared by the HA components.
//!
//! Heartbeat stamps, detector thresholds, and detection-latency samples
//! all use the same time base: microseconds since the first call in this
//! process. A plain `u64` travels through atomics and histograms without
//! the `Instant` arithmetic footguns.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process-local monotonic epoch (first call).
pub fn monotonic_micros() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_nondecreasing() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(monotonic_micros() >= a + 1_000);
    }
}
