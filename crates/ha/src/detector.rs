//! Heartbeat-based failure detection.
//!
//! Peers (resources, links) announce liveness by calling
//! [`FailureDetector::heartbeat`]; a periodic [`FailureDetector::poll`]
//! compares each peer's silence against an adaptive timeout and walks the
//! `Alive → Suspect → Dead` ladder. The timeout is phi-accrual-flavored:
//! it starts from the configured floor but widens to
//! `mean + 4σ` of the peer's *observed* heartbeat intervals, so a peer
//! with jittery-but-regular beats is not declared dead by a fixed
//! threshold tuned for the fast ones.
//!
//! Detection latency — the gap between the last *expected* beat and the
//! moment `Dead` is declared — is recorded into the shared
//! [`RecoveryStats`] histogram; the acceptance gate bounds its p99.

use crate::clock::monotonic_micros;
use crate::stats::RecoveryStats;
use neptune_telemetry::{EventKind, FlightRecorder};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Liveness verdict for a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats arriving within the timeout.
    Alive,
    /// Half a timeout of silence: failure is likely but not declared.
    Suspect,
    /// A full timeout of silence: declared failed; recovery actions fire.
    Dead,
}

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Expected heartbeat period.
    pub heartbeat_interval: Duration,
    /// Silence after which a peer is declared dead. Suspicion starts at
    /// half this. Must be at least twice the heartbeat interval.
    pub timeout: Duration,
}

impl DetectorConfig {
    /// Validated constructor.
    pub fn new(heartbeat_interval: Duration, timeout: Duration) -> Self {
        assert!(
            timeout >= heartbeat_interval * 2,
            "timeout {timeout:?} must be >= 2x heartbeat interval {heartbeat_interval:?}"
        );
        DetectorConfig { heartbeat_interval, timeout }
    }
}

struct PeerRecord {
    last_beat_micros: u64,
    state: PeerState,
    /// Welford accumulator over observed inter-beat intervals (µs).
    samples: u64,
    mean: f64,
    m2: f64,
}

impl PeerRecord {
    /// Adaptive dead threshold in µs: the configured timeout, widened to
    /// `mean + 4σ` once enough intervals have been observed.
    fn dead_after(&self, config: &DetectorConfig) -> u64 {
        let configured = config.timeout.as_micros() as u64;
        if self.samples < 8 {
            return configured;
        }
        let sigma = (self.m2 / self.samples as f64).sqrt();
        configured.max((self.mean + 4.0 * sigma) as u64)
    }
}

/// Tracks heartbeat arrival per peer and classifies silence.
pub struct FailureDetector {
    config: DetectorConfig,
    peers: Mutex<HashMap<String, PeerRecord>>,
    stats: Arc<RecoveryStats>,
    recorder: RwLock<Option<Arc<FlightRecorder>>>,
}

impl FailureDetector {
    /// New detector recording transitions into `stats`.
    pub fn new(config: DetectorConfig, stats: Arc<RecoveryStats>) -> Self {
        FailureDetector {
            config,
            peers: Mutex::new(HashMap::new()),
            stats,
            recorder: RwLock::new(None),
        }
    }

    /// Attach a flight recorder: state-ladder transitions are timelined
    /// as [`EventKind::PeerSuspect`] / [`EventKind::PeerDead`] /
    /// [`EventKind::PeerAlive`]. Peer names are strings, so the subject
    /// is a stable FNV-1a hash of the name (detail = silence µs).
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.recorder.write() = Some(recorder);
    }

    fn record_event(&self, kind: EventKind, peer: &str, detail: u64) {
        if let Some(r) = self.recorder.read().as_ref() {
            r.record(kind, peer_subject(peer), detail);
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Record a liveness signal from `peer` at the current instant.
    pub fn heartbeat(&self, peer: &str) {
        self.heartbeat_at(peer, monotonic_micros());
    }

    /// Record a liveness signal with an explicit timestamp (µs on the
    /// [`monotonic_micros`] time base). Exposed for deterministic tests.
    pub fn heartbeat_at(&self, peer: &str, now_micros: u64) {
        let mut peers = self.peers.lock();
        match peers.get_mut(peer) {
            Some(rec) => {
                let interval = now_micros.saturating_sub(rec.last_beat_micros) as f64;
                rec.samples += 1;
                let delta = interval - rec.mean;
                rec.mean += delta / rec.samples as f64;
                rec.m2 += delta * (interval - rec.mean);
                rec.last_beat_micros = now_micros;
                if rec.state != PeerState::Alive {
                    rec.state = PeerState::Alive;
                    RecoveryStats::bump(&self.stats.recoveries);
                    self.record_event(EventKind::PeerAlive, peer, 0);
                }
            }
            None => {
                peers.insert(
                    peer.to_string(),
                    PeerRecord {
                        last_beat_micros: now_micros,
                        state: PeerState::Alive,
                        samples: 0,
                        mean: 0.0,
                        m2: 0.0,
                    },
                );
            }
        }
    }

    /// Re-evaluate every peer at the current instant; returns the state
    /// transitions that occurred, as `(peer, new_state)`.
    pub fn poll(&self) -> Vec<(String, PeerState)> {
        self.poll_at(monotonic_micros())
    }

    /// [`poll`](Self::poll) with an explicit timestamp for deterministic
    /// tests.
    pub fn poll_at(&self, now_micros: u64) -> Vec<(String, PeerState)> {
        let mut transitions = Vec::new();
        let mut peers = self.peers.lock();
        for (name, rec) in peers.iter_mut() {
            let silence = now_micros.saturating_sub(rec.last_beat_micros);
            let dead_after = rec.dead_after(&self.config);
            let verdict = if silence >= dead_after {
                PeerState::Dead
            } else if silence >= dead_after / 2 {
                PeerState::Suspect
            } else {
                PeerState::Alive
            };
            if verdict == rec.state {
                continue;
            }
            // Only ratchet up here; recovery to Alive happens on heartbeat
            // arrival so a poll race cannot resurrect a silent peer.
            match (rec.state, verdict) {
                (PeerState::Alive, PeerState::Suspect) => {
                    rec.state = verdict;
                    RecoveryStats::bump(&self.stats.suspects);
                    self.record_event(EventKind::PeerSuspect, name, silence);
                    transitions.push((name.clone(), verdict));
                }
                (PeerState::Alive, PeerState::Dead) | (PeerState::Suspect, PeerState::Dead) => {
                    if rec.state == PeerState::Alive {
                        RecoveryStats::bump(&self.stats.suspects);
                        self.record_event(EventKind::PeerSuspect, name, silence);
                    }
                    rec.state = PeerState::Dead;
                    RecoveryStats::bump(&self.stats.deaths);
                    self.record_event(EventKind::PeerDead, name, silence);
                    // Latency from the last *expected* beat to detection.
                    let expected = self.config.heartbeat_interval.as_micros() as u64;
                    self.stats.detection_latency.record(silence.saturating_sub(expected));
                    transitions.push((name.clone(), PeerState::Dead));
                }
                _ => {}
            }
        }
        transitions
    }

    /// Current state of `peer`, if it ever sent a heartbeat.
    pub fn state(&self, peer: &str) -> Option<PeerState> {
        self.peers.lock().get(peer).map(|r| r.state)
    }

    /// Peers currently in the given state.
    pub fn peers_in(&self, state: PeerState) -> Vec<String> {
        self.peers.lock().iter().filter(|(_, r)| r.state == state).map(|(n, _)| n.clone()).collect()
    }
}

/// Stable 64-bit subject id for a peer name (FNV-1a), so string-keyed
/// peers fit the flight recorder's fixed-size event payload.
pub fn peer_subject(peer: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in peer.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(interval_ms: u64, timeout_ms: u64) -> (FailureDetector, Arc<RecoveryStats>) {
        let stats = Arc::new(RecoveryStats::new());
        let d = FailureDetector::new(
            DetectorConfig::new(
                Duration::from_millis(interval_ms),
                Duration::from_millis(timeout_ms),
            ),
            stats.clone(),
        );
        (d, stats)
    }

    #[test]
    fn silent_peer_walks_suspect_then_dead() {
        let (d, stats) = detector(10, 40);
        d.heartbeat_at("r0", 0);
        assert_eq!(d.state("r0"), Some(PeerState::Alive));
        assert!(d.poll_at(10_000).is_empty(), "within timeout: no transition");
        let t = d.poll_at(21_000); // half the 40ms timeout
        assert_eq!(t, vec![("r0".into(), PeerState::Suspect)]);
        let t = d.poll_at(41_000);
        assert_eq!(t, vec![("r0".into(), PeerState::Dead)]);
        assert_eq!(stats.snapshot().suspects, 1);
        assert_eq!(stats.snapshot().deaths, 1);
        // Detection latency = silence - heartbeat interval = 41ms - 10ms.
        let snap = stats.snapshot().detection_latency;
        assert_eq!(snap.count(), 1);
        assert!(snap.max() >= 30_000 && snap.max() < 40_000 * 3, "{}", snap.max());
    }

    #[test]
    fn heartbeat_revives_and_counts_recovery() {
        let (d, stats) = detector(10, 40);
        d.heartbeat_at("r0", 0);
        d.poll_at(50_000);
        assert_eq!(d.state("r0"), Some(PeerState::Dead));
        d.heartbeat_at("r0", 60_000);
        assert_eq!(d.state("r0"), Some(PeerState::Alive));
        assert_eq!(stats.snapshot().recoveries, 1);
        assert_eq!(d.peers_in(PeerState::Dead).len(), 0);
    }

    #[test]
    fn steady_heartbeats_never_transition() {
        let (d, stats) = detector(10, 40);
        for i in 0..100u64 {
            d.heartbeat_at("r0", i * 10_000);
            assert!(d.poll_at(i * 10_000 + 5_000).is_empty());
        }
        assert_eq!(stats.snapshot().deaths, 0);
    }

    #[test]
    fn jittery_peer_widens_its_timeout() {
        let (d, _stats) = detector(10, 40);
        // Beats every 30ms ± nothing: mean 30ms, tiny σ. The configured
        // 40ms timeout would fire between beats if not adapted; with
        // mean+4σ ≈ 30ms the widened threshold keeps... 40 > 30, so use
        // intervals straddling the configured timeout: 35ms apart.
        let mut t = 0u64;
        for _ in 0..20 {
            d.heartbeat_at("slow", t);
            t += 35_000;
        }
        // 36ms of silence < widened threshold but within configured-ish
        // range: must stay Alive because observed cadence says so... the
        // widened dead threshold is max(40ms, 35ms+4σ) ≈ 40ms; suspect
        // threshold is half that (20ms) — adaptation keeps the *dead*
        // verdict conservative. Verify no death at 39ms silence.
        let transitions = d.poll_at(t - 35_000 + 39_000);
        assert!(
            transitions.iter().all(|(_, s)| *s != PeerState::Dead),
            "jitter-adapted peer must not be declared dead early: {transitions:?}"
        );
    }

    #[test]
    fn dead_declaration_is_ratcheted_not_flapped() {
        let (d, stats) = detector(10, 40);
        d.heartbeat_at("r0", 0);
        d.poll_at(50_000);
        // Repeated polls at the same silence level do not re-count.
        d.poll_at(51_000);
        d.poll_at(52_000);
        assert_eq!(stats.snapshot().deaths, 1);
    }

    #[test]
    #[should_panic(expected = "2x heartbeat")]
    fn config_rejects_tight_timeout() {
        DetectorConfig::new(Duration::from_millis(10), Duration::from_millis(15));
    }
}
