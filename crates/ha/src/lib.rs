//! Fault-tolerance control plane for Neptune.
//!
//! NEPTUNE's resource-container model (paper §3) assumes links and
//! resources fail. The *link-level* machinery — sequencing + replay,
//! dedup, the reconnecting [`SupervisedLink`], deterministic chaos — now
//! lives in the `neptune-link` crate as layers of the composable link
//! stack; this crate re-exports it under the historical `neptune_ha`
//! paths and keeps what is genuinely control-plane:
//!
//! * **Failure detection** — [`FailureDetector`] classifies heartbeat
//!   silence on an `Alive → Suspect → Dead` ladder with an adaptive
//!   (mean + 4σ) timeout, recording detection latency.
//! * **Monotonic clock** — [`monotonic_micros`], the detector's time
//!   base.

pub mod clock;
pub mod detector;

// Link-level fault tolerance moved into the link stack; keep the old
// module paths (`neptune_ha::link`, `neptune_ha::supervisor`, ...)
// resolving for existing callers.
pub use neptune_link::backoff;
pub use neptune_link::chaos;
pub use neptune_link::dedup;
pub use neptune_link::replay;
pub use neptune_link::stats;
pub use neptune_link::supervisor;
pub use neptune_link::transport as link;

pub use backoff::ReconnectPolicy;
pub use chaos::{AckGate, ChaosLink, FaultEvent, FaultPlan};
pub use clock::monotonic_micros;
pub use dedup::{Admit, DedupFilter};
pub use detector::{DetectorConfig, FailureDetector, PeerState};
pub use link::{FrameLink, OutboundFrame, QueueLink, TcpFrameLink};
pub use neptune_link::{AckMode, IngressVerdict, ReliableIngress};
pub use replay::{PendingFrame, ReplayBuffer};
pub use stats::{RecoverySnapshot, RecoveryStats};
pub use supervisor::{LinkEvent, SupervisedLink};
