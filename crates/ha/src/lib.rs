//! Fault-tolerance control plane for Neptune.
//!
//! NEPTUNE's resource-container model (paper §3) assumes links and
//! resources fail; this crate supplies the machinery that lets a running
//! job survive those failures with at-least-once delivery:
//!
//! * **Sequencing + replay** — every frame on a supervised link carries a
//!   per-link sequence number ([`FLAG_SEQ`](neptune_net::frame::FLAG_SEQ)
//!   wire extension); unacked frames are retained in a bounded
//!   [`ReplayBuffer`] and retransmitted after reconnect. Receivers dedup
//!   with a [`DedupFilter`] keyed on message sequence ranges.
//! * **Reconnecting transport** — [`SupervisedLink`] wraps any
//!   [`FrameLink`] with exponential backoff (deterministic jitter),
//!   capped retries, replay-on-reconnect, and lifecycle events
//!   ([`LinkEvent`]) for telemetry.
//! * **Failure detection** — [`FailureDetector`] classifies heartbeat
//!   silence on an `Alive → Suspect → Dead` ladder with an adaptive
//!   (mean + 4σ) timeout, recording detection latency.
//! * **Deterministic chaos** — [`FaultPlan`] scripts link cuts, node
//!   kills, and ack delays by *position* (frame counts, steps), not wall
//!   clock, so fault-injection tests replay bit-identically in CI.
//!
//! Everything here is transport-agnostic: the same supervisor drives
//! in-process [`QueueLink`]s (simulator, tests) and [`TcpFrameLink`]s
//! (real deployments).

pub mod backoff;
pub mod chaos;
pub mod clock;
pub mod dedup;
pub mod detector;
pub mod link;
pub mod replay;
pub mod stats;
pub mod supervisor;

pub use backoff::ReconnectPolicy;
pub use chaos::{AckGate, ChaosLink, FaultEvent, FaultPlan};
pub use clock::monotonic_micros;
pub use dedup::{Admit, DedupFilter};
pub use detector::{DetectorConfig, FailureDetector, PeerState};
pub use link::{FrameLink, OutboundFrame, QueueLink, TcpFrameLink};
pub use replay::{PendingFrame, ReplayBuffer};
pub use stats::{RecoverySnapshot, RecoveryStats};
pub use supervisor::{LinkEvent, SupervisedLink};
