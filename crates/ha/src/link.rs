//! The link abstraction the supervisor recovers over.
//!
//! [`FrameLink`] is narrower than `neptune_net::BatchSink`: it carries
//! *sequenced* data frames and control frames (heartbeats), which is
//! exactly what ack/replay delivery needs. Two implementations ship here:
//!
//! * [`QueueLink`] — in-process delivery onto a destination
//!   [`WatermarkQueue`], used by the runtime's co-located links and by
//!   the chaos harness (CI-testable recovery without sockets).
//! * [`TcpFrameLink`] — wraps a [`TcpSender`], encoding data frames with
//!   the [`FLAG_SEQ`](neptune_net::frame::FLAG_SEQ) extension and control
//!   frames as bodyless [`ControlKind`] frames.

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_net::frame::{
    encode_control_frame, encode_frame_raw_traced, ControlKind, Frame, FrameMessages,
    FRAME_HEADER_LEN,
};
use neptune_net::tcp::TcpSender;
use neptune_net::transport::TransportError;
use neptune_net::watermark::WatermarkQueue;
use std::sync::Arc;

/// One sequenced frame on its way out: everything a link needs to send
/// it now and a [`crate::replay::ReplayBuffer`] needs to send it again.
#[derive(Debug, Clone)]
pub struct OutboundFrame {
    /// Link identity (routing key for acks).
    pub link_id: u64,
    /// Per-link frame sequence number.
    pub seq: u64,
    /// Message sequence of the first message.
    pub base_seq: u64,
    /// Messages in the batch.
    pub count: u32,
    /// Length-prefixed message concatenation.
    pub encoded: Bytes,
    /// Sender wall clock at flush, µs (0 = unstamped).
    pub sent_at_micros: u64,
    /// Causal trace id to carry via `FLAG_TRACE` (`None` = untraced).
    pub trace: Option<u64>,
}

/// A transport that can carry sequenced data frames and control frames.
pub trait FrameLink: Send + Sync {
    /// Deliver one sequenced data frame. Blocks under backpressure.
    fn send_frame(&self, frame: &OutboundFrame) -> Result<(), TransportError>;

    /// Deliver one control frame (heartbeat probe, explicit ack).
    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError>;
}

/// In-process link: frames land decoded on the destination queue, sharing
/// the sender's batch buffer (zero-copy, like `InProcessTransport`) but
/// carrying the frame sequence number for dedup/ack.
pub struct QueueLink {
    queue: Arc<WatermarkQueue<Frame>>,
}

impl QueueLink {
    /// Wrap a destination queue.
    pub fn new(queue: Arc<WatermarkQueue<Frame>>) -> Self {
        QueueLink { queue }
    }

    /// The destination queue.
    pub fn queue(&self) -> &Arc<WatermarkQueue<Frame>> {
        &self.queue
    }
}

impl FrameLink for QueueLink {
    fn send_frame(&self, frame: &OutboundFrame) -> Result<(), TransportError> {
        let messages = FrameMessages::parse_prefixed(frame.encoded.clone(), Some(frame.count))
            .map_err(TransportError::Malformed)?;
        let decoded = Frame {
            link_id: frame.link_id,
            base_seq: frame.base_seq,
            messages,
            // Wire-equivalent accounting: header + seq ext + tag + body.
            wire_len: FRAME_HEADER_LEN + 8 + 1 + frame.encoded.len(),
            sent_at_micros: frame.sent_at_micros,
            received_at: Some(std::time::Instant::now()),
            seq: Some(frame.seq),
            control: None,
            trace: frame.trace,
        };
        self.queue.push_blocking(decoded).map(|_| ()).map_err(TransportError::from_push)
    }

    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError> {
        let frame = Frame {
            link_id,
            base_seq: value,
            messages: FrameMessages::empty(),
            wire_len: FRAME_HEADER_LEN + 8,
            sent_at_micros: 0,
            received_at: Some(std::time::Instant::now()),
            seq: None,
            control: Some(kind),
            trace: None,
        };
        self.queue.push_blocking(frame).map(|_| ()).map_err(TransportError::from_push)
    }
}

/// TCP link: encodes sequenced frames with the `FLAG_SEQ` extension and
/// hands them to a [`TcpSender`]'s IO thread.
pub struct TcpFrameLink {
    sender: TcpSender,
    compressor: SelectiveCompressor,
}

impl TcpFrameLink {
    /// Wrap a connected sender with the link's compression policy.
    pub fn new(sender: TcpSender, compressor: SelectiveCompressor) -> Self {
        TcpFrameLink { sender, compressor }
    }

    /// The wrapped sender.
    pub fn sender(&self) -> &TcpSender {
        &self.sender
    }
}

impl FrameLink for TcpFrameLink {
    fn send_frame(&self, frame: &OutboundFrame) -> Result<(), TransportError> {
        let wire = encode_frame_raw_traced(
            frame.link_id,
            frame.base_seq,
            frame.count,
            &frame.encoded,
            &self.compressor,
            frame.sent_at_micros,
            Some(frame.seq),
            frame.trace,
        );
        self.sender.send(wire)
    }

    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError> {
        self.sender.send(encode_control_frame(link_id, kind, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_net::watermark::WatermarkConfig;

    fn prefixed(msgs: &[&[u8]]) -> (Bytes, u32) {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m);
        }
        (Bytes::from(out), msgs.len() as u32)
    }

    #[test]
    fn queue_link_carries_seq_and_control() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let (encoded, count) = prefixed(&[b"a", b"b"]);
        link.send_frame(&OutboundFrame {
            link_id: 5,
            seq: 17,
            base_seq: 100,
            count,
            encoded,
            sent_at_micros: 0,
            trace: None,
        })
        .unwrap();
        link.send_control(5, ControlKind::Heartbeat, 3).unwrap();
        let f = q.pop().unwrap();
        assert_eq!(f.seq, Some(17));
        assert_eq!(f.base_seq, 100);
        assert_eq!(f.len(), 2);
        let hb = q.pop().unwrap();
        assert_eq!(hb.control, Some(ControlKind::Heartbeat));
        assert_eq!(hb.base_seq, 3);
        assert!(hb.is_empty());
    }

    #[test]
    fn queue_link_surfaces_close_as_error() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        q.close();
        let (encoded, count) = prefixed(&[b"x"]);
        let out = link.send_frame(&OutboundFrame {
            link_id: 1,
            seq: 0,
            base_seq: 0,
            count,
            encoded,
            sent_at_micros: 0,
            trace: None,
        });
        assert_eq!(out, Err(TransportError::Closed));
        assert_eq!(link.send_control(1, ControlKind::Ack, 0), Err(TransportError::Closed));
    }
}
