//! Exponential backoff with deterministic jitter for reconnect attempts.
//!
//! Jitter breaks reconnect stampedes when many links drop at once, but a
//! chaos harness needs byte-for-byte reproducibility — so the jitter is
//! drawn from a seeded xorshift generator keyed by `(seed, attempt)`,
//! never from the global RNG or the clock.

use std::time::Duration;

/// Reconnect schedule: capped exponential backoff, ±25% deterministic
/// jitter, bounded attempt count.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Give up (terminal `LinkFailed`) after this many attempts.
    pub max_attempts: u32,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl ReconnectPolicy {
    /// Conventional defaults: 10 ms base, 1 s cap, 8 attempts.
    pub fn new(seed: u64) -> Self {
        ReconnectPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            max_attempts: 8,
            jitter_seed: seed,
        }
    }

    /// Tight schedule for tests and in-process chaos harnesses.
    pub fn fast(seed: u64) -> Self {
        ReconnectPolicy {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(5),
            max_attempts: 10,
            jitter_seed: seed,
        }
    }

    /// Delay to sleep before retry number `attempt` (0-based): doubled
    /// per attempt, capped, then jittered ±25% deterministically.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(20));
        let capped = exp.min(self.cap).as_nanos() as u64;
        if capped == 0 {
            return Duration::ZERO;
        }
        // ±25% jitter from the deterministic stream.
        let r = xorshift(self.jitter_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let quarter = capped / 4;
        let jitter = if quarter == 0 { 0 } else { r % (2 * quarter + 1) };
        Duration::from_nanos(capped - quarter + jitter)
    }
}

/// xorshift64* — small, fast, deterministic; quality is irrelevant here.
pub(crate) fn xorshift(mut x: u64) -> u64 {
    x = x.max(1); // the all-zero state is a fixed point
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = ReconnectPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            max_attempts: 8,
            jitter_seed: 7,
        };
        let d0 = p.delay_for(0);
        let d3 = p.delay_for(3);
        assert!(d3 > d0, "{d0:?} vs {d3:?}");
        // Even with +25% jitter the cap bounds the delay.
        assert!(p.delay_for(10) <= Duration::from_millis(125));
        // And jitter keeps it within -25%.
        assert!(p.delay_for(10) >= Duration::from_millis(75));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = ReconnectPolicy::new(42);
        let b = ReconnectPolicy::new(42);
        let c = ReconnectPolicy::new(43);
        let series = |p: &ReconnectPolicy| (0..6).map(|i| p.delay_for(i)).collect::<Vec<_>>();
        assert_eq!(series(&a), series(&b));
        assert_ne!(series(&a), series(&c), "different seeds must jitter differently");
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = ReconnectPolicy::new(1);
        assert!(p.delay_for(u32::MAX) <= Duration::from_millis(1250));
    }
}
