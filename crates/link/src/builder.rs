//! The link facade: one composable stack behind every frame-delivery
//! path.
//!
//! ```text
//!   Link::send_batch(base_seq, encoded, count, sent_at, wait)
//!        │
//!        ├─ flush policy   (batch bytes / deadline / message count —
//!        │                  owned here, read by the output buffer)
//!        ├─ trace tagging  (sampled or every-N, FLAG_TRACE minting)
//!        ├─ reliability?   (SupervisedLink: seq + replay + reconnect)
//!        └─ transport      (QueueLink | TcpFrameLink | ChaosLink | custom)
//! ```
//!
//! A [`LinkBuilder`] picks one flavour per layer; [`Link`] is the built
//! stack, with per-link [`LinkStats`] and the retunable
//! [`FlushPolicy`](neptune_net::flush::FlushPolicy) handle exposed for
//! telemetry and future QoS control.

use crate::supervisor::SupervisedLink;
use crate::tag::TraceTagger;
use crate::transport::{FrameLink, OutboundFrame, QueueLink, TcpFrameLink};
use crate::{backoff::ReconnectPolicy, stats::RecoveryStats};
use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_net::flush::{FlushPolicy, FlushPolicySnapshot};
use neptune_net::frame::{ControlKind, Frame, FRAME_HEADER_LEN};
use neptune_net::tcp::TcpSender;
use neptune_net::transport::TransportError;
use neptune_net::watermark::WatermarkQueue;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte threshold when the builder is not given an explicit policy.
const DEFAULT_BATCH_BYTES: usize = 32 << 10;

/// Live per-link counters, bumped on the send path.
#[derive(Debug, Default)]
pub struct LinkStats {
    flushes: AtomicU64,
    packets: AtomicU64,
    wire_bytes: AtomicU64,
    traced: AtomicU64,
}

impl LinkStats {
    /// Batches flushed into the link (including failed sends).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Packets recorded by the batching caller.
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Wire-equivalent bytes sent.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes.load(Ordering::Relaxed)
    }

    /// Batches that carried a trace id.
    pub fn traced(&self) -> u64 {
        self.traced.load(Ordering::Relaxed)
    }

    /// Record `n` packets pushed toward this link (called by the batching
    /// layer, which is the only place that sees per-packet granularity).
    pub fn record_packets(&self, n: u64) {
        self.packets.fetch_add(n, Ordering::Relaxed);
    }
}

/// Point-in-time export of one link's stats bundle: counters plus the
/// current flush-policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStatsSnapshot {
    /// The link's wire identity.
    pub link_id: u64,
    /// Batches flushed.
    pub flushes: u64,
    /// Packets batched.
    pub packets: u64,
    /// Wire-equivalent bytes sent.
    pub wire_bytes: u64,
    /// Traced batches.
    pub traced: u64,
    /// Frames retransmitted by the reliability layer (0 on bare links).
    pub replayed: u64,
    /// Cumulative acks received (0 on bare links).
    pub acks: u64,
    /// Duplicate frames dropped at the far end (filled by ingress-side
    /// exporters; egress-side snapshots report 0).
    pub dedup_drops: u64,
    /// Current flush-policy knobs.
    pub flush: FlushPolicySnapshot,
}

enum Delivery {
    /// Fire-and-forget onto the transport (bare frames, no `FLAG_SEQ`).
    Direct(Arc<dyn FrameLink>),
    /// At-least-once through the reliability layer (sequenced frames).
    Reliable(Arc<SupervisedLink>),
}

/// One built link stack. See the [module docs](self) for the layers.
pub struct Link {
    id: u64,
    delivery: Delivery,
    policy: Arc<FlushPolicy>,
    tagger: RwLock<Option<TraceTagger>>,
    stats: LinkStats,
    /// Typed handle kept when the transport flavour is in-process, for
    /// gate wiring ([`queue`](Self::queue)) and delivery signals
    /// ([`on_deliver`](Self::on_deliver)).
    inproc: Option<Arc<QueueLink>>,
    /// Heartbeat nonce for direct links (reliable links sequence their
    /// own).
    heartbeat_nonce: AtomicU64,
}

impl Link {
    /// The link's wire identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The retunable flush policy this link's output buffering reads.
    pub fn policy(&self) -> &Arc<FlushPolicy> {
        &self.policy
    }

    /// Live counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// The reliability layer, when this link has one.
    pub fn reliability(&self) -> Option<&Arc<SupervisedLink>> {
        match &self.delivery {
            Delivery::Reliable(s) => Some(s),
            Delivery::Direct(_) => None,
        }
    }

    /// Install or replace the trace-tagging layer.
    pub fn set_tagger(&self, tagger: TraceTagger) {
        *self.tagger.write() = Some(tagger);
    }

    /// Propagate an inbound packet's trace id onto the next batch.
    pub fn tag_inbound(&self, trace_id: u64) {
        if let Some(t) = self.tagger.read().as_ref() {
            t.tag_inbound(trace_id);
        }
    }

    /// The destination watermark queue for in-process flavours; `None`
    /// for wire transports (their backpressure lives in the sender's IO
    /// queue).
    pub fn queue(&self) -> Option<&Arc<WatermarkQueue<Frame>>> {
        if let Some(l) = &self.inproc {
            return Some(l.queue());
        }
        match &self.delivery {
            Delivery::Direct(t) => t.queue(),
            Delivery::Reliable(_) => None,
        }
    }

    /// Register a callback invoked after every delivered frame (in-process
    /// flavours only; a no-op otherwise).
    pub fn on_deliver<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        if let Some(l) = &self.inproc {
            l.on_deliver(f);
        }
    }

    /// Close the destination: an in-process queue is closed so producers
    /// parked behind its gate wake with `Closed` instead of deadlocking.
    /// Wire transports tear down with their sender.
    pub fn close(&self) {
        if let Some(q) = self.queue() {
            q.close();
        }
    }

    /// True once a reliable link exhausted its retry budget. Bare links
    /// never latch failure themselves (their callers do).
    pub fn is_failed(&self) -> bool {
        match &self.delivery {
            Delivery::Reliable(s) => s.is_failed(),
            Delivery::Direct(_) => false,
        }
    }

    /// Send one flushed batch down the stack: tag it, then deliver —
    /// directly (bare frame) or through the reliability layer (sequenced
    /// frame). Returns the wire-equivalent bytes sent. `sent_at_micros`
    /// may be 0 (unstamped); a traced batch is stamped lazily.
    pub fn send_batch(
        &self,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
        queueing_delay_micros: u64,
    ) -> Result<usize, TransportError> {
        let frame_no = self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let mut sent_at = sent_at_micros;
        let trace = self.tagger.read().as_ref().and_then(|t| {
            t.tag_batch(self.id, base_seq, count, frame_no, queueing_delay_micros, &mut sent_at)
        });
        if trace.is_some() {
            self.stats.traced.fetch_add(1, Ordering::Relaxed);
        }
        let wire = match &self.delivery {
            Delivery::Direct(t) => t.send_frame(&OutboundFrame {
                link_id: self.id,
                seq: None,
                base_seq,
                count,
                encoded,
                sent_at_micros: sent_at,
                trace,
            })?,
            Delivery::Reliable(s) => {
                // The supervisor may deliver via replay after a cut, so
                // the first transmission's exact length is not always
                // observable; account the sequenced frame's nominal size.
                let nominal = FRAME_HEADER_LEN + encoded.len() + 1 + 8;
                s.send_batch_traced(base_seq, encoded, count, sent_at, trace)?;
                nominal
            }
        };
        self.stats.wire_bytes.fetch_add(wire as u64, Ordering::Relaxed);
        Ok(wire)
    }

    /// Probe the link with a heartbeat control frame.
    pub fn heartbeat(&self) -> Result<(), TransportError> {
        match &self.delivery {
            Delivery::Reliable(s) => s.heartbeat(),
            Delivery::Direct(t) => {
                let nonce = self.heartbeat_nonce.fetch_add(1, Ordering::Relaxed);
                t.send_control(self.id, ControlKind::Heartbeat, nonce)
            }
        }
    }

    /// Send an aligned-checkpoint barrier control frame carrying
    /// `checkpoint_id` down this link, behind every batch already flushed.
    /// Barriers ride the control channel on both delivery flavours; the
    /// reliability layer forwards them without retaining them for replay
    /// (a post-cut checkpoint is abandoned, not replayed).
    pub fn barrier(&self, checkpoint_id: u64) -> Result<(), TransportError> {
        match &self.delivery {
            Delivery::Reliable(s) => s.barrier(checkpoint_id),
            Delivery::Direct(t) => t.send_control(self.id, ControlKind::Barrier, checkpoint_id),
        }
    }

    /// Deliver a cumulative ack to the reliability layer (no-op on bare
    /// links — nothing is retained).
    pub fn ack(&self, cum_msg_seq: u64) {
        if let Delivery::Reliable(s) = &self.delivery {
            s.ack(cum_msg_seq);
        }
    }

    /// Export the per-link stats bundle.
    pub fn stats_snapshot(&self) -> LinkStatsSnapshot {
        let (replayed, acks) = match &self.delivery {
            Delivery::Reliable(s) => (s.frames_replayed(), s.acks_received()),
            Delivery::Direct(_) => (0, 0),
        };
        LinkStatsSnapshot {
            link_id: self.id,
            flushes: self.stats.flushes(),
            packets: self.stats.packets(),
            wire_bytes: self.stats.wire_bytes(),
            traced: self.stats.traced(),
            replayed,
            acks,
            dedup_drops: 0,
            flush: self.policy.snapshot(),
        }
    }
}

/// How to (re)establish a reliable link's transport.
pub type Connector = Box<dyn Fn() -> Result<Arc<dyn FrameLink>, TransportError> + Send + Sync>;

enum Flavour {
    InProcess(Arc<WatermarkQueue<Frame>>),
    Tcp { sender: TcpSender, compressor: SelectiveCompressor },
    Custom(Arc<dyn FrameLink>),
}

struct ReliabilitySpec {
    /// `None` derives a constant connector from the static flavour.
    connector: Option<Connector>,
    policy: ReconnectPolicy,
    replay_budget_bytes: usize,
    stats: Arc<RecoveryStats>,
}

/// Builds a [`Link`] by picking one flavour per layer of the stack.
pub struct LinkBuilder {
    id: u64,
    policy: Option<Arc<FlushPolicy>>,
    flavour: Option<Flavour>,
    reliability: Option<ReliabilitySpec>,
    tagger: Option<TraceTagger>,
}

impl LinkBuilder {
    /// Start a stack for the link with wire identity `id`.
    pub fn new(id: u64) -> Self {
        LinkBuilder { id, policy: None, flavour: None, reliability: None, tagger: None }
    }

    /// Use this flush policy (defaults to a 32 KiB bytes-only policy).
    pub fn flush_policy(mut self, policy: Arc<FlushPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Transport flavour: in-process queue handover (zero-copy).
    pub fn in_process(mut self, queue: Arc<WatermarkQueue<Frame>>) -> Self {
        self.flavour = Some(Flavour::InProcess(queue));
        self
    }

    /// Transport flavour: TCP — blocking writer or epoll reactor,
    /// whichever the sender was connected on.
    pub fn tcp(mut self, sender: TcpSender, compressor: SelectiveCompressor) -> Self {
        self.flavour = Some(Flavour::Tcp { sender, compressor });
        self
    }

    /// Transport flavour: any [`FrameLink`] (chaos harness, tests).
    pub fn transport(mut self, transport: Arc<dyn FrameLink>) -> Self {
        self.flavour = Some(Flavour::Custom(transport));
        self
    }

    /// Add the reliability layer over the static transport flavour:
    /// frames are sequenced, retained up to `replay_budget_bytes`, and
    /// replayed over the same transport after a failure.
    pub fn reliable(
        mut self,
        policy: ReconnectPolicy,
        replay_budget_bytes: usize,
        stats: Arc<RecoveryStats>,
    ) -> Self {
        self.reliability =
            Some(ReliabilitySpec { connector: None, policy, replay_budget_bytes, stats });
        self
    }

    /// Add the reliability layer with an explicit connector — recovery
    /// re-establishes the transport through it (fresh sockets, re-read
    /// addresses), rather than reusing the static flavour.
    pub fn reliable_with(
        mut self,
        connector: Connector,
        policy: ReconnectPolicy,
        replay_budget_bytes: usize,
        stats: Arc<RecoveryStats>,
    ) -> Self {
        self.reliability = Some(ReliabilitySpec {
            connector: Some(connector),
            policy,
            replay_budget_bytes,
            stats,
        });
        self
    }

    /// Install the trace-tagging layer.
    pub fn tracing(mut self, tagger: TraceTagger) -> Self {
        self.tagger = Some(tagger);
        self
    }

    /// Assemble the stack.
    ///
    /// Panics when no transport flavour was chosen and reliability has no
    /// explicit connector — the link would have nowhere to send.
    pub fn build(self) -> Arc<Link> {
        let policy = self.policy.unwrap_or_else(|| FlushPolicy::new(DEFAULT_BATCH_BYTES, None));
        let (transport, inproc): (Option<Arc<dyn FrameLink>>, Option<Arc<QueueLink>>) =
            match self.flavour {
                Some(Flavour::InProcess(q)) => {
                    let l = Arc::new(QueueLink::new(q));
                    (Some(l.clone()), Some(l))
                }
                Some(Flavour::Tcp { sender, compressor }) => {
                    (Some(Arc::new(TcpFrameLink::new(sender, compressor))), None)
                }
                Some(Flavour::Custom(t)) => (Some(t), None),
                None => (None, None),
            };
        let delivery = match self.reliability {
            None => Delivery::Direct(transport.expect("link needs a transport flavour")),
            Some(spec) => {
                let connector = spec.connector.unwrap_or_else(|| {
                    let t = transport
                        .clone()
                        .expect("reliable link needs a transport flavour or a connector");
                    Box::new(move || Ok(t.clone()))
                });
                Delivery::Reliable(Arc::new(SupervisedLink::new(
                    self.id,
                    connector,
                    spec.policy,
                    spec.replay_budget_bytes,
                    spec.stats,
                )))
            }
        };
        Arc::new(Link {
            id: self.id,
            delivery,
            policy,
            tagger: RwLock::new(self.tagger),
            stats: LinkStats::default(),
            inproc,
            heartbeat_nonce: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_net::watermark::WatermarkConfig;

    fn prefixed(msgs: &[&[u8]]) -> (Bytes, u32) {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m);
        }
        (Bytes::from(out), msgs.len() as u32)
    }

    fn queue() -> Arc<WatermarkQueue<Frame>> {
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)))
    }

    #[test]
    fn bare_in_process_link_delivers_unsequenced_frames() {
        let q = queue();
        let link = LinkBuilder::new(42)
            .flush_policy(FlushPolicy::new(64, None))
            .in_process(q.clone())
            .build();
        let (e, c) = prefixed(&[b"a", b"b"]);
        let wire = link.send_batch(0, e.clone(), c, 0, 0).unwrap();
        assert_eq!(wire, FRAME_HEADER_LEN + e.len() + 1, "bare frames carry no FLAG_SEQ");
        let f = q.pop().unwrap();
        assert_eq!(f.link_id, 42);
        assert_eq!(f.seq, None);
        assert_eq!(f.len(), 2);
        let snap = link.stats_snapshot();
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.wire_bytes, wire as u64);
        assert_eq!(snap.replayed, 0);
        assert_eq!(snap.flush.batch_bytes, 64);
        assert!(link.queue().is_some());
        assert!(!link.is_failed());
    }

    #[test]
    fn reliable_link_sequences_and_acks_trim() {
        let q = queue();
        let link = LinkBuilder::new(7)
            .in_process(q.clone())
            .reliable(ReconnectPolicy::fast(1), 1 << 20, Arc::new(RecoveryStats::new()))
            .build();
        let (e, c) = prefixed(&[b"a", b"b"]);
        link.send_batch(0, e, c, 0, 0).unwrap();
        let (e, c) = prefixed(&[b"c"]);
        link.send_batch(2, e, c, 0, 0).unwrap();
        assert_eq!(q.pop().unwrap().seq, Some(0));
        assert_eq!(q.pop().unwrap().seq, Some(1));
        let sup = link.reliability().expect("reliable");
        assert_eq!(sup.replay().len(), 2);
        link.ack(3);
        assert!(sup.replay().is_empty());
        assert_eq!(link.stats_snapshot().acks, 1);
    }

    #[test]
    fn tagged_links_trace_and_count() {
        let q = queue();
        let link =
            LinkBuilder::new(3).in_process(q.clone()).tracing(TraceTagger::every_n(2)).build();
        let (e, c) = prefixed(&[b"x"]);
        for seq in 0..4u64 {
            link.send_batch(seq, e.clone(), c, 0, 0).unwrap();
        }
        let traces: Vec<Option<u64>> = std::iter::from_fn(|| q.pop()).map(|f| f.trace).collect();
        assert_eq!(traces.iter().filter(|t| t.is_some()).count(), 2, "frames 0 and 2 traced");
        assert_eq!(link.stats_snapshot().traced, 2);
    }

    #[test]
    fn close_wakes_the_destination_and_fails_sends() {
        let q = queue();
        let link = LinkBuilder::new(1).in_process(q.clone()).build();
        link.close();
        let (e, c) = prefixed(&[b"x"]);
        assert_eq!(link.send_batch(0, e, c, 0, 0), Err(TransportError::Closed));
    }

    #[test]
    fn heartbeats_flow_on_bare_links_too() {
        let q = queue();
        let link = LinkBuilder::new(9).in_process(q.clone()).build();
        link.heartbeat().unwrap();
        link.heartbeat().unwrap();
        assert_eq!(q.pop().unwrap().base_seq, 0, "nonces increase");
        assert_eq!(q.pop().unwrap().base_seq, 1);
    }

    #[test]
    fn barriers_arrive_behind_flushed_data_on_both_flavours() {
        for reliable in [false, true] {
            let q = queue();
            let mut b = LinkBuilder::new(5).in_process(q.clone());
            if reliable {
                b = b.reliable(ReconnectPolicy::fast(1), 1 << 20, Arc::new(RecoveryStats::new()));
            }
            let link = b.build();
            let (e, c) = prefixed(&[b"data"]);
            link.send_batch(0, e, c, 0, 0).unwrap();
            link.barrier(17).unwrap();
            let first = q.pop().unwrap();
            assert_eq!(first.control, None, "data flushed before the barrier arrives first");
            let barrier = q.pop().unwrap();
            assert_eq!(barrier.control, Some(ControlKind::Barrier), "reliable={reliable}");
            assert_eq!(barrier.base_seq, 17, "checkpoint id rides base_seq");
            if reliable {
                let sup = link.reliability().unwrap();
                assert_eq!(sup.replay().len(), 1, "barriers are not retained for replay");
            }
        }
    }
}
