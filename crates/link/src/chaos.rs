//! Deterministic chaos injection.
//!
//! A [`FaultPlan`] is a seeded *script* of failures — cut a link at data
//! frame N for M send attempts, kill a simulated node at step T, hold
//! back acks — that wraps the real components rather than mocking them:
//! [`ChaosLink`] interposes on any [`FrameLink`], [`AckGate`] on the ack
//! path, and `neptune-sim` consumes [`FaultPlan::dead_nodes_at`]. Faults
//! are indexed by *send-attempt count*, not wall clock, so a given seed
//! replays the exact same failure interleaving in CI every time.

use crate::backoff::xorshift;
use crate::transport::{FrameLink, OutboundFrame};
use neptune_net::frame::ControlKind;
use neptune_net::transport::TransportError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Fail every send on `link_id` whose data-frame attempt index falls
    /// in `[at_frame, at_frame + down_for)`. Control frames fail while
    /// the window is open. The link "restores" once retries push the
    /// attempt counter past the window.
    CutLink {
        /// Link to cut.
        link_id: u64,
        /// First failing data-frame send attempt (0-based).
        at_frame: u64,
        /// Number of failing attempts before the link heals.
        down_for: u64,
    },
    /// Remove a simulated cluster node from service at `at_step` (the
    /// sim's analytic solver treats its capacity as gone from that step).
    KillNode {
        /// Node index in the simulated cluster.
        node: usize,
        /// Step (sim iteration) the node dies at.
        at_step: u64,
    },
    /// Hold back cumulative acks on `link_id`: an [`AckGate`] built from
    /// this plan delivers each ack only after `by` newer ones arrive.
    DelayAcks {
        /// Link whose acks are delayed.
        link_id: u64,
        /// How many acks the gate holds back.
        by: u64,
    },
}

/// A seeded, scripted set of faults. The seed feeds [`FaultPlan::jitter`]
/// so harnesses can scatter event offsets deterministically per seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed identifying this plan's timeline.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan (no faults) with a seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Add one scripted event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scripted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Deterministic value in `[lo, hi)` derived from the seed and a
    /// stream index — scatter event offsets without `rand`.
    pub fn jitter(&self, stream: u64, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty jitter range");
        lo + xorshift(self.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)) % (hi - lo)
    }

    /// Every cut window scripted for `link_id`, as `(start, end)` attempt
    /// indices.
    pub fn cut_windows(&self, link_id: u64) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CutLink { link_id: l, at_frame, down_for } if *l == link_id => {
                    Some((*at_frame, at_frame + down_for))
                }
                _ => None,
            })
            .collect()
    }

    /// Nodes dead at sim step `step`.
    pub fn dead_nodes_at(&self, step: u64) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::KillNode { node, at_step } if *at_step <= step => Some(*node),
                _ => None,
            })
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Ack delay scripted for `link_id` (0 = none).
    pub fn ack_delay(&self, link_id: u64) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::DelayAcks { link_id: l, by } if *l == link_id => Some(*by),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// A [`FrameLink`] that injects the plan's link cuts.
///
/// The cut is positional: the Nth *data-frame send attempt* fails if N
/// falls inside a scripted window. Because the supervisor retries the
/// same frame, retries advance the counter deterministically until the
/// window closes — a kill-then-restore cycle with no clocks involved.
pub struct ChaosLink {
    inner: Arc<dyn FrameLink>,
    windows: Vec<(u64, u64)>,
    attempts: AtomicU64,
    injected_failures: AtomicU64,
}

impl ChaosLink {
    /// Wrap `inner`, injecting the cuts `plan` scripts for `link_id`.
    pub fn new(inner: Arc<dyn FrameLink>, plan: &FaultPlan, link_id: u64) -> Self {
        ChaosLink {
            inner,
            windows: plan.cut_windows(link_id),
            attempts: AtomicU64::new(0),
            injected_failures: AtomicU64::new(0),
        }
    }

    fn in_window(&self, n: u64) -> bool {
        self.windows.iter().any(|&(start, end)| n >= start && n < end)
    }

    /// Data-frame send attempts observed so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Sends failed by injection so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures.load(Ordering::Relaxed)
    }
}

impl FrameLink for ChaosLink {
    fn send_frame(&self, frame: &OutboundFrame) -> Result<usize, TransportError> {
        let n = self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.in_window(n) {
            self.injected_failures.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::Io(format!("chaos: link down (attempt {n})")));
        }
        self.inner.send_frame(frame)
    }

    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError> {
        // Control frames share the link's fate but do not advance the
        // deterministic data-frame counter.
        if self.in_window(self.attempts.load(Ordering::Relaxed)) {
            self.injected_failures.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::Io("chaos: link down (control)".into()));
        }
        self.inner.send_control(link_id, kind, value)
    }
}

/// Delays cumulative acks per the plan: each ack is released only after
/// `delay` newer acks arrive (or [`AckGate::flush`] is called).
pub struct AckGate {
    delay: u64,
    held: Mutex<VecDeque<u64>>,
    deliver: Box<dyn Fn(u64) + Send + Sync>,
}

impl AckGate {
    /// Gate delivering acks to `deliver`, delaying them by `delay`.
    pub fn new(delay: u64, deliver: impl Fn(u64) + Send + Sync + 'static) -> Self {
        AckGate { delay, held: Mutex::new(VecDeque::new()), deliver: Box::new(deliver) }
    }

    /// Offer an ack; releases the oldest held ack once more than `delay`
    /// are pending.
    pub fn ack(&self, cum_msg_seq: u64) {
        let mut held = self.held.lock();
        held.push_back(cum_msg_seq);
        while held.len() as u64 > self.delay {
            let v = held.pop_front().expect("len > delay >= 0");
            (self.deliver)(v);
        }
    }

    /// Release everything still held (end of run).
    pub fn flush(&self) {
        let mut held = self.held.lock();
        while let Some(v) = held.pop_front() {
            (self.deliver)(v);
        }
    }

    /// Acks currently held back.
    pub fn pending(&self) -> usize {
        self.held.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex as PlMutex;

    /// Records delivered frames; never fails.
    #[derive(Default)]
    struct SinkSpy {
        frames: PlMutex<Vec<u64>>,
        controls: PlMutex<Vec<(ControlKind, u64)>>,
    }

    impl FrameLink for SinkSpy {
        fn send_frame(&self, f: &OutboundFrame) -> Result<usize, TransportError> {
            self.frames.lock().push(f.seq.expect("chaos tests send sequenced frames"));
            Ok(f.encoded.len())
        }
        fn send_control(
            &self,
            _l: u64,
            kind: ControlKind,
            value: u64,
        ) -> Result<(), TransportError> {
            self.controls.lock().push((kind, value));
            Ok(())
        }
    }

    fn of(seq: u64) -> OutboundFrame {
        OutboundFrame {
            link_id: 1,
            seq: Some(seq),
            base_seq: seq,
            count: 1,
            encoded: Bytes::from_static(&[1, 0, 0, 0, 9]),
            sent_at_micros: 0,
            trace: None,
        }
    }

    #[test]
    fn cut_window_fails_then_heals() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::CutLink {
            link_id: 1,
            at_frame: 2,
            down_for: 3,
        });
        let spy = Arc::new(SinkSpy::default());
        let chaos = ChaosLink::new(spy.clone(), &plan, 1);
        let mut results = Vec::new();
        for i in 0..8u64 {
            results.push(chaos.send_frame(&of(i)).is_ok());
        }
        assert_eq!(results, [true, true, false, false, false, true, true, true]);
        assert_eq!(chaos.injected_failures(), 3);
        assert_eq!(*spy.frames.lock(), vec![0, 1, 5, 6, 7]);
    }

    #[test]
    fn control_fails_inside_window_without_advancing_it() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::CutLink {
            link_id: 1,
            at_frame: 1,
            down_for: 2,
        });
        let spy = Arc::new(SinkSpy::default());
        let chaos = ChaosLink::new(spy.clone(), &plan, 1);
        chaos.send_frame(&of(0)).unwrap(); // attempt 0: ok, counter now 1
        assert!(chaos.send_control(1, ControlKind::Heartbeat, 0).is_err());
        assert!(chaos.send_control(1, ControlKind::Heartbeat, 1).is_err());
        assert!(chaos.send_frame(&of(1)).is_err()); // attempt 1
        assert!(chaos.send_frame(&of(1)).is_err()); // attempt 2
        assert!(chaos.send_frame(&of(1)).is_ok()); // attempt 3: healed
        assert!(chaos.send_control(1, ControlKind::Heartbeat, 2).is_ok());
    }

    #[test]
    fn other_links_are_untouched() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::CutLink {
            link_id: 9,
            at_frame: 0,
            down_for: 100,
        });
        let spy = Arc::new(SinkSpy::default());
        let chaos = ChaosLink::new(spy, &plan, 1);
        for i in 0..5 {
            chaos.send_frame(&of(i)).unwrap();
        }
        assert_eq!(chaos.injected_failures(), 0);
    }

    #[test]
    fn plan_queries() {
        let plan = FaultPlan::new(7)
            .with_event(FaultEvent::CutLink { link_id: 1, at_frame: 10, down_for: 5 })
            .with_event(FaultEvent::KillNode { node: 3, at_step: 100 })
            .with_event(FaultEvent::KillNode { node: 1, at_step: 50 })
            .with_event(FaultEvent::DelayAcks { link_id: 1, by: 4 });
        assert_eq!(plan.cut_windows(1), vec![(10, 15)]);
        assert!(plan.cut_windows(2).is_empty());
        assert_eq!(plan.dead_nodes_at(49), Vec::<usize>::new());
        assert_eq!(plan.dead_nodes_at(50), vec![1]);
        assert_eq!(plan.dead_nodes_at(200), vec![1, 3]);
        assert_eq!(plan.ack_delay(1), 4);
        assert_eq!(plan.ack_delay(2), 0);
    }

    #[test]
    fn jitter_is_deterministic_and_ranged() {
        let a = FaultPlan::new(11);
        let b = FaultPlan::new(11);
        let c = FaultPlan::new(12);
        for s in 0..20u64 {
            let v = a.jitter(s, 100, 200);
            assert!((100..200).contains(&v));
            assert_eq!(v, b.jitter(s, 100, 200));
        }
        assert!((0..20u64).any(|s| a.jitter(s, 0, 1 << 30) != c.jitter(s, 0, 1 << 30)));
    }

    #[test]
    fn ack_gate_delays_then_flushes() {
        let seen = Arc::new(PlMutex::new(Vec::new()));
        let s = seen.clone();
        let gate = AckGate::new(2, move |v| s.lock().push(v));
        gate.ack(10);
        gate.ack(20);
        assert!(seen.lock().is_empty(), "both held");
        gate.ack(30);
        assert_eq!(*seen.lock(), vec![10]);
        gate.flush();
        assert_eq!(*seen.lock(), vec![10, 20, 30]);
        assert_eq!(gate.pending(), 0);
    }
}
