//! Sink-side duplicate suppression — the downstream half of at-least-once
//! delivery.
//!
//! Replay after a reconnect re-sends every unacked frame, including those
//! that did arrive before the link dropped. The receiver tracks, per
//! link, the next *message* sequence it expects and classifies each
//! incoming batch: fresh, pure duplicate (drop it), or partially
//! overlapping (skip the already-delivered prefix). Combined with the
//! upstream [`crate::replay::ReplayBuffer`] this turns at-least-once
//! transport into exactly-once *delivery to the operator* for in-order
//! links.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Verdict for one incoming batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Deliver every message in the batch.
    Fresh,
    /// Every message was already delivered: drop the whole batch.
    Duplicate,
    /// The first `skip` messages were already delivered; deliver the rest.
    Overlap {
        /// Number of leading messages to skip.
        skip: u32,
    },
}

/// Per-link high-watermark duplicate filter.
#[derive(Default)]
pub struct DedupFilter {
    /// link_id → next expected message sequence.
    next: Mutex<HashMap<u64, u64>>,
}

impl DedupFilter {
    /// Fresh filter with no per-link state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify a batch of `count` messages starting at `base_seq` on
    /// `link_id`, advancing the link's watermark for admitted messages.
    pub fn admit(&self, link_id: u64, base_seq: u64, count: u32) -> Admit {
        let mut next = self.next.lock();
        let expected = next.entry(link_id).or_insert(base_seq);
        let end = base_seq + count as u64;
        if base_seq >= *expected {
            // In-order or a gap (evicted replay window): both deliver. A
            // gap is the at-least-once degradation, not a duplicate.
            *expected = end;
            Admit::Fresh
        } else if end <= *expected {
            Admit::Duplicate
        } else {
            let skip = (*expected - base_seq) as u32;
            *expected = end;
            Admit::Overlap { skip }
        }
    }

    /// The next message sequence expected on `link_id`, if any was seen.
    pub fn expected(&self, link_id: u64) -> Option<u64> {
        self.next.lock().get(&link_id).copied()
    }

    /// Cumulative-ack value for `link_id`: identical to
    /// [`expected`](Self::expected), named for the sender-facing role.
    pub fn ack_watermark(&self, link_id: u64) -> Option<u64> {
        self.expected(link_id)
    }

    /// Snapshot every per-link watermark, sorted by link id — the dedup
    /// half of a checkpoint's consistent cut.
    pub fn cursors(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.next.lock().iter().map(|(&l, &s)| (l, s)).collect();
        out.sort_unstable();
        out
    }

    /// Restore watermarks from a checkpoint cursor snapshot. Existing
    /// entries are overwritten; links absent from `cursors` keep theirs.
    /// After restore, replayed frames below a restored watermark classify
    /// as duplicates — exactly what keeps restored operator state from
    /// double-counting messages it already absorbed before the snapshot.
    pub fn restore(&self, cursors: &[(u64, u64)]) {
        let mut next = self.next.lock();
        for &(link_id, seq) in cursors {
            next.insert(link_id, seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_batches_are_fresh() {
        let d = DedupFilter::new();
        assert_eq!(d.admit(1, 0, 10), Admit::Fresh);
        assert_eq!(d.admit(1, 10, 5), Admit::Fresh);
        assert_eq!(d.expected(1), Some(15));
    }

    #[test]
    fn replayed_batch_is_duplicate() {
        let d = DedupFilter::new();
        d.admit(1, 0, 10);
        d.admit(1, 10, 10);
        assert_eq!(d.admit(1, 0, 10), Admit::Duplicate);
        assert_eq!(d.admit(1, 10, 10), Admit::Duplicate);
        assert_eq!(d.expected(1), Some(20), "duplicates must not move the watermark");
    }

    #[test]
    fn partial_overlap_skips_delivered_prefix() {
        let d = DedupFilter::new();
        d.admit(1, 0, 10);
        assert_eq!(d.admit(1, 5, 10), Admit::Overlap { skip: 5 });
        assert_eq!(d.expected(1), Some(15));
    }

    #[test]
    fn gaps_still_deliver() {
        let d = DedupFilter::new();
        d.admit(1, 0, 10);
        assert_eq!(d.admit(1, 50, 5), Admit::Fresh);
        assert_eq!(d.expected(1), Some(55));
    }

    #[test]
    fn links_are_independent_and_may_start_anywhere() {
        let d = DedupFilter::new();
        assert_eq!(d.admit(7, 1000, 4), Admit::Fresh, "first batch sets the baseline");
        assert_eq!(d.admit(8, 0, 1), Admit::Fresh);
        assert_eq!(d.admit(7, 1000, 4), Admit::Duplicate);
        assert_eq!(d.ack_watermark(7), Some(1004));
        assert_eq!(d.ack_watermark(9), None);
    }
}
