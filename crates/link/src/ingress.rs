//! The receiving end of a reliable link: duplicate suppression plus
//! cumulative-ack staging, as one object.
//!
//! Every consumer of at-least-once links used to hand-roll the same
//! three-step dance: classify the incoming frame against a
//! [`DedupFilter`], route the fresh suffix, then compute and deliver the
//! cumulative ack — immediately, or withheld until the node is quiescent
//! (the cluster's chain-ack discipline for exactly-once handoff across
//! planes). [`ReliableIngress`] owns that dance. Callers classify with
//! [`admit`](ReliableIngress::admit), then call
//! [`stage_ack`](ReliableIngress::stage_ack) — which either returns the
//! ack to send now ([`AckMode::Immediate`]) or parks it until
//! [`release_acks`](ReliableIngress::release_acks) drains the staging map
//! ([`AckMode::Quiescent`]).
//!
//! This is the only place outside the filter's own tests that constructs
//! a [`DedupFilter`]: exactly one dedup implementation, one ack-watermark
//! computation, shared by the HA harness and the cluster data plane.

use crate::dedup::{Admit, DedupFilter};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// When acks flow back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Ack every admitted frame as it arrives (steady-state).
    Immediate,
    /// Withhold acks until [`ReliableIngress::release_acks`] — the
    /// quiescent-chain discipline: a node acks upstream only once its own
    /// downstream work is drained, so a crash between arrival and
    /// processing replays instead of losing data.
    Quiescent,
}

/// Verdict for one incoming frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressVerdict {
    /// Deliver the messages after skipping the first `skip` (0 = all).
    Deliver {
        /// Already-delivered prefix length.
        skip: u32,
    },
    /// Every message was already delivered: drop the frame.
    Duplicate,
}

/// Sink-side reliability: dedup + ack staging for any number of links.
pub struct ReliableIngress {
    dedup: DedupFilter,
    /// Current ack discipline; retunable so a plane can switch to
    /// immediate acks once its downstream chain is known-drained.
    immediate: AtomicBool,
    /// link_id → withheld cumulative ack (Quiescent mode).
    pending: Mutex<HashMap<u64, u64>>,
    /// Frames admitted (fresh or overlapping).
    frames: AtomicU64,
    /// Whole frames dropped as duplicates.
    dup_frames: AtomicU64,
    /// link_id → duplicate frames dropped, for per-link stats.
    drops_by_link: Mutex<HashMap<u64, u64>>,
}

impl ReliableIngress {
    /// Ingress starting in the given ack mode.
    pub fn new(mode: AckMode) -> Self {
        ReliableIngress {
            dedup: DedupFilter::new(),
            immediate: AtomicBool::new(mode == AckMode::Immediate),
            pending: Mutex::new(HashMap::new()),
            frames: AtomicU64::new(0),
            dup_frames: AtomicU64::new(0),
            drops_by_link: Mutex::new(HashMap::new()),
        }
    }

    /// Switch the ack discipline (true = ack immediately).
    pub fn set_immediate(&self, on: bool) {
        self.immediate.store(on, Ordering::Release);
    }

    /// True when acks flow back immediately.
    pub fn immediate(&self) -> bool {
        self.immediate.load(Ordering::Acquire)
    }

    /// Classify a frame of `count` messages starting at `base_seq` on
    /// `link_id`, advancing the link's dedup watermark for admitted
    /// messages and counting duplicates.
    pub fn admit(&self, link_id: u64, base_seq: u64, count: u32) -> IngressVerdict {
        match self.dedup.admit(link_id, base_seq, count) {
            Admit::Fresh => {
                self.frames.fetch_add(1, Ordering::Relaxed);
                IngressVerdict::Deliver { skip: 0 }
            }
            Admit::Overlap { skip } => {
                self.frames.fetch_add(1, Ordering::Relaxed);
                IngressVerdict::Deliver { skip }
            }
            Admit::Duplicate => {
                self.dup_frames.fetch_add(1, Ordering::Relaxed);
                *self.drops_by_link.lock().entry(link_id).or_insert(0) += 1;
                IngressVerdict::Duplicate
            }
        }
    }

    /// Stage the cumulative ack for `link_id`. Returns `Some((link_id,
    /// watermark))` when the caller should send it now (immediate mode);
    /// in quiescent mode the ack is parked — later stagings for the same
    /// link overwrite it, which is exactly what cumulative acks want.
    pub fn stage_ack(&self, link_id: u64) -> Option<(u64, u64)> {
        let watermark = self.dedup.ack_watermark(link_id)?;
        if self.immediate() {
            Some((link_id, watermark))
        } else {
            self.pending.lock().insert(link_id, watermark);
            None
        }
    }

    /// Drain every withheld ack for sending (the quiescent-chain release
    /// point).
    pub fn release_acks(&self) -> Vec<(u64, u64)> {
        self.pending.lock().drain().collect()
    }

    /// The cumulative ack value for `link_id`, if any frame was seen.
    pub fn ack_watermark(&self, link_id: u64) -> Option<u64> {
        self.dedup.ack_watermark(link_id)
    }

    /// Frames admitted for delivery (fresh or overlapping).
    pub fn frames_admitted(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Whole frames dropped as duplicates.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dup_frames.load(Ordering::Relaxed)
    }

    /// Duplicate frames dropped on one link (per-link stats export).
    pub fn dedup_drops(&self, link_id: u64) -> u64 {
        self.drops_by_link.lock().get(&link_id).copied().unwrap_or(0)
    }

    /// Withheld acks currently parked (quiescent mode).
    pub fn pending_acks(&self) -> usize {
        self.pending.lock().len()
    }

    /// Snapshot the per-link dedup watermarks — the replay/dedup half of
    /// an aligned checkpoint's consistent cut. Captured together with
    /// operator state at barrier alignment, so a restore agrees with the
    /// sender's replay buffer about which messages are already *in* the
    /// restored state.
    pub fn cursors(&self) -> Vec<(u64, u64)> {
        self.dedup.cursors()
    }

    /// Restore dedup watermarks from a checkpoint cursor snapshot (see
    /// [`cursors`](Self::cursors)). Frames replayed from below a restored
    /// watermark are classified duplicates and dropped instead of being
    /// double-applied to restored operator state.
    pub fn restore_cursors(&self, cursors: &[(u64, u64)]) {
        self.dedup.restore(cursors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_mode_returns_acks_inline() {
        let ing = ReliableIngress::new(AckMode::Immediate);
        assert_eq!(ing.admit(1, 0, 4), IngressVerdict::Deliver { skip: 0 });
        assert_eq!(ing.stage_ack(1), Some((1, 4)));
        assert_eq!(ing.admit(1, 4, 2), IngressVerdict::Deliver { skip: 0 });
        assert_eq!(ing.stage_ack(1), Some((1, 6)));
        assert_eq!(ing.pending_acks(), 0);
        assert_eq!(ing.frames_admitted(), 2);
        assert_eq!(ing.stage_ack(9), None, "unseen link has no watermark");
    }

    #[test]
    fn quiescent_mode_parks_and_coalesces_acks() {
        let ing = ReliableIngress::new(AckMode::Quiescent);
        ing.admit(1, 0, 4);
        assert_eq!(ing.stage_ack(1), None);
        ing.admit(1, 4, 4);
        assert_eq!(ing.stage_ack(1), None);
        ing.admit(2, 0, 1);
        ing.stage_ack(2);
        assert_eq!(ing.pending_acks(), 2, "cumulative: one parked ack per link");
        let mut acks = ing.release_acks();
        acks.sort_unstable();
        assert_eq!(acks, vec![(1, 8), (2, 1)]);
        assert_eq!(ing.pending_acks(), 0);
        ing.set_immediate(true);
        ing.admit(1, 8, 1);
        assert_eq!(ing.stage_ack(1), Some((1, 9)), "mode is retunable");
    }

    #[test]
    fn cursors_snapshot_and_restore_give_a_consistent_cut() {
        let ing = ReliableIngress::new(AckMode::Immediate);
        ing.admit(1, 0, 4);
        ing.admit(2, 100, 3);
        let cut = ing.cursors();
        assert_eq!(cut, vec![(1, 4), (2, 103)]);
        // More traffic after the snapshot...
        ing.admit(1, 4, 2);
        assert_eq!(ing.ack_watermark(1), Some(6));
        // ...then a restore rewinds to the cut: replay of the suffix that
        // was in flight at snapshot time delivers, the prefix dedups.
        let fresh = ReliableIngress::new(AckMode::Immediate);
        fresh.restore_cursors(&cut);
        assert_eq!(fresh.admit(1, 0, 4), IngressVerdict::Duplicate, "pre-cut frames dedup");
        assert_eq!(fresh.admit(1, 2, 4), IngressVerdict::Deliver { skip: 2 });
        assert_eq!(fresh.admit(2, 103, 1), IngressVerdict::Deliver { skip: 0 });
    }

    #[test]
    fn duplicates_drop_and_count_per_link() {
        let ing = ReliableIngress::new(AckMode::Immediate);
        ing.admit(7, 0, 10);
        assert_eq!(ing.admit(7, 0, 10), IngressVerdict::Duplicate);
        assert_eq!(ing.admit(7, 5, 10), IngressVerdict::Deliver { skip: 5 });
        assert_eq!(ing.duplicates_dropped(), 1);
        assert_eq!(ing.dedup_drops(7), 1);
        assert_eq!(ing.dedup_drops(8), 0);
        // The duplicate still re-acks: the sender may have missed the ack.
        assert_eq!(ing.stage_ack(7), Some((7, 15)));
    }
}
