//! # neptune-link
//!
//! The composable link stack: **one** implementation of each
//! frame-delivery concern, layered behind the [`Link`] facade.
//!
//! ```text
//!   ┌──────────────────────────────────────────────────────────┐
//!   │ Link (builder-assembled per link)                        │
//!   │  · FlushPolicy    batch bytes / deadline / msg count     │
//!   │  · TraceTagger    sampled (runtime) | every-N (cluster)  │
//!   │  · reliability?   SupervisedLink: seq + ReplayBuffer +   │
//!   │                   reconnect/backoff; acks trim replay    │
//!   │  · transport      QueueLink | TcpFrameLink | ChaosLink   │
//!   └──────────────────────────────────────────────────────────┘
//!            receiving side: ReliableIngress = DedupFilter
//!            + cumulative-ack staging (immediate | quiescent)
//! ```
//!
//! Before this crate, the repo had five hand-grown frame-delivery paths —
//! in-process queue handover, blocking TCP, reactor TCP, the HA
//! supervised link, and the cluster data plane — each duplicating some
//! mix of replay, dedup, ack bookkeeping, flush thresholds, and trace
//! stamping. They now compose the same layers: the runtime's channel
//! endpoints, the cluster egress, and the chaos harness all build links
//! through [`LinkBuilder`], and the wire format is identical to what each
//! path produced before.

pub mod backoff;
pub mod builder;
pub mod chaos;
pub mod dedup;
pub mod ingress;
pub mod replay;
pub mod stats;
pub mod supervisor;
pub mod tag;
pub mod transport;

pub use backoff::ReconnectPolicy;
pub use builder::{Connector, Link, LinkBuilder, LinkStats, LinkStatsSnapshot};
pub use chaos::{AckGate, ChaosLink, FaultEvent, FaultPlan};
pub use dedup::{Admit, DedupFilter};
pub use ingress::{AckMode, IngressVerdict, ReliableIngress};
pub use replay::{PendingFrame, ReplayBuffer};
pub use stats::{RecoverySnapshot, RecoveryStats};
pub use supervisor::{LinkEvent, SupervisedLink};
pub use tag::TraceTagger;
pub use transport::{FrameLink, OutboundFrame, QueueLink, TcpFrameLink};

// The shared vocabulary the stack composes over lives in `neptune-net`
// (which cannot depend on this crate); re-export it so link users need
// one import path.
pub use neptune_net::flush::{FlushPolicy, FlushPolicySnapshot};
pub use neptune_net::transport::TransportError;

/// Microseconds since the Unix epoch — lazy `sent_at` stamping for traced
/// batches.
pub(crate) fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("system clock before epoch")
        .as_micros() as u64
}
