//! Bounded per-link replay buffer — the upstream half of at-least-once
//! delivery.
//!
//! Every sequenced frame a link sends is retained here until the receiver
//! acknowledges it cumulatively. On reconnect the supervisor walks
//! [`ReplayBuffer::unacked`] and re-sends everything still outstanding;
//! the receiver's [`crate::dedup::DedupFilter`] drops whatever actually
//! arrived the first time. Memory is bounded by a byte budget: when the
//! unacked window outgrows it, the oldest frames are evicted (and
//! counted), degrading those frames to best-effort — the documented
//! trade-off, not a silent one.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One retained frame, ready to be replayed.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    /// Per-link frame sequence number ([`neptune_net::frame::FLAG_SEQ`]).
    pub frame_seq: u64,
    /// Message sequence of the first message in the batch.
    pub base_seq: u64,
    /// Number of messages in the batch.
    pub count: u32,
    /// The length-prefixed message concatenation (uncompressed body).
    pub encoded: Bytes,
    /// Sender wall clock at the original flush, µs (0 = unstamped).
    pub sent_at_micros: u64,
}

impl PendingFrame {
    /// Message sequence one past the last message in this frame — the
    /// cumulative ack value that retires it.
    pub fn end_seq(&self) -> u64 {
        self.base_seq + self.count as u64
    }
}

struct Inner {
    frames: VecDeque<PendingFrame>,
    bytes: usize,
}

/// Bounded store of unacknowledged frames for one link.
pub struct ReplayBuffer {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    evictions: AtomicU64,
    /// Highest cumulative message sequence acked so far.
    acked: AtomicU64,
}

impl ReplayBuffer {
    /// New buffer retaining at most `budget_bytes` of encoded payload.
    pub fn new(budget_bytes: usize) -> Self {
        assert!(budget_bytes > 0, "replay budget must be positive");
        ReplayBuffer {
            inner: Mutex::new(Inner { frames: VecDeque::new(), bytes: 0 }),
            budget_bytes,
            evictions: AtomicU64::new(0),
            acked: AtomicU64::new(0),
        }
    }

    /// Retain a sent frame until it is acked. Returns how many older
    /// frames were evicted to stay within the byte budget.
    pub fn append(&self, frame: PendingFrame) -> u64 {
        let mut inner = self.inner.lock();
        inner.bytes += frame.encoded.len();
        inner.frames.push_back(frame);
        let mut evicted = 0u64;
        while inner.bytes > self.budget_bytes && inner.frames.len() > 1 {
            let old = inner.frames.pop_front().expect("len > 1");
            inner.bytes -= old.encoded.len();
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Cumulative acknowledgement: every frame fully below `cum_msg_seq`
    /// (its `end_seq() <= cum_msg_seq`) is retired. Returns the number of
    /// frames trimmed. Regressions (stale acks) are ignored.
    pub fn ack(&self, cum_msg_seq: u64) -> u64 {
        self.acked.fetch_max(cum_msg_seq, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let mut trimmed = 0u64;
        while let Some(front) = inner.frames.front() {
            if front.end_seq() > cum_msg_seq {
                break;
            }
            let old = inner.frames.pop_front().expect("front exists");
            inner.bytes -= old.encoded.len();
            trimmed += 1;
        }
        trimmed
    }

    /// Clone out every frame still awaiting acknowledgement, oldest first
    /// — the reconnect replay set. Cloning is cheap: the payloads are
    /// refcounted [`Bytes`].
    pub fn unacked(&self) -> Vec<PendingFrame> {
        self.inner.lock().frames.iter().cloned().collect()
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// True when nothing awaits acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().frames.is_empty()
    }

    /// Encoded bytes currently retained.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Frames evicted over the buffer's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Highest cumulative message sequence acknowledged so far.
    pub fn acked_watermark(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, base: u64, count: u32, size: usize) -> PendingFrame {
        PendingFrame {
            frame_seq: seq,
            base_seq: base,
            count,
            encoded: Bytes::from(vec![0u8; size]),
            sent_at_micros: 0,
        }
    }

    #[test]
    fn ack_trims_cumulatively() {
        let rb = ReplayBuffer::new(1 << 20);
        rb.append(frame(0, 0, 10, 100));
        rb.append(frame(1, 10, 10, 100));
        rb.append(frame(2, 20, 5, 100));
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.bytes(), 300);
        // Ack mid-frame: only fully-covered frames retire.
        assert_eq!(rb.ack(15), 1);
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.ack(25), 2);
        assert!(rb.is_empty());
        assert_eq!(rb.bytes(), 0);
        assert_eq!(rb.acked_watermark(), 25);
    }

    #[test]
    fn stale_acks_are_noops() {
        let rb = ReplayBuffer::new(1 << 20);
        rb.append(frame(0, 0, 10, 10));
        assert_eq!(rb.ack(10), 1);
        assert_eq!(rb.ack(5), 0);
        assert_eq!(rb.acked_watermark(), 10);
    }

    #[test]
    fn unacked_returns_replay_set_in_order() {
        let rb = ReplayBuffer::new(1 << 20);
        for i in 0..4u64 {
            rb.append(frame(i, i * 10, 10, 10));
        }
        rb.ack(20); // first two retire
        let pend = rb.unacked();
        assert_eq!(pend.len(), 2);
        assert_eq!(pend[0].frame_seq, 2);
        assert_eq!(pend[1].frame_seq, 3);
    }

    #[test]
    fn budget_evicts_oldest_and_counts() {
        let rb = ReplayBuffer::new(250);
        assert_eq!(rb.append(frame(0, 0, 1, 100)), 0);
        assert_eq!(rb.append(frame(1, 1, 1, 100)), 0);
        // 300 bytes > 250: the oldest goes.
        assert_eq!(rb.append(frame(2, 2, 1, 100)), 1);
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.evictions(), 1);
        assert_eq!(rb.unacked()[0].frame_seq, 1);
    }

    #[test]
    fn oversized_single_frame_is_kept() {
        // A frame larger than the whole budget must still be deliverable:
        // eviction never removes the newest frame.
        let rb = ReplayBuffer::new(50);
        assert_eq!(rb.append(frame(0, 0, 1, 500)), 0);
        assert_eq!(rb.len(), 1);
    }
}
