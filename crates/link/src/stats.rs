//! Recovery counters — the control plane's answer to the data plane's
//! `JobMetrics`: how often links dropped, how much was replayed, and how
//! fast failures were detected.

use neptune_telemetry::{HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free recovery counters. One instance per job (or per
/// harness); every HA component records into it so a single snapshot
/// tells the whole recovery story.
#[derive(Default)]
pub struct RecoveryStats {
    /// Frames re-sent from a replay buffer after a reconnect.
    pub retransmits: AtomicU64,
    /// Wire-equivalent bytes retransmitted.
    pub retransmitted_bytes: AtomicU64,
    /// Successful link re-establishments.
    pub reconnects: AtomicU64,
    /// Individual connect attempts made while recovering (≥ reconnects).
    pub reconnect_attempts: AtomicU64,
    /// Links declared terminally failed after exhausting retries.
    pub link_failures: AtomicU64,
    /// Heartbeat probes sent on idle links.
    pub heartbeats_sent: AtomicU64,
    /// Cumulative acknowledgements received.
    pub acks_received: AtomicU64,
    /// Frames dropped by sink-side dedup (at-least-once duplicates).
    pub duplicates_dropped: AtomicU64,
    /// Frames evicted from a full replay buffer (delivery degrades to
    /// best-effort for the evicted window).
    pub replay_evictions: AtomicU64,
    /// Peers transitioned Alive → Suspect.
    pub suspects: AtomicU64,
    /// Peers declared dead by the failure detector.
    pub deaths: AtomicU64,
    /// Peers that recovered after being suspected or declared dead.
    pub recoveries: AtomicU64,
    /// Time from the last expected heartbeat to the dead declaration, µs.
    pub detection_latency: LatencyHistogram,
}

impl RecoveryStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one to a counter (convenience for hook closures).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            retransmits: self.retransmits.load(Ordering::Relaxed),
            retransmitted_bytes: self.retransmitted_bytes.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            reconnect_attempts: self.reconnect_attempts.load(Ordering::Relaxed),
            link_failures: self.link_failures.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            acks_received: self.acks_received.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            replay_evictions: self.replay_evictions.load(Ordering::Relaxed),
            suspects: self.suspects.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            detection_latency: self.detection_latency.snapshot(),
        }
    }
}

/// Plain-value copy of [`RecoveryStats`] for export and assertions.
#[derive(Debug, Clone)]
pub struct RecoverySnapshot {
    /// See [`RecoveryStats::retransmits`].
    pub retransmits: u64,
    /// See [`RecoveryStats::retransmitted_bytes`].
    pub retransmitted_bytes: u64,
    /// See [`RecoveryStats::reconnects`].
    pub reconnects: u64,
    /// See [`RecoveryStats::reconnect_attempts`].
    pub reconnect_attempts: u64,
    /// See [`RecoveryStats::link_failures`].
    pub link_failures: u64,
    /// See [`RecoveryStats::heartbeats_sent`].
    pub heartbeats_sent: u64,
    /// See [`RecoveryStats::acks_received`].
    pub acks_received: u64,
    /// See [`RecoveryStats::duplicates_dropped`].
    pub duplicates_dropped: u64,
    /// See [`RecoveryStats::replay_evictions`].
    pub replay_evictions: u64,
    /// See [`RecoveryStats::suspects`].
    pub suspects: u64,
    /// See [`RecoveryStats::deaths`].
    pub deaths: u64,
    /// See [`RecoveryStats::recoveries`].
    pub recoveries: u64,
    /// Detection-latency distribution, µs.
    pub detection_latency: HistogramSnapshot,
}

impl RecoverySnapshot {
    /// Human-readable multi-line rendering.
    pub fn render_pretty(&self) -> String {
        let d = &self.detection_latency;
        format!(
            "recovery: retransmits={} ({} B) reconnects={}/{} attempts link_failures={}\n\
             heartbeats={} acks={} dup_dropped={} evictions={} suspects={} deaths={} recoveries={}\n\
             detection latency µs: n={} p50={} p99={} max={}",
            self.retransmits,
            self.retransmitted_bytes,
            self.reconnects,
            self.reconnect_attempts,
            self.link_failures,
            self.heartbeats_sent,
            self.acks_received,
            self.duplicates_dropped,
            self.replay_evictions,
            self.suspects,
            self.deaths,
            self.recoveries,
            d.count(),
            d.p50(),
            d.p99(),
            d.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = RecoveryStats::new();
        s.retransmits.fetch_add(3, Ordering::Relaxed);
        s.reconnects.fetch_add(1, Ordering::Relaxed);
        s.detection_latency.record(1500);
        let snap = s.snapshot();
        assert_eq!(snap.retransmits, 3);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.detection_latency.count(), 1);
        assert!(snap.render_pretty().contains("retransmits=3"));
    }
}
