//! The reconnecting link supervisor — ties sequencing, replay, backoff,
//! and events into one at-least-once sender.
//!
//! A [`SupervisedLink`] owns a connector closure (how to (re)establish
//! the underlying [`FrameLink`]) and a [`ReplayBuffer`]. Every batch gets
//! a frame sequence number and is retained until cumulatively acked; a
//! failed send triggers the recovery loop: backoff (exponential,
//! deterministic jitter), reconnect, replay everything unacked, resume.
//! Exhausting the retry budget is terminal: a `LinkFailed` event fires,
//! and every later send fails fast with `Closed` — the caller (runtime,
//! harness) decides whether to reroute or abort.

use crate::backoff::ReconnectPolicy;
use crate::replay::{PendingFrame, ReplayBuffer};
use crate::stats::RecoveryStats;
use crate::transport::{FrameLink, OutboundFrame};
use bytes::Bytes;
use neptune_net::frame::ControlKind;
use neptune_net::transport::TransportError;
use neptune_telemetry::{EventKind, FlightRecorder};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle notifications emitted by a [`SupervisedLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// A recovery attempt is starting (0-based attempt number).
    Reconnecting {
        /// Attempt index within the current recovery.
        attempt: u32,
    },
    /// Recovery succeeded; `replayed` unacked frames were retransmitted.
    Reconnected {
        /// Frames replayed onto the fresh connection.
        replayed: u64,
    },
    /// The retry budget is exhausted; the link is terminally down.
    LinkFailed,
}

type Connector = dyn Fn() -> Result<Arc<dyn FrameLink>, TransportError> + Send + Sync;
type EventHook = Arc<dyn Fn(u64, LinkEvent) + Send + Sync>;

/// At-least-once sending endpoint for one link.
pub struct SupervisedLink {
    link_id: u64,
    connector: Box<Connector>,
    active: Mutex<Option<Arc<dyn FrameLink>>>,
    replay: Arc<ReplayBuffer>,
    policy: ReconnectPolicy,
    stats: Arc<RecoveryStats>,
    next_seq: AtomicU64,
    heartbeat_nonce: AtomicU64,
    /// Per-link retransmit count (the shared [`RecoveryStats`] aggregates
    /// across links; this one feeds the link's own stats bundle).
    replayed: AtomicU64,
    /// Per-link cumulative-ack count.
    acks: AtomicU64,
    failed: AtomicBool,
    hook: RwLock<Option<EventHook>>,
    recorder: RwLock<Option<Arc<FlightRecorder>>>,
}

impl SupervisedLink {
    /// Supervise `link_id`, (re)connecting through `connector`, retaining
    /// up to `replay_budget_bytes` of unacked frames.
    pub fn new(
        link_id: u64,
        connector: impl Fn() -> Result<Arc<dyn FrameLink>, TransportError> + Send + Sync + 'static,
        policy: ReconnectPolicy,
        replay_budget_bytes: usize,
        stats: Arc<RecoveryStats>,
    ) -> Self {
        SupervisedLink {
            link_id,
            connector: Box::new(connector),
            active: Mutex::new(None),
            replay: Arc::new(ReplayBuffer::new(replay_budget_bytes)),
            policy,
            stats,
            next_seq: AtomicU64::new(0),
            heartbeat_nonce: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            acks: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            hook: RwLock::new(None),
            recorder: RwLock::new(None),
        }
    }

    /// Attach a flight recorder: the recovery lifecycle is timelined as
    /// [`EventKind::LinkCut`] → [`EventKind::Reconnecting`] →
    /// [`EventKind::Reconnected`] → [`EventKind::Replay`] (or
    /// [`EventKind::LinkFailed`]), with the link id as subject.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.recorder.write() = Some(recorder);
    }

    fn record_event(&self, kind: EventKind, detail: u64) {
        if let Some(r) = self.recorder.read().as_ref() {
            r.record(kind, self.link_id, detail);
        }
    }

    /// The supervised link's identity.
    pub fn link_id(&self) -> u64 {
        self.link_id
    }

    /// Register a lifecycle-event callback (`TelemetryHub` wiring point).
    pub fn on_event(&self, f: impl Fn(u64, LinkEvent) + Send + Sync + 'static) {
        *self.hook.write() = Some(Arc::new(f));
    }

    fn emit(&self, event: LinkEvent) {
        let hook = self.hook.read().clone();
        if let Some(hook) = hook {
            hook(self.link_id, event);
        }
    }

    /// Send one batch with at-least-once semantics: sequence it, retain
    /// it for replay, deliver (recovering the link if needed). Returns
    /// `Closed` only once the link is terminally failed.
    pub fn send_batch(
        &self,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
    ) -> Result<(), TransportError> {
        self.send_batch_traced(base_seq, encoded, count, sent_at_micros, None)
    }

    /// [`SupervisedLink::send_batch`] carrying a causal trace id for the
    /// sampled tracing path. The id rides the first transmission only;
    /// replayed copies are deliberately untraced (the span of interest —
    /// the original attempt — was already recorded).
    pub fn send_batch_traced(
        &self,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
        trace: Option<u64>,
    ) -> Result<(), TransportError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let evicted = self.replay.append(PendingFrame {
            frame_seq: seq,
            base_seq,
            count,
            encoded: encoded.clone(),
            sent_at_micros,
        });
        if evicted > 0 {
            self.stats.replay_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        let frame = OutboundFrame {
            link_id: self.link_id,
            seq: Some(seq),
            base_seq,
            count,
            encoded,
            sent_at_micros,
            trace,
        };
        let mut active = self.active.lock();
        if active.is_none() {
            *active = (self.connector)().ok();
        }
        if let Some(sink) = active.as_ref() {
            if sink.send_frame(&frame).is_ok() {
                return Ok(());
            }
        }
        // The frame is already in the replay buffer: recovery replays it.
        *active = None;
        self.recover_locked(&mut active)
    }

    /// Probe the link with a heartbeat control frame. A failed probe
    /// triggers the same recovery loop as a failed data send — idle links
    /// detect death without waiting for traffic.
    pub fn heartbeat(&self) -> Result<(), TransportError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let nonce = self.heartbeat_nonce.fetch_add(1, Ordering::Relaxed);
        let mut active = self.active.lock();
        if active.is_none() {
            *active = (self.connector)().ok();
        }
        if let Some(sink) = active.as_ref() {
            if sink.send_control(self.link_id, ControlKind::Heartbeat, nonce).is_ok() {
                RecoveryStats::bump(&self.stats.heartbeats_sent);
                return Ok(());
            }
        }
        *active = None;
        self.recover_locked(&mut active)
    }

    /// Send an aligned-checkpoint barrier control frame carrying
    /// `checkpoint_id`. Barriers travel in-band — after every data frame
    /// already handed to the transport — but are *not* retained for
    /// replay: after a cut the checkpoint that barrier belonged to is
    /// simply abandoned (the coordinator times it out) and the next
    /// barrier starts a fresh one, so replaying a stale barrier could
    /// only corrupt alignment. A failed send triggers the usual recovery
    /// loop so the data frames ahead of the barrier still arrive.
    pub fn barrier(&self, checkpoint_id: u64) -> Result<(), TransportError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let mut active = self.active.lock();
        if active.is_none() {
            *active = (self.connector)().ok();
        }
        if let Some(sink) = active.as_ref() {
            if sink.send_control(self.link_id, ControlKind::Barrier, checkpoint_id).is_ok() {
                return Ok(());
            }
        }
        *active = None;
        self.recover_locked(&mut active)
    }

    /// Deliver a cumulative acknowledgement: trims the replay buffer.
    pub fn ack(&self, cum_msg_seq: u64) {
        RecoveryStats::bump(&self.stats.acks_received);
        self.acks.fetch_add(1, Ordering::Relaxed);
        self.replay.ack(cum_msg_seq);
    }

    /// The replay buffer (shared with ack routers).
    pub fn replay(&self) -> &Arc<ReplayBuffer> {
        &self.replay
    }

    /// True once the retry budget was exhausted.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Frames sequenced so far.
    pub fn frames_sequenced(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Frames retransmitted on this link across all recoveries.
    pub fn frames_replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Cumulative acks this link has received.
    pub fn acks_received(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    /// Backoff → reconnect → replay, up to the policy's attempt budget.
    /// Runs under the `active` lock: concurrent senders queue behind the
    /// recovery instead of racing their own.
    fn recover_locked(
        &self,
        active: &mut Option<Arc<dyn FrameLink>>,
    ) -> Result<(), TransportError> {
        self.record_event(EventKind::LinkCut, self.replay.unacked().len() as u64);
        for attempt in 0..self.policy.max_attempts {
            self.emit(LinkEvent::Reconnecting { attempt });
            self.record_event(EventKind::Reconnecting, attempt as u64);
            RecoveryStats::bump(&self.stats.reconnect_attempts);
            std::thread::sleep(self.policy.delay_for(attempt));
            let Ok(sink) = (self.connector)() else { continue };
            let pending = self.replay.unacked();
            let mut replayed = 0u64;
            let mut replayed_bytes = 0u64;
            let mut completed = true;
            for pf in &pending {
                let frame = OutboundFrame {
                    link_id: self.link_id,
                    seq: Some(pf.frame_seq),
                    base_seq: pf.base_seq,
                    count: pf.count,
                    encoded: pf.encoded.clone(),
                    sent_at_micros: pf.sent_at_micros,
                    trace: None,
                };
                if sink.send_frame(&frame).is_err() {
                    completed = false;
                    break;
                }
                replayed += 1;
                replayed_bytes += pf.encoded.len() as u64;
            }
            self.stats.retransmits.fetch_add(replayed, Ordering::Relaxed);
            self.stats.retransmitted_bytes.fetch_add(replayed_bytes, Ordering::Relaxed);
            self.replayed.fetch_add(replayed, Ordering::Relaxed);
            if !completed {
                continue; // partial replay: duplicates are fine, retry whole set
            }
            RecoveryStats::bump(&self.stats.reconnects);
            *active = Some(sink);
            self.record_event(EventKind::Reconnected, attempt as u64);
            self.record_event(EventKind::Replay, replayed);
            self.emit(LinkEvent::Reconnected { replayed });
            return Ok(());
        }
        self.failed.store(true, Ordering::Release);
        RecoveryStats::bump(&self.stats.link_failures);
        self.record_event(EventKind::LinkFailed, 0);
        self.emit(LinkEvent::LinkFailed);
        Err(TransportError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosLink, FaultEvent, FaultPlan};
    use crate::dedup::{Admit, DedupFilter};
    use crate::transport::QueueLink;
    use neptune_net::frame::Frame;
    use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};

    fn batch(msgs: &[&[u8]]) -> (Bytes, u32) {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m);
        }
        (Bytes::from(out), msgs.len() as u32)
    }

    fn queue() -> Arc<WatermarkQueue<Frame>> {
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)))
    }

    #[test]
    fn healthy_link_sequences_and_trims_on_ack() {
        let q = queue();
        let stats = Arc::new(RecoveryStats::new());
        let q2 = q.clone();
        let link = SupervisedLink::new(
            1,
            move || Ok(Arc::new(QueueLink::new(q2.clone())) as Arc<dyn FrameLink>),
            ReconnectPolicy::fast(1),
            1 << 20,
            stats.clone(),
        );
        let (e, c) = batch(&[b"a", b"b"]);
        link.send_batch(0, e, c, 0).unwrap();
        let (e, c) = batch(&[b"c"]);
        link.send_batch(2, e, c, 0).unwrap();
        assert_eq!(q.pop().unwrap().seq, Some(0));
        assert_eq!(q.pop().unwrap().seq, Some(1));
        assert_eq!(link.replay().len(), 2);
        link.ack(2); // first frame (messages 0..2) retires
        assert_eq!(link.replay().len(), 1);
        link.ack(3);
        assert!(link.replay().is_empty());
        assert_eq!(stats.snapshot().acks_received, 2);
        assert_eq!(stats.snapshot().retransmits, 0);
    }

    #[test]
    fn cut_link_recovers_with_replay_and_dedup_sees_all_messages() {
        let q = queue();
        let stats = Arc::new(RecoveryStats::new());
        let plan = FaultPlan::new(3).with_event(FaultEvent::CutLink {
            link_id: 1,
            at_frame: 4,
            down_for: 3,
        });
        let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(q.clone())), &plan, 1));
        let chaos2 = chaos.clone();
        let link = SupervisedLink::new(
            1,
            move || Ok(chaos2.clone() as Arc<dyn FrameLink>),
            ReconnectPolicy::fast(3),
            1 << 20,
            stats.clone(),
        );
        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = events.clone();
        link.on_event(move |_, e| ev.lock().push(e));

        let dedup = DedupFilter::new();
        let mut delivered = Vec::new();
        for i in 0..10u64 {
            let payload = i.to_le_bytes();
            let (e, c) = batch(&[&payload]);
            link.send_batch(i, e, c, 0).unwrap();
            // Acks flow back as the consumer drains (cumulative).
            while let Some(f) = q.pop() {
                match dedup.admit(f.link_id, f.base_seq, f.len() as u32) {
                    Admit::Fresh => delivered.push(f.base_seq),
                    Admit::Duplicate | Admit::Overlap { .. } => {
                        RecoveryStats::bump(&stats.duplicates_dropped)
                    }
                }
                link.ack(dedup.ack_watermark(1).unwrap());
            }
        }
        assert_eq!(delivered, (0..10).collect::<Vec<_>>(), "zero loss, in order");
        let snap = stats.snapshot();
        assert!(snap.retransmits > 0, "the cut must force replay");
        assert!(snap.reconnects >= 1);
        assert_eq!(snap.link_failures, 0);
        let evs = events.lock();
        assert!(evs.contains(&LinkEvent::Reconnecting { attempt: 0 }));
        assert!(evs
            .iter()
            .any(|e| matches!(e, LinkEvent::Reconnected { replayed } if *replayed > 0)));
    }

    #[test]
    fn exhausted_retries_fail_terminally() {
        let stats = Arc::new(RecoveryStats::new());
        let mut policy = ReconnectPolicy::fast(9);
        policy.max_attempts = 3;
        let link = SupervisedLink::new(
            7,
            || Err(TransportError::Io("connect refused".into())),
            policy,
            1 << 16,
            stats.clone(),
        );
        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = events.clone();
        link.on_event(move |id, e| ev.lock().push((id, e)));
        let (e, c) = batch(&[b"x"]);
        assert_eq!(link.send_batch(0, e.clone(), c, 0), Err(TransportError::Closed));
        assert!(link.is_failed());
        // Fast-fail thereafter: no more attempts burned.
        let before = stats.snapshot().reconnect_attempts;
        assert_eq!(link.send_batch(1, e, c, 0), Err(TransportError::Closed));
        assert_eq!(stats.snapshot().reconnect_attempts, before);
        assert_eq!(stats.snapshot().link_failures, 1);
        assert!(events.lock().contains(&(7, LinkEvent::LinkFailed)));
        assert_eq!(link.heartbeat(), Err(TransportError::Closed));
    }

    #[test]
    fn heartbeats_probe_and_recover_idle_links() {
        let q = queue();
        let stats = Arc::new(RecoveryStats::new());
        let q2 = q.clone();
        let link = SupervisedLink::new(
            2,
            move || Ok(Arc::new(QueueLink::new(q2.clone())) as Arc<dyn FrameLink>),
            ReconnectPolicy::fast(5),
            1 << 16,
            stats.clone(),
        );
        link.heartbeat().unwrap();
        link.heartbeat().unwrap();
        assert_eq!(stats.snapshot().heartbeats_sent, 2);
        let hb = q.pop().unwrap();
        assert_eq!(hb.control, Some(ControlKind::Heartbeat));
        assert_eq!(hb.base_seq, 0, "nonces increase");
        assert_eq!(q.pop().unwrap().base_seq, 1);
    }
}
