//! The trace-tagging layer of the link stack: which flushed batches carry
//! a causal trace id, and how those ids are minted.
//!
//! Two disciplines ship, matching the two places tracing existed before
//! the link stack unified them:
//!
//! * [`TraceTagger::sampled`] — the runtime-channel discipline. A batch
//!   carries the id tagged by a traced inbound packet (propagation), or —
//!   on originating endpoints — a freshly minted id when the batch covers
//!   a sampled sequence number (1-in-N by the span ring's sampling
//!   stride). A traced batch also records its `buffer-wait` span and
//!   stamps `sent_at` lazily, so untraced batches pay no clock read.
//! * [`TraceTagger::every_n`] — the cluster-egress discipline. Every
//!   `n`-th frame on the link is traced, with ids minted from the link id
//!   and frame number; no span is recorded sender-side (the receiving
//!   plane records ingest spans).
//!
//! Both mint nonzero ids, because 0 means "untraced" on the wire
//! (`FLAG_TRACE` is only attached for `Some(id)`).

use neptune_telemetry::{PendingTrace, Span, SpanRing, STAGE_BUFFER_WAIT};
use std::sync::Arc;

/// Trace ids on sampled links are minted from the originating link and
/// the sampled packet's sequence number — reproducible across runs of the
/// same stream, unique enough across links to follow in a trace viewer.
/// Ids are nonzero (seq+1) because 0 means "untraced" on the wire.
pub fn mint_sampled_trace_id(link_id: u64, seq: u64) -> u64 {
    (link_id << 40) | ((seq + 1) & 0xFF_FFFF_FFFF)
}

/// Trace ids on every-N links fold the link id with the frame number (+1
/// for nonzero), mirroring the cluster egress discipline.
pub fn mint_every_n_trace_id(link_id: u64, frame_no: u64) -> u64 {
    (link_id << 20) ^ (frame_no + 1)
}

enum Mode {
    Sampled {
        /// Shared span ring of the job.
        ring: Arc<SpanRing>,
        /// Track id of the sending operator.
        track: u16,
        /// True on source-operator endpoints: deterministically sample
        /// 1-in-N emitted packets by sequence number and mint their trace
        /// ids. Downstream endpoints only *propagate* ids.
        originate: bool,
        /// Trace id of the first traced packet in the currently open batch.
        pending: PendingTrace,
    },
    EveryN {
        /// Trace every `n`-th frame (0 = never).
        every: u64,
    },
}

/// Decides, per flushed batch, whether it carries a trace id.
pub struct TraceTagger {
    mode: Mode,
}

impl TraceTagger {
    /// The runtime-channel discipline: propagate tagged inbound ids, and
    /// (when `originate`) mint ids for batches covering a sampled
    /// sequence number.
    pub fn sampled(ring: Arc<SpanRing>, track: u16, originate: bool) -> Self {
        TraceTagger { mode: Mode::Sampled { ring, track, originate, pending: PendingTrace::new() } }
    }

    /// The cluster-egress discipline: trace every `every`-th frame on the
    /// link (0 disables tracing).
    pub fn every_n(every: u64) -> Self {
        TraceTagger { mode: Mode::EveryN { every } }
    }

    /// Propagate an inbound packet's trace id onto the batch currently
    /// building. No-op for every-N taggers (they mint, never propagate).
    pub fn tag_inbound(&self, trace_id: u64) {
        if let Mode::Sampled { pending, .. } = &self.mode {
            pending.set_if_empty(trace_id);
        }
    }

    /// Decide the trace id for one flushed batch. `frame_no` is the
    /// link's flush ordinal (used by every-N tagging); `sent_at` is the
    /// batch's wall-clock stamp, written lazily when a sampled batch is
    /// traced but telemetry had not already stamped it.
    pub fn tag_batch(
        &self,
        link_id: u64,
        base_seq: u64,
        count: u32,
        frame_no: u64,
        queueing_delay_micros: u64,
        sent_at: &mut u64,
    ) -> Option<u64> {
        match &self.mode {
            Mode::Sampled { ring, track, originate, pending } => {
                let mut id = pending.take();
                if id.is_none() && *originate {
                    let mask = ring.sample_every() - 1;
                    let first = (base_seq + mask) & !mask;
                    if first < base_seq + count as u64 {
                        id = Some(mint_sampled_trace_id(link_id, first));
                    }
                }
                if let Some(id) = id {
                    if *sent_at == 0 {
                        *sent_at = crate::now_micros();
                    }
                    ring.record(Span {
                        trace_id: id,
                        start_micros: sent_at.saturating_sub(queueing_delay_micros),
                        dur_micros: queueing_delay_micros,
                        stage: STAGE_BUFFER_WAIT,
                        track: *track,
                    });
                }
                id
            }
            Mode::EveryN { every } => (*every > 0 && frame_no.is_multiple_of(*every))
                .then(|| mint_every_n_trace_id(link_id, frame_no)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_tagger_mints_on_sampled_seq_and_stamps_lazily() {
        let ring = Arc::new(SpanRing::new(64, 4));
        let track = ring.register_track("src");
        let t = TraceTagger::sampled(ring.clone(), track, true);
        let mut sent_at = 0u64;
        // Batch [0, 3): covers seq 0, which is sampled at 1-in-4.
        let id = t.tag_batch(9, 0, 3, 0, 250, &mut sent_at);
        assert_eq!(id, Some(mint_sampled_trace_id(9, 0)));
        assert!(sent_at > 0, "traced batch must stamp sent-at lazily");
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, STAGE_BUFFER_WAIT);
        assert_eq!(spans[0].dur_micros, 250);
        // Batch [5, 7): covers no multiple of 4 — untraced, unstamped.
        let mut sent_at = 0u64;
        assert_eq!(t.tag_batch(9, 5, 2, 1, 0, &mut sent_at), None);
        assert_eq!(sent_at, 0, "untraced batch pays no clock read");
    }

    #[test]
    fn sampled_tagger_propagates_tags_over_minting() {
        let ring = Arc::new(SpanRing::new(64, 1));
        let t = TraceTagger::sampled(ring.clone(), ring.register_track("relay"), false);
        let mut sent_at = 7u64;
        assert_eq!(t.tag_batch(1, 0, 1, 0, 0, &mut sent_at), None, "no tag, no origination");
        t.tag_inbound(0xBEEF);
        assert_eq!(t.tag_batch(1, 1, 1, 1, 0, &mut sent_at), Some(0xBEEF));
        assert_eq!(t.tag_batch(1, 2, 1, 2, 0, &mut sent_at), None, "tag consumed");
        assert_eq!(sent_at, 7, "pre-stamped batches keep their stamp");
    }

    #[test]
    fn every_n_tagger_traces_by_frame_ordinal() {
        let t = TraceTagger::every_n(4);
        let mut sent_at = 0u64;
        assert_eq!(t.tag_batch(3, 0, 1, 0, 0, &mut sent_at), Some(mint_every_n_trace_id(3, 0)));
        assert_eq!(t.tag_batch(3, 1, 1, 1, 0, &mut sent_at), None);
        assert_eq!(t.tag_batch(3, 4, 1, 4, 0, &mut sent_at), Some(mint_every_n_trace_id(3, 4)));
        assert_eq!(sent_at, 0, "every-N tagging never stamps sender-side");
        t.tag_inbound(0xDEAD);
        assert_eq!(t.tag_batch(3, 5, 1, 5, 0, &mut sent_at), None, "every-N never propagates");
        let off = TraceTagger::every_n(0);
        assert_eq!(off.tag_batch(3, 0, 1, 0, 0, &mut sent_at), None);
    }
}
