//! The transport layer of the link stack: how one outbound frame reaches
//! the destination, flavour by flavour.
//!
//! [`FrameLink`] is the pluggable bottom of the stack. It carries data
//! frames — sequenced (`FLAG_SEQ`, when a reliability layer assigned a
//! frame sequence number) or bare — and control frames (heartbeats,
//! acks). Every flavour blocks under backpressure, which is what lets
//! watermark gating propagate upstream (NEPTUNE §III-B4): a worker that
//! cannot hand off a batch simply does not return from `send_frame`, and
//! the stream processor that produced it is not rescheduled — *"The
//! stream processors are not scheduled again until these write operations
//! are successful."*
//!
//! Flavours shipping here:
//!
//! * [`QueueLink`] — both operator instances live in the same process;
//!   the batch buffer is handed over as a decoded
//!   [`Frame`] with no wire encoding, no compression, and **no copy**:
//!   the refcounted `Bytes` batch the output buffer flushed is the same
//!   storage the receiving task reads messages from.
//! * [`TcpFrameLink`] — instances on different resources; the batch is
//!   encoded with [`encode_frame_raw_traced`] and carried by a
//!   [`TcpSender`], which fronts *both* the blocking-writer path and the
//!   epoll-reactor path (the two TCP flavours share one wire format).
//! * [`crate::chaos::ChaosLink`] — interposes scripted fault injection on
//!   any of the above.

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_net::frame::{
    encode_control_frame, encode_frame_raw_traced, ControlKind, Frame, FrameMessages,
    FRAME_HEADER_LEN,
};
use neptune_net::tcp::TcpSender;
use neptune_net::transport::TransportError;
use neptune_net::watermark::WatermarkQueue;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One frame on its way out: everything a transport needs to send it now
/// and a [`crate::replay::ReplayBuffer`] needs to send it again.
#[derive(Debug, Clone)]
pub struct OutboundFrame {
    /// Link identity (routing key for acks).
    pub link_id: u64,
    /// Per-link frame sequence number, assigned by the reliability layer
    /// (`None` on links without ack/replay — nothing rides `FLAG_SEQ`).
    pub seq: Option<u64>,
    /// Message sequence of the first message.
    pub base_seq: u64,
    /// Messages in the batch.
    pub count: u32,
    /// Length-prefixed message concatenation.
    pub encoded: Bytes,
    /// Sender wall clock at flush, µs (0 = unstamped).
    pub sent_at_micros: u64,
    /// Causal trace id to carry via `FLAG_TRACE` (`None` = untraced).
    pub trace: Option<u64>,
}

/// A transport that can carry data frames and control frames. Returns the
/// wire-equivalent byte count of what was sent so every flavour accounts
/// identically.
pub trait FrameLink: Send + Sync {
    /// Deliver one data frame. Blocks under backpressure; returns the
    /// frame's wire-equivalent length in bytes.
    fn send_frame(&self, frame: &OutboundFrame) -> Result<usize, TransportError>;

    /// Deliver one control frame (heartbeat probe, explicit ack).
    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError>;

    /// The destination watermark queue, for in-process flavours whose
    /// backpressure gate the runtime wires pumps and wakers to. `None`
    /// for wire transports (their backpressure lives in the sender's IO
    /// queue).
    fn queue(&self) -> Option<&Arc<WatermarkQueue<Frame>>> {
        None
    }
}

type DeliverHook = Arc<dyn Fn() + Send + Sync>;

/// In-process transport: frames land decoded on the destination
/// [`WatermarkQueue`], sharing the sender's batch buffer (zero-copy).
/// Used by the runtime's co-located links, by the reliability layer
/// (carrying the frame sequence number for dedup/ack), and by the chaos
/// harness (CI-testable recovery without sockets).
pub struct QueueLink {
    queue: Arc<WatermarkQueue<Frame>>,
    on_deliver: RwLock<Option<DeliverHook>>,
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl QueueLink {
    /// Wrap a destination queue.
    pub fn new(queue: Arc<WatermarkQueue<Frame>>) -> Self {
        QueueLink {
            queue,
            on_deliver: RwLock::new(None),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Register a callback invoked after every delivered frame (wired to
    /// the destination task's data-driven signal).
    pub fn on_deliver<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        *self.on_deliver.write() = Some(Arc::new(f));
    }

    /// The destination queue.
    pub fn queue(&self) -> &Arc<WatermarkQueue<Frame>> {
        &self.queue
    }

    /// Frames delivered so far (shed-dropped frames excluded).
    pub fn frames_sent(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Wire-equivalent bytes delivered so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl FrameLink for QueueLink {
    fn send_frame(&self, frame: &OutboundFrame) -> Result<usize, TransportError> {
        // Wire-equivalent accounting: header + compression tag + body,
        // plus the 8-byte `FLAG_SEQ` extension when sequenced.
        let wire_len =
            FRAME_HEADER_LEN + frame.encoded.len() + 1 + if frame.seq.is_some() { 8 } else { 0 };
        // Zero-copy split: the frame's messages are ranges into `encoded`.
        let messages = FrameMessages::parse_prefixed(frame.encoded.clone(), Some(frame.count))
            .map_err(TransportError::Malformed)?;
        let decoded = Frame {
            link_id: frame.link_id,
            base_seq: frame.base_seq,
            messages,
            wire_len,
            sent_at_micros: frame.sent_at_micros,
            received_at: Some(std::time::Instant::now()),
            seq: frame.seq,
            control: None,
            trace: frame.trace,
        };
        let outcome = self.queue.push_blocking(decoded).map_err(TransportError::from_push)?;
        if !outcome.accepted() {
            // The queue's armed ShedPolicy dropped the incoming frame to
            // bound latency; it was never enqueued, so nothing was "sent"
            // and there is no delivery to signal.
            return Ok(wire_len);
        }
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(wire_len as u64, Ordering::Relaxed);
        let hook = self.on_deliver.read().clone();
        if let Some(hook) = hook {
            hook();
        }
        Ok(wire_len)
    }

    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError> {
        let frame = Frame {
            link_id,
            base_seq: value,
            messages: FrameMessages::empty(),
            wire_len: FRAME_HEADER_LEN + 8,
            sent_at_micros: 0,
            received_at: Some(std::time::Instant::now()),
            seq: None,
            control: Some(kind),
            trace: None,
        };
        self.queue.push_blocking(frame).map_err(TransportError::from_push)?;
        // Control frames must wake the consumer too: a checkpoint barrier
        // delivered to an idle task would otherwise sit unprocessed until
        // the next data frame, wedging alignment on quiet channels.
        let hook = self.on_deliver.read().clone();
        if let Some(hook) = hook {
            hook();
        }
        Ok(())
    }

    fn queue(&self) -> Option<&Arc<WatermarkQueue<Frame>>> {
        Some(&self.queue)
    }
}

/// TCP transport: encodes frames onto the wire (with the `FLAG_SEQ`
/// extension when sequenced) and hands them to a [`TcpSender`] — blocking
/// writer thread or epoll reactor, whichever the sender was built on.
pub struct TcpFrameLink {
    sender: TcpSender,
    compressor: SelectiveCompressor,
}

impl TcpFrameLink {
    /// Wrap a connected sender with the link's compression policy.
    pub fn new(sender: TcpSender, compressor: SelectiveCompressor) -> Self {
        TcpFrameLink { sender, compressor }
    }

    /// The wrapped sender.
    pub fn sender(&self) -> &TcpSender {
        &self.sender
    }
}

impl FrameLink for TcpFrameLink {
    fn send_frame(&self, frame: &OutboundFrame) -> Result<usize, TransportError> {
        let wire = encode_frame_raw_traced(
            frame.link_id,
            frame.base_seq,
            frame.count,
            &frame.encoded,
            &self.compressor,
            frame.sent_at_micros,
            frame.seq,
            frame.trace,
        );
        let len = wire.len();
        self.sender.send(wire)?;
        Ok(len)
    }

    fn send_control(
        &self,
        link_id: u64,
        kind: ControlKind,
        value: u64,
    ) -> Result<(), TransportError> {
        self.sender.send(encode_control_frame(link_id, kind, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_net::watermark::WatermarkConfig;

    fn prefixed(msgs: &[&[u8]]) -> (Bytes, u32) {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m);
        }
        (Bytes::from(out), msgs.len() as u32)
    }

    fn frame(seq: Option<u64>, base_seq: u64, encoded: Bytes, count: u32) -> OutboundFrame {
        OutboundFrame { link_id: 5, seq, base_seq, count, encoded, sent_at_micros: 0, trace: None }
    }

    #[test]
    fn queue_link_carries_seq_and_control() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let (encoded, count) = prefixed(&[b"a", b"b"]);
        link.send_frame(&frame(Some(17), 100, encoded, count)).unwrap();
        link.send_control(5, ControlKind::Heartbeat, 3).unwrap();
        let f = q.pop().unwrap();
        assert_eq!(f.seq, Some(17));
        assert_eq!(f.base_seq, 100);
        assert_eq!(f.len(), 2);
        let hb = q.pop().unwrap();
        assert_eq!(hb.control, Some(ControlKind::Heartbeat));
        assert_eq!(hb.base_seq, 3);
        assert!(hb.is_empty());
    }

    #[test]
    fn bare_frames_skip_the_seq_extension_in_accounting() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let (encoded, count) = prefixed(&[b"x"]);
        let body = encoded.len();
        let bare = link.send_frame(&frame(None, 0, encoded.clone(), count)).unwrap();
        let sequenced = link.send_frame(&frame(Some(0), 1, encoded, count)).unwrap();
        assert_eq!(bare, FRAME_HEADER_LEN + body + 1);
        assert_eq!(sequenced, bare + 8, "FLAG_SEQ adds exactly 8 bytes");
        assert_eq!(q.pop().unwrap().seq, None);
        assert_eq!(q.pop().unwrap().seq, Some(0));
    }

    #[test]
    fn queue_link_counts_and_signals_deliveries() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        link.on_deliver(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let (encoded, count) = prefixed(&[b"a"]);
        link.send_frame(&frame(None, 0, encoded.clone(), count)).unwrap();
        link.send_frame(&frame(None, 1, encoded, count)).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(link.frames_sent(), 2);
        assert!(link.bytes_sent() > 0);
    }

    #[test]
    fn control_frames_signal_delivery_too() {
        // Regression: a barrier sent to an idle consumer must fire the
        // delivery hook, or the task is never scheduled to align it and
        // the queue looks busy forever (settle() then times out).
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        link.on_deliver(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        link.send_control(5, ControlKind::Barrier, 9).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1, "control delivery must signal the consumer");
        assert_eq!(q.pop().unwrap().control, Some(ControlKind::Barrier));
    }

    #[test]
    fn delivered_frame_shares_the_batch_buffer() {
        // The whole point of the in-process path: no copy on handover.
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        let (encoded, count) = prefixed(&[b"shared"]);
        let batch_ptr = encoded.as_ptr() as usize;
        link.send_frame(&frame(None, 0, encoded, count)).unwrap();
        let f = q.pop().unwrap();
        let range = batch_ptr..batch_ptr + f.messages.batch().len();
        assert!(
            range.contains(&(f.messages[0].as_ptr() as usize)),
            "message must alias the sender's batch buffer"
        );
    }

    #[test]
    fn count_mismatch_rejected() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q);
        let (encoded, _) = prefixed(&[b"x", b"y"]);
        assert!(matches!(
            link.send_frame(&frame(None, 0, encoded, 3)),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn queue_link_surfaces_close_as_error() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let link = QueueLink::new(q.clone());
        q.close();
        let (encoded, count) = prefixed(&[b"x"]);
        assert_eq!(
            link.send_frame(&frame(Some(0), 0, encoded, count)),
            Err(TransportError::Closed)
        );
        assert_eq!(link.send_control(1, ControlKind::Ack, 0), Err(TransportError::Closed));
    }

    #[test]
    fn blocks_under_backpressure_until_drained() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(64, 8)));
        let link = Arc::new(QueueLink::new(q.clone()));
        let (encoded, count) = prefixed(&[&[0u8; 60]]);
        link.send_frame(&frame(None, 0, encoded.clone(), count)).unwrap(); // gates the queue
        assert!(q.is_gated());
        let l2 = link.clone();
        let e2 = encoded.clone();
        let sender = std::thread::spawn(move || l2.send_frame(&frame(None, 1, e2, count)));
        assert!(neptune_net::test_support::wait_for(std::time::Duration::from_secs(5), || {
            q.gate_events() == 1
        }));
        assert_eq!(q.total_pushed(), 1, "second send must be blocked");
        q.pop().unwrap();
        sender.join().unwrap().unwrap();
        assert_eq!(q.total_pushed(), 2);
    }
}
