//! Cross-flavour conformance suite for the link stack.
//!
//! Every transport flavour the [`LinkBuilder`] can assemble — in-process
//! queue, blocking TCP, reactor TCP, and chaos-injected — must satisfy
//! the same contract:
//!
//! * **Backpressure gates, it does not drop.** When the destination
//!   queue crosses its high watermark, sends park until the consumer
//!   drains; every frame still arrives, in order.
//! * **Closed is not Gated.** A closed destination surfaces
//!   [`TransportError::Closed`] (and TCP teardown at worst `Io`) —
//!   never `Backpressure`, which callers may retry forever.
//! * **Exactly-once under seeded cuts.** With the reliability layer on
//!   top and a [`ReliableIngress`] at the sink, a mid-stream link cut
//!   (scripted for chaos links, a server-side connection drop for the
//!   TCP flavours) loses nothing and duplicates nothing.
//! * **Extension flags round-trip.** `FLAG_SEQ` (reliability),
//!   `FLAG_TRACE` (tagging), and `FLAG_SENT_AT` (latency stamps)
//!   survive the wire on every flavour, bit-identically.
//!
//! The fault script is positional and seeded; the CI chaos job replays
//! the whole suite under several seeds (`NEPTUNE_CHAOS_SEED`).

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_granules::{IoPool, Reactor};
use neptune_link::tag::mint_every_n_trace_id;
use neptune_link::{
    AckMode, ChaosLink, FaultEvent, FaultPlan, FrameLink, IngressVerdict, Link, LinkBuilder,
    QueueLink, ReconnectPolicy, RecoveryStats, ReliableIngress, TcpFrameLink, TraceTagger,
    TransportError,
};
use neptune_net::frame::Frame;
use neptune_net::tcp::{TcpReceiver, TcpSender};
use neptune_net::test_support::wait_for;
use neptune_net::watermark::{PushError, WatermarkConfig, WatermarkQueue};
use neptune_net::NetDriver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for the scripted faults; the CI chaos job varies it.
fn chaos_seed() -> u64 {
    std::env::var("NEPTUNE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavour {
    InProcess,
    BlockingTcp,
    ReactorTcp,
    Chaos,
}

const ALL_FLAVOURS: [Flavour; 4] =
    [Flavour::InProcess, Flavour::BlockingTcp, Flavour::ReactorTcp, Flavour::Chaos];

/// One assembled link plus everything that must outlive it, torn down
/// in dependency order (link, then receiver, then IO pool, then
/// reactor).
struct Fixture {
    link: Arc<Link>,
    sink: Arc<WatermarkQueue<Frame>>,
    stats: Arc<RecoveryStats>,
    rx: Option<TcpReceiver>,
    net: Option<(IoPool, Reactor)>,
}

impl Fixture {
    fn shutdown(self) {
        drop(self.link);
        if let Some(rx) = self.rx {
            rx.shutdown();
        }
        if let Some((pool, reactor)) = self.net {
            drop(pool);
            drop(reactor);
        }
    }
}

/// Assemble one link of the given flavour through the shared builder.
/// `reliable` layers replay + acks on top (for the TCP flavours via a
/// reconnecting connector, so a severed connection is re-dialed);
/// `trace_every` installs an every-N tagger; `plan` scripts faults on
/// the chaos flavour.
fn build(
    flavour: Flavour,
    id: u64,
    watermark: WatermarkConfig,
    reliable: bool,
    trace_every: u64,
    plan: Option<&FaultPlan>,
    seed: u64,
) -> Fixture {
    let stats = Arc::new(RecoveryStats::new());
    let mut builder = LinkBuilder::new(id);
    if trace_every > 0 {
        builder = builder.tracing(TraceTagger::every_n(trace_every));
    }
    match flavour {
        Flavour::InProcess => {
            let q = Arc::new(WatermarkQueue::new(watermark));
            builder = builder.in_process(q.clone());
            if reliable {
                builder = builder.reliable(ReconnectPolicy::fast(seed), 1 << 20, stats.clone());
            }
            Fixture { link: builder.build(), sink: q, stats, rx: None, net: None }
        }
        Flavour::Chaos => {
            let q = Arc::new(WatermarkQueue::new(watermark));
            let quiet = FaultPlan::new(seed);
            let plan = plan.unwrap_or(&quiet);
            let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(q.clone())), plan, id));
            builder = builder.transport(chaos);
            if reliable {
                builder = builder.reliable(ReconnectPolicy::fast(seed), 1 << 20, stats.clone());
            }
            Fixture { link: builder.build(), sink: q, stats, rx: None, net: None }
        }
        Flavour::BlockingTcp => {
            let rx = TcpReceiver::bind("127.0.0.1:0", watermark).expect("bind");
            let addr = rx.local_addr();
            if reliable {
                builder = builder.reliable_with(
                    Box::new(move || {
                        let tx = TcpSender::connect(addr, 64)
                            .map_err(|e| TransportError::Io(e.to_string()))?;
                        Ok(Arc::new(TcpFrameLink::new(tx, SelectiveCompressor::disabled()))
                            as Arc<dyn FrameLink>)
                    }),
                    ReconnectPolicy::fast(seed),
                    1 << 20,
                    stats.clone(),
                );
            } else {
                let tx = TcpSender::connect(addr, 64).expect("connect");
                builder = builder.tcp(tx, SelectiveCompressor::disabled());
            }
            let sink = rx.queue().clone();
            Fixture { link: builder.build(), sink, stats, rx: Some(rx), net: None }
        }
        Flavour::ReactorTcp => {
            let reactor = Reactor::new("conformance-net").expect("reactor thread");
            let pool = IoPool::new("conformance-net", 2);
            let driver = NetDriver::new(pool.spawner(), reactor.handle());
            let rx = TcpReceiver::bind_reactor("127.0.0.1:0", watermark, &driver).expect("bind");
            let addr = rx.local_addr();
            if reliable {
                builder = builder.reliable_with(
                    Box::new(move || {
                        let tx = TcpSender::connect_reactor(addr, 64, &driver)
                            .map_err(|e| TransportError::Io(e.to_string()))?;
                        Ok(Arc::new(TcpFrameLink::new(tx, SelectiveCompressor::disabled()))
                            as Arc<dyn FrameLink>)
                    }),
                    ReconnectPolicy::fast(seed),
                    1 << 20,
                    stats.clone(),
                );
            } else {
                let tx = TcpSender::connect_reactor(addr, 64, &driver).expect("connect");
                builder = builder.tcp(tx, SelectiveCompressor::disabled());
            }
            let sink = rx.queue().clone();
            Fixture { link: builder.build(), sink, stats, rx: Some(rx), net: Some((pool, reactor)) }
        }
    }
}

fn batch_of(msgs: &[&[u8]]) -> (Bytes, u32) {
    let mut out = Vec::new();
    for m in msgs {
        out.extend_from_slice(&(m.len() as u32).to_le_bytes());
        out.extend_from_slice(m);
    }
    (Bytes::from(out), msgs.len() as u32)
}

/// A consumer that never pops gates every flavour's sink at its high
/// watermark; once draining starts, every parked frame comes through in
/// order with nothing dropped.
#[test]
fn backpressure_gates_sends_without_loss() {
    let seed = chaos_seed();
    for flavour in ALL_FLAVOURS {
        const N: u64 = 64;
        // High watermark a few frames deep: ~208-byte payloads gate the
        // sink long before the 64-frame stream completes.
        let fx = build(flavour, 11, WatermarkConfig::new(1024, 256), false, 0, None, seed);
        let link = fx.link.clone();
        let sender = std::thread::spawn(move || {
            for i in 0..N {
                let (encoded, count) = batch_of(&[&[0u8; 200][..], &i.to_le_bytes()[..]]);
                link.send_batch(i * 2, encoded, count, 0, 0).expect("gated sends park, not fail");
            }
        });
        // `is_gated`, not `gate_events`: the reactor read task checks the
        // gate *before* pushing (no bounced push, no gate event), so the
        // flag is the one signal every flavour raises.
        assert!(
            wait_for(Duration::from_secs(10), || fx.sink.is_gated()),
            "{flavour:?}: sink never crossed its high watermark (pushed {}, buffered {})",
            fx.sink.total_pushed(),
            fx.sink.len()
        );
        for i in 0..N {
            let f = fx.sink.pop_timeout(Duration::from_secs(10)).unwrap_or_else(|| {
                panic!("{flavour:?}: frame {i}/{N} never arrived after the gate opened")
            });
            assert_eq!(f.base_seq, i * 2, "{flavour:?}: frames reordered under backpressure");
            assert_eq!(f.len(), 2, "{flavour:?}: batch split or merged in flight");
        }
        sender.join().expect("sender thread");
        assert!(
            fx.sink.pop_timeout(Duration::from_millis(50)).is_none(),
            "{flavour:?}: duplicate frames after drain"
        );
        fx.shutdown();
    }
}

/// A *closed* destination is a terminal error, distinct from the
/// retryable `Backpressure` a gated queue maps to. Queue-backed
/// flavours surface exactly `Closed`; the TCP flavours learn of the
/// severed socket asynchronously and surface `Closed` or `Io` — never
/// `Backpressure`.
#[test]
fn closed_destination_is_not_backpressure() {
    let seed = chaos_seed();
    let (encoded, count) = batch_of(&[b"shutdown"]);
    for flavour in [Flavour::InProcess, Flavour::Chaos] {
        let fx = build(flavour, 12, WatermarkConfig::new(1 << 20, 1 << 10), false, 0, None, seed);
        fx.sink.close();
        let err = fx
            .link
            .send_batch(0, encoded.clone(), count, 0, 0)
            .expect_err("send into a closed queue must fail");
        assert!(
            matches!(err, TransportError::Closed),
            "{flavour:?}: closed queue surfaced {err:?}, want Closed"
        );
        fx.shutdown();
    }
    for flavour in [Flavour::BlockingTcp, Flavour::ReactorTcp] {
        let fx = build(flavour, 12, WatermarkConfig::new(1 << 20, 1 << 10), false, 0, None, seed);
        // Sever every established connection server-side. The sender
        // only learns when its writer hits the dead socket, so keep
        // sending until the failure surfaces.
        assert!(
            wait_for(Duration::from_secs(10), || fx
                .rx
                .as_ref()
                .expect("tcp fixture")
                .chaos_drop_connections()
                > 0),
            "{flavour:?}: no established connection to sever"
        );
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut seq = 0u64;
        let err = loop {
            match fx.link.send_batch(seq, encoded.clone(), count, 0, 0) {
                Ok(_) => {
                    seq += u64::from(count);
                    assert!(
                        Instant::now() < deadline,
                        "{flavour:?}: sends kept succeeding after the socket died"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        assert!(
            !matches!(err, TransportError::Backpressure),
            "{flavour:?}: socket death surfaced as retryable Backpressure"
        );
        assert!(
            matches!(err, TransportError::Closed | TransportError::Io(_)),
            "{flavour:?}: socket death surfaced {err:?}"
        );
        fx.shutdown();
    }
}

/// The shared error taxonomy itself: a gated push maps to
/// `Backpressure`, a closed push to `Closed`. This is the mapping the
/// cluster ingress relies on to withhold acks instead of dropping.
#[test]
fn push_errors_map_onto_distinct_transport_errors() {
    let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(8, 4));
    // First push crosses the high watermark and gates the queue; the
    // second bounces as Gated.
    q.push_timeout(vec![0u8; 16], Duration::from_millis(10)).expect("first push admitted");
    let gated = q.push_timeout(vec![1u8; 16], Duration::from_millis(10)).expect_err("gated");
    assert!(matches!(gated, PushError::Gated(_)));
    assert!(matches!(TransportError::from_push(gated), TransportError::Backpressure));
    q.close();
    let closed = q.push_timeout(vec![2u8; 16], Duration::from_millis(10)).expect_err("closed");
    assert!(matches!(closed, PushError::Closed(_)));
    assert!(matches!(TransportError::from_push(closed), TransportError::Closed));
}

/// FLAG_SEQ, FLAG_TRACE, and FLAG_SENT_AT survive every flavour's wire
/// bit-identically: the reliability layer stamps the frame sequence,
/// the every-N tagger mints the trace id, and the caller's send stamp
/// arrives unchanged.
#[test]
fn extension_flags_round_trip_on_every_flavour() {
    let seed = chaos_seed();
    const LINK: u64 = 21;
    for flavour in ALL_FLAVOURS {
        let fx = build(flavour, LINK, WatermarkConfig::new(1 << 20, 1 << 10), true, 1, None, seed);
        for i in 0..3u64 {
            let (encoded, count) = batch_of(&[&i.to_le_bytes()]);
            fx.link.send_batch(i, encoded, count, 777_000 + i, 0).expect("send");
        }
        let ingress = ReliableIngress::new(AckMode::Immediate);
        for i in 0..3u64 {
            let f = fx
                .sink
                .pop_timeout(Duration::from_secs(10))
                .unwrap_or_else(|| panic!("{flavour:?}: frame {i} never arrived"));
            assert_eq!(f.link_id, LINK, "{flavour:?}");
            assert_eq!(f.base_seq, i, "{flavour:?}");
            assert_eq!(f.seq, Some(i), "{flavour:?}: FLAG_SEQ lost or renumbered");
            assert_eq!(
                f.trace,
                Some(mint_every_n_trace_id(LINK, i)),
                "{flavour:?}: FLAG_TRACE lost or re-minted"
            );
            assert_eq!(f.sent_at_micros, 777_000 + i, "{flavour:?}: FLAG_SENT_AT mangled");
            let msgs: Vec<Vec<u8>> = f.messages.iter().map(|m| m.to_vec()).collect();
            assert_eq!(msgs, vec![i.to_le_bytes().to_vec()], "{flavour:?}: payload mangled");
            assert!(
                matches!(
                    ingress.admit(f.link_id, f.base_seq, f.len() as u32),
                    IngressVerdict::Deliver { skip: 0 }
                ),
                "{flavour:?}: first delivery misclassified"
            );
            if let Some((_, watermark)) = ingress.stage_ack(f.link_id) {
                fx.link.ack(watermark);
            }
        }
        let sup = fx.link.reliability().expect("reliable link").clone();
        assert!(
            wait_for(Duration::from_secs(5), || sup.replay().is_empty()),
            "{flavour:?}: acks never trimmed the replay buffer"
        );
        fx.shutdown();
    }
}

/// The headline property: a reliable link over any flavour delivers the
/// stream exactly once through a [`ReliableIngress`], even when the
/// link is cut mid-stream at a seeded position. The chaos flavour cuts
/// via its fault script; the TCP flavours drop every established
/// connection server-side (losing frames the wire had already accepted)
/// and must reconnect + replay; the in-process queue cannot be cut and
/// pins the degenerate case.
#[test]
fn exactly_once_under_seeded_cuts() {
    let seed = chaos_seed();
    const LINK: u64 = 31;
    const TOTAL: u64 = 150;
    for flavour in ALL_FLAVOURS {
        let plan = FaultPlan::new(seed);
        let cut_at = plan.jitter(31, 20, 120);
        let down_for = plan.jitter(32, 2, 5);
        let plan =
            plan.with_event(FaultEvent::CutLink { link_id: LINK, at_frame: cut_at, down_for });

        let fx = build(
            flavour,
            LINK,
            WatermarkConfig::new(1 << 20, 1 << 10),
            true,
            0,
            Some(&plan),
            seed,
        );
        let ingress = ReliableIngress::new(AckMode::Immediate);
        let mut delivered: Vec<u64> = Vec::new();
        let drain = |delivered: &mut Vec<u64>| {
            while let Some(f) = fx.sink.pop() {
                if let IngressVerdict::Deliver { skip: 0 } =
                    ingress.admit(f.link_id, f.base_seq, f.len() as u32)
                {
                    delivered.push(f.base_seq);
                }
                if let Some((_, watermark)) = ingress.stage_ack(f.link_id) {
                    fx.link.ack(watermark);
                }
            }
        };

        let tcp = matches!(flavour, Flavour::BlockingTcp | Flavour::ReactorTcp);
        for i in 0..TOTAL {
            if tcp && i == cut_at {
                // The kernel completes the handshake before the acceptor
                // registers the socket; wait for the accept so the sever
                // really lands on an established connection.
                let rx = fx.rx.as_ref().expect("tcp fixture");
                assert!(
                    wait_for(Duration::from_secs(10), || rx.connections() > 0),
                    "seed {seed} {flavour:?}: connection never accepted by frame {cut_at}"
                );
                assert!(
                    rx.chaos_drop_connections() > 0,
                    "seed {seed} {flavour:?}: no connection to cut at {cut_at}"
                );
            }
            let (encoded, count) = batch_of(&[&i.to_le_bytes()]);
            fx.link
                .send_batch(i, encoded, count, 0, 0)
                .unwrap_or_else(|e| panic!("seed {seed} {flavour:?}: send failed: {e:?}"));
            if i % 7 == 6 {
                drain(&mut delivered);
            }
        }

        // TCP frames accepted by the wire before the cut was detected
        // are gone; heartbeats force the reconnect + replay that brings
        // them back. Keep probing until the stream is whole.
        let deadline = Instant::now() + Duration::from_secs(60);
        while delivered.len() < TOTAL as usize {
            assert!(
                Instant::now() < deadline,
                "seed {seed} {flavour:?}: only {}/{TOTAL} delivered (cut at {cut_at})",
                delivered.len()
            );
            let _ = fx.link.heartbeat();
            drain(&mut delivered);
            std::thread::sleep(Duration::from_millis(2));
        }

        assert_eq!(
            delivered,
            (0..TOTAL).collect::<Vec<_>>(),
            "seed {seed} {flavour:?}: lost, duplicated, or reordered"
        );
        let snap = fx.stats.snapshot();
        assert_eq!(snap.link_failures, 0, "seed {seed} {flavour:?}: retry budget exhausted");
        if flavour != Flavour::InProcess {
            assert!(
                snap.retransmits > 0,
                "seed {seed} {flavour:?}: the cut at frame {cut_at} never forced a replay \
                 ({snap:?})"
            );
        }
        fx.shutdown();
    }
}
