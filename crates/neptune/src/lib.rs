//! # neptune
//!
//! Facade crate for the NEPTUNE stream-processing reproduction: one
//! dependency that re-exports the whole stack.
//!
//! * [`core`](neptune_core) — the NEPTUNE framework: packets, operators,
//!   graphs, the runtime with buffering / batching / backpressure /
//!   compression / object reuse.
//! * [`granules`](neptune_granules) — the Granules substrate (tasks,
//!   resources, datasets, scheduling strategies).
//! * [`net`](neptune_net) — framing, output buffers, watermark queues,
//!   TCP + in-process transports.
//! * [`compress`](neptune_compress) — from-scratch LZ4, entropy,
//!   selective compression.
//! * [`stats`](neptune_stats) — t-tests, ANOVA, Tukey HSD, descriptive
//!   statistics.
//! * [`data`](neptune_data) — IoT, manufacturing (DEBS-2012-style), and
//!   random workload generators.
//! * [`storm`](neptune_storm) — the Apache-Storm-0.9-like baseline
//!   engine.
//! * [`sim`](neptune_sim) — the 50-node cluster simulator behind the
//!   paper's cluster-scale figures.
//! * [`link`](neptune_link) — the composable link stack: one
//!   [`LinkBuilder`](neptune_link::LinkBuilder) behind every
//!   frame-delivery path (in-process, blocking TCP, reactor TCP, chaos),
//!   with optional reliability, trace tagging, and a retunable flush
//!   policy per link.
//! * [`ha`](neptune_ha) — the fault-tolerance subsystem: heartbeat
//!   failure detection and the monotonic clock (link-level replay,
//!   dedup, and supervision now live in [`link`](neptune_link) and are
//!   re-exported here for compatibility).
//! * [`cluster`](neptune_cluster) — real multi-process distribution:
//!   the `neptuned` node daemon, the coordinator control plane, graph
//!   partitioning, and the cross-process data plane.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the per-figure experiment harness.

pub use neptune_cluster as cluster;
pub use neptune_compress as compress;
pub use neptune_core as core;
pub use neptune_data as data;
pub use neptune_granules as granules;
pub use neptune_ha as ha;
pub use neptune_link as link;
pub use neptune_net as net;
pub use neptune_sim as sim;
pub use neptune_stats as stats;
pub use neptune_storm as storm;
pub use neptune_telemetry as telemetry;

/// Convenience prelude: everything needed to define and run a job.
pub mod prelude {
    pub use neptune_core::prelude::*;
    pub use neptune_core::{now_micros, FieldValue, StreamPacket};
}
