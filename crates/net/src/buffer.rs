//! Application-level output buffering (§III-B1 of the paper).
//!
//! One [`OutputBuffer`] exists per outgoing link. Serialized stream packets
//! are appended (already length-prefixed, so the flush path does no extra
//! copying or per-message work); the buffer flushes when:
//!
//! * its **byte capacity** is reached — the paper is explicit that the
//!   threshold is capacity-based, *"to flush the buffer as soon as the
//!   required threshold is reached irrespective of the number of the
//!   messages in the buffer and their sizes"*, which keeps behaviour stable
//!   when an operator emits packets of varying sizes; or
//! * its **flush timer** fires — *"each buffer in NEPTUNE is equipped with
//!   a timer that guarantees flushing of the buffer after a certain time
//!   period since arrival of the first message"*, which puts a soft upper
//!   bound on end-to-end latency for slow streams.
//!
//! The buffer's backing storage is recycled across flushes (object reuse,
//! §III-B3): batches are handed out as refcounted [`Bytes`], and
//! [`recycle`](OutputBuffer::recycle) reclaims the storage once the
//! transport (and, in-process, the receiving task) has dropped its handles.
//! Buffers attached to a shared [`BytesPool`] draw replacements from and
//! return storage to the pool, so every link on a worker shares one set of
//! steady-state allocations; detached buffers keep a private spare and run
//! with two long-lived allocations per link, as before.

use crate::flush::FlushPolicy;
use crate::pool::BytesPool;
use bytes::{Bytes, BytesMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a batch was flushed. Recorded in metrics so the buffering ablation
/// (Fig. 2) can attribute latency to queueing delay vs capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The byte-capacity threshold was reached.
    Capacity,
    /// The flush timer expired before the buffer filled.
    Timer,
    /// The owner forced a flush (job teardown, explicit flush call).
    Forced,
}

/// Outcome of pushing one serialized message.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Message buffered; nothing to send yet.
    Buffered,
    /// Capacity reached: here is the batch to hand to the transport.
    Flush(FlushedBatch),
}

/// A batch ready for the wire. `encoded` is refcounted: the in-process
/// transport hands the same bytes to the receiver without copying, and the
/// storage is reclaimed (via [`OutputBuffer::recycle`] or
/// [`BytesPool::recycle`]) when the last handle drops.
#[derive(Debug, PartialEq, Eq)]
pub struct FlushedBatch {
    /// Concatenated `[len u32 LE | bytes]` encoded messages.
    pub encoded: Bytes,
    /// Number of messages in the batch.
    pub count: u32,
    /// Sequence number of the first message in the batch.
    pub base_seq: u64,
    /// Why the flush happened.
    pub reason: FlushReason,
    /// How long the oldest message waited in the buffer.
    pub queueing_delay: Duration,
}

/// Capacity-bounded, timer-flushed output buffer for one link.
#[derive(Debug)]
pub struct OutputBuffer {
    data: BytesMut,
    /// Recycled storage swapped in on flush (pool-less buffers only).
    spare: Option<BytesMut>,
    /// Shared pool backing this buffer's storage, when attached.
    pool: Option<Arc<BytesPool>>,
    count: u32,
    /// Shared, retunable flush knobs (byte/message thresholds, deadline).
    policy: Arc<FlushPolicy>,
    first_arrival: Option<Instant>,
    next_seq: u64,
    flushes_capacity: u64,
    flushes_timer: u64,
    flushes_forced: u64,
}

impl OutputBuffer {
    /// Buffer flushing at `capacity` bytes, with an optional flush timer of
    /// `max_delay` since the first buffered message.
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, max_delay: Option<Duration>) -> Self {
        Self::with_policy(FlushPolicy::new(capacity, max_delay), None)
    }

    /// Like [`new`](Self::new), but storage is drawn from and returned to
    /// `pool`, shared with every other buffer and receiver on the job.
    pub fn with_pool(capacity: usize, max_delay: Option<Duration>, pool: Arc<BytesPool>) -> Self {
        Self::with_policy(FlushPolicy::new(capacity, max_delay), Some(pool))
    }

    /// Buffer governed by a shared [`FlushPolicy`] — the handle stays
    /// valid for runtime retuning (QoS controllers, telemetry).
    pub fn with_policy(policy: Arc<FlushPolicy>, pool: Option<Arc<BytesPool>>) -> Self {
        let capacity = policy.batch_bytes();
        let data = match &pool {
            Some(p) => p.checkout(capacity + 256),
            None => BytesMut::with_capacity(capacity + 256),
        };
        OutputBuffer {
            data,
            spare: None,
            pool,
            count: 0,
            policy,
            first_arrival: None,
            next_seq: 0,
            flushes_capacity: 0,
            flushes_timer: 0,
            flushes_forced: 0,
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.policy.batch_bytes()
    }

    /// The buffer's flush policy handle.
    pub fn policy(&self) -> &Arc<FlushPolicy> {
        &self.policy
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.data.len()
    }

    /// Messages currently buffered.
    pub fn buffered_count(&self) -> u32 {
        self.count
    }

    /// Sequence number the next pushed message will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Flushes triggered by capacity so far.
    pub fn capacity_flushes(&self) -> u64 {
        self.flushes_capacity
    }

    /// Flushes triggered by the timer so far.
    pub fn timer_flushes(&self) -> u64 {
        self.flushes_timer
    }

    /// Forced flushes so far.
    pub fn forced_flushes(&self) -> u64 {
        self.flushes_forced
    }

    /// Append one serialized message. Returns a batch when this push
    /// reached the capacity threshold.
    pub fn push(&mut self, message: &[u8]) -> PushOutcome {
        if self.count == 0 {
            self.first_arrival = Some(Instant::now());
        }
        self.data.extend_from_slice(&(message.len() as u32).to_le_bytes());
        self.data.extend_from_slice(message);
        self.finish_push()
    }

    /// Append one message that already carries its 4-byte length prefix —
    /// the serialize-once fan-out path: the emitter encodes `[len | bytes]`
    /// into its scratch exactly once and appends the same slice to every
    /// destination buffer.
    pub fn push_prefixed(&mut self, prefixed: &[u8]) -> PushOutcome {
        debug_assert!(
            prefixed.len() >= 4
                && u32::from_le_bytes(prefixed[..4].try_into().expect("slice len")) as usize
                    == prefixed.len() - 4,
            "push_prefixed expects a [len u32 LE | bytes] message"
        );
        if self.count == 0 {
            self.first_arrival = Some(Instant::now());
        }
        self.data.extend_from_slice(prefixed);
        self.finish_push()
    }

    fn finish_push(&mut self) -> PushOutcome {
        self.count += 1;
        self.next_seq += 1;
        let batch_messages = self.policy.batch_messages();
        if self.data.len() >= self.policy.batch_bytes()
            || (batch_messages > 0 && self.count as usize >= batch_messages)
        {
            PushOutcome::Flush(self.take_batch(FlushReason::Capacity))
        } else {
            PushOutcome::Buffered
        }
    }

    /// Deadline at which the flush timer should fire, if armed.
    pub fn flush_deadline(&self) -> Option<Instant> {
        match (self.first_arrival, self.policy.max_delay()) {
            (Some(t0), Some(d)) if self.count > 0 => Some(t0 + d),
            _ => None,
        }
    }

    /// Timer path: flush if the oldest message has waited at least
    /// `max_delay` as of `now`.
    pub fn take_if_due(&mut self, now: Instant) -> Option<FlushedBatch> {
        match self.flush_deadline() {
            Some(deadline) if now >= deadline => Some(self.take_batch(FlushReason::Timer)),
            _ => None,
        }
    }

    /// Unconditional flush (teardown, explicit flush). `None` when empty.
    pub fn force_flush(&mut self) -> Option<FlushedBatch> {
        if self.count == 0 {
            None
        } else {
            Some(self.take_batch(FlushReason::Forced))
        }
    }

    fn take_batch(&mut self, reason: FlushReason) -> FlushedBatch {
        match reason {
            FlushReason::Capacity => self.flushes_capacity += 1,
            FlushReason::Timer => self.flushes_timer += 1,
            FlushReason::Forced => self.flushes_forced += 1,
        }
        let queueing_delay = self.first_arrival.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
        let count = self.count;
        let base_seq = self.next_seq - count as u64;
        self.count = 0;
        self.first_arrival = None;
        // Swap in recycled storage; freeze and hand out the filled buffer.
        let capacity = self.policy.batch_bytes();
        let replacement = match self.spare.take() {
            Some(spare) => spare,
            None => match &self.pool {
                Some(p) => p.checkout(capacity + 256),
                None => BytesMut::with_capacity(capacity + 256),
            },
        };
        let encoded = std::mem::replace(&mut self.data, replacement).freeze();
        FlushedBatch { encoded, count, base_seq, reason, queueing_delay }
    }

    /// Return a batch's storage for reuse after the transport is done with
    /// it. A no-op when other handles to the batch are still alive (e.g. it
    /// sits in a receiver's queue) — the last holder recycles it instead.
    /// Optional — skipping it only costs a fresh allocation next flush.
    pub fn recycle(&mut self, storage: Bytes) {
        let Ok(mut buf) = storage.try_into_mut() else {
            return; // Still referenced downstream.
        };
        if let Some(p) = &self.pool {
            p.recycle_mut(buf);
        } else if self.spare.is_none() {
            buf.clear();
            self.spare = Some(buf);
        } // else: pool-less and spare already occupied — drop.
    }
}

/// Split a [`FlushedBatch`]'s encoding back into messages (tests and
/// compatibility paths; the runtime uses the zero-copy
/// [`crate::frame::FrameMessages`] split instead).
pub fn split_encoded(encoded: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < encoded.len() {
        if i + 4 > encoded.len() {
            return Err(format!("dangling length prefix at offset {i}"));
        }
        let len = u32::from_le_bytes(encoded[i..i + 4].try_into().expect("slice len")) as usize;
        i += 4;
        if i + len > encoded.len() {
            return Err(format!("message at offset {i} overruns buffer"));
        }
        out.push(encoded[i..i + len].to_vec());
        i += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::wait_until;

    #[test]
    fn flushes_on_capacity() {
        let mut buf = OutputBuffer::new(100, None);
        let msg = [0u8; 20]; // 24 bytes per push with the prefix
        for _ in 0..4 {
            assert_eq!(buf.push(&msg), PushOutcome::Buffered);
        }
        match buf.push(&msg) {
            PushOutcome::Flush(b) => {
                assert_eq!(b.count, 5);
                assert_eq!(b.base_seq, 0);
                assert_eq!(b.reason, FlushReason::Capacity);
                assert_eq!(b.encoded.len(), 5 * 24);
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(buf.buffered_bytes(), 0);
        assert_eq!(buf.capacity_flushes(), 1);
    }

    #[test]
    fn capacity_is_bytes_not_messages() {
        // One big message flushes immediately; many tiny ones accumulate.
        let mut buf = OutputBuffer::new(1000, None);
        assert!(matches!(buf.push(&[0u8; 2000]), PushOutcome::Flush(_)));
        for _ in 0..10 {
            assert_eq!(buf.push(&[0u8; 10]), PushOutcome::Buffered);
        }
        assert_eq!(buf.buffered_count(), 10);
    }

    #[test]
    fn sequence_numbers_are_contiguous_across_batches() {
        let mut buf = OutputBuffer::new(64, None);
        let mut batches = Vec::new();
        for _ in 0..10 {
            if let PushOutcome::Flush(b) = buf.push(&[0u8; 28]) {
                batches.push(b);
            }
        }
        if let Some(b) = buf.force_flush() {
            batches.push(b);
        }
        let mut expected = 0u64;
        for b in &batches {
            assert_eq!(b.base_seq, expected);
            expected += b.count as u64;
        }
        assert_eq!(expected, 10);
    }

    #[test]
    fn timer_flush_after_max_delay() {
        let mut buf = OutputBuffer::new(1 << 20, Some(Duration::from_millis(5)));
        buf.push(b"slow stream");
        assert!(buf.take_if_due(Instant::now()).is_none(), "not due yet");
        let deadline = buf.flush_deadline().expect("timer armed");
        assert!(wait_until(deadline, || Instant::now() >= deadline));
        let batch = buf.take_if_due(Instant::now()).expect("due");
        assert_eq!(batch.reason, FlushReason::Timer);
        assert_eq!(batch.count, 1);
        assert!(batch.queueing_delay >= Duration::from_millis(5));
        assert_eq!(buf.timer_flushes(), 1);
    }

    #[test]
    fn no_timer_when_empty() {
        let mut buf = OutputBuffer::new(1024, Some(Duration::from_millis(1)));
        assert!(buf.flush_deadline().is_none());
        // An empty buffer is not due at any point in the future.
        assert!(buf.take_if_due(Instant::now() + Duration::from_secs(1)).is_none());
    }

    #[test]
    fn deadline_tracks_first_message_only() {
        let mut buf = OutputBuffer::new(1 << 20, Some(Duration::from_millis(50)));
        buf.push(b"first");
        let d1 = buf.flush_deadline().unwrap();
        // Measurably later — but still before the deadline — push again.
        let mid = Instant::now() + Duration::from_millis(2);
        assert!(wait_until(mid, || Instant::now() >= mid));
        buf.push(b"second");
        let d2 = buf.flush_deadline().unwrap();
        assert_eq!(d1, d2, "deadline must anchor to the first message");
    }

    #[test]
    fn force_flush_empties_and_returns_none_when_empty() {
        let mut buf = OutputBuffer::new(1024, None);
        assert!(buf.force_flush().is_none());
        buf.push(b"x");
        let b = buf.force_flush().unwrap();
        assert_eq!(b.reason, FlushReason::Forced);
        assert_eq!(b.count, 1);
        assert!(buf.force_flush().is_none());
    }

    #[test]
    fn recycle_reuses_storage() {
        // The double-buffering scheme alternates between two allocations:
        // a recycled batch becomes the spare, which is swapped back into
        // service on the *next* flush. So a recycled pointer must reappear
        // within two flush cycles.
        let mut buf = OutputBuffer::new(64, None);
        let PushOutcome::Flush(batch) = buf.push(&[0u8; 100]) else { panic!("flush") };
        let ptr = batch.encoded.as_ptr();
        buf.recycle(batch.encoded);
        let PushOutcome::Flush(batch2) = buf.push(&[0u8; 100]) else { panic!("flush") };
        let ptr2 = batch2.encoded.as_ptr();
        buf.recycle(batch2.encoded);
        let PushOutcome::Flush(batch3) = buf.push(&[0u8; 100]) else { panic!("flush") };
        assert!(
            batch3.encoded.as_ptr() == ptr || ptr2 == ptr,
            "recycled allocation must round-trip within two flushes"
        );
    }

    #[test]
    fn recycle_skips_shared_batches() {
        let mut buf = OutputBuffer::new(64, None);
        let PushOutcome::Flush(batch) = buf.push(&[0u8; 100]) else { panic!("flush") };
        let alias = batch.encoded.clone();
        buf.recycle(batch.encoded);
        // The alias must still read the original data — recycling a shared
        // batch would be a use-after-free in spirit.
        assert_eq!(alias.len(), 104);
        assert_eq!(&alias[..4], &100u32.to_le_bytes());
    }

    #[test]
    fn pooled_buffer_round_trips_storage_through_pool() {
        let pool = Arc::new(BytesPool::new(8));
        let mut buf = OutputBuffer::with_pool(64, None, pool.clone());
        for _ in 0..5 {
            let PushOutcome::Flush(batch) = buf.push(&[0u8; 100]) else { panic!("flush") };
            buf.recycle(batch.encoded);
        }
        let stats = pool.stats();
        // One checkout at construction, one per flush; after the first
        // couple the pool serves every request.
        assert!(stats.hits >= 3, "pool must serve steady-state flushes: {stats:?}");
        assert_eq!(stats.hits + stats.misses, 6);
    }

    #[test]
    fn push_prefixed_matches_push() {
        let mut a = OutputBuffer::new(1 << 20, None);
        let mut b = OutputBuffer::new(1 << 20, None);
        let msgs: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![9u8; 300]];
        for m in &msgs {
            a.push(m);
            let mut prefixed = (m.len() as u32).to_le_bytes().to_vec();
            prefixed.extend_from_slice(m);
            b.push_prefixed(&prefixed);
        }
        let ba = a.force_flush().unwrap();
        let bb = b.force_flush().unwrap();
        assert_eq!(ba.encoded, bb.encoded);
        assert_eq!(ba.count, bb.count);
        assert_eq!(bb.base_seq, 0);
        assert_eq!(b.next_seq(), 3);
    }

    #[test]
    fn split_encoded_roundtrips() {
        let mut buf = OutputBuffer::new(1 << 20, None);
        let msgs: Vec<Vec<u8>> = vec![b"a".to_vec(), vec![], b"long message".to_vec()];
        for m in &msgs {
            buf.push(m);
        }
        let batch = buf.force_flush().unwrap();
        assert_eq!(split_encoded(&batch.encoded).unwrap(), msgs);
    }

    #[test]
    fn split_encoded_rejects_corruption() {
        assert!(split_encoded(&[1, 2, 3]).is_err());
        assert!(split_encoded(&[10, 0, 0, 0, 1]).is_err());
        assert!(split_encoded(&[]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        OutputBuffer::new(0, None);
    }
}
