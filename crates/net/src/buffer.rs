//! Application-level output buffering (§III-B1 of the paper).
//!
//! One [`OutputBuffer`] exists per outgoing link. Serialized stream packets
//! are appended (already length-prefixed, so the flush path does no extra
//! copying or per-message work); the buffer flushes when:
//!
//! * its **byte capacity** is reached — the paper is explicit that the
//!   threshold is capacity-based, *"to flush the buffer as soon as the
//!   required threshold is reached irrespective of the number of the
//!   messages in the buffer and their sizes"*, which keeps behaviour stable
//!   when an operator emits packets of varying sizes; or
//! * its **flush timer** fires — *"each buffer in NEPTUNE is equipped with
//!   a timer that guarantees flushing of the buffer after a certain time
//!   period since arrival of the first message"*, which puts a soft upper
//!   bound on end-to-end latency for slow streams.
//!
//! The buffer's backing storage is recycled across flushes (object reuse,
//! §III-B3): `take_batch` hands out the filled `Vec<u8>` and installs the
//! previously-recycled one, so steady state runs with two long-lived
//! allocations per link.

use std::time::{Duration, Instant};

/// Why a batch was flushed. Recorded in metrics so the buffering ablation
/// (Fig. 2) can attribute latency to queueing delay vs capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The byte-capacity threshold was reached.
    Capacity,
    /// The flush timer expired before the buffer filled.
    Timer,
    /// The owner forced a flush (job teardown, explicit flush call).
    Forced,
}

/// Outcome of pushing one serialized message.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Message buffered; nothing to send yet.
    Buffered,
    /// Capacity reached: here is the batch to hand to the transport.
    Flush(FlushedBatch),
}

/// A batch ready for the wire.
#[derive(Debug, PartialEq, Eq)]
pub struct FlushedBatch {
    /// Concatenated `[len u32 LE | bytes]` encoded messages.
    pub encoded: Vec<u8>,
    /// Number of messages in the batch.
    pub count: u32,
    /// Sequence number of the first message in the batch.
    pub base_seq: u64,
    /// Why the flush happened.
    pub reason: FlushReason,
    /// How long the oldest message waited in the buffer.
    pub queueing_delay: Duration,
}

/// Capacity-bounded, timer-flushed output buffer for one link.
#[derive(Debug)]
pub struct OutputBuffer {
    data: Vec<u8>,
    /// Recycled storage swapped in on flush.
    spare: Vec<u8>,
    count: u32,
    capacity: usize,
    max_delay: Option<Duration>,
    first_arrival: Option<Instant>,
    next_seq: u64,
    flushes_capacity: u64,
    flushes_timer: u64,
    flushes_forced: u64,
}

impl OutputBuffer {
    /// Buffer flushing at `capacity` bytes, with an optional flush timer of
    /// `max_delay` since the first buffered message.
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, max_delay: Option<Duration>) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        OutputBuffer {
            data: Vec::with_capacity(capacity + 256),
            spare: Vec::with_capacity(capacity + 256),
            count: 0,
            capacity,
            max_delay,
            first_arrival: None,
            next_seq: 0,
            flushes_capacity: 0,
            flushes_timer: 0,
            flushes_forced: 0,
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.data.len()
    }

    /// Messages currently buffered.
    pub fn buffered_count(&self) -> u32 {
        self.count
    }

    /// Sequence number the next pushed message will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Flushes triggered by capacity so far.
    pub fn capacity_flushes(&self) -> u64 {
        self.flushes_capacity
    }

    /// Flushes triggered by the timer so far.
    pub fn timer_flushes(&self) -> u64 {
        self.flushes_timer
    }

    /// Forced flushes so far.
    pub fn forced_flushes(&self) -> u64 {
        self.flushes_forced
    }

    /// Append one serialized message. Returns a batch when this push
    /// reached the capacity threshold.
    pub fn push(&mut self, message: &[u8]) -> PushOutcome {
        if self.count == 0 {
            self.first_arrival = Some(Instant::now());
        }
        self.data.extend_from_slice(&(message.len() as u32).to_le_bytes());
        self.data.extend_from_slice(message);
        self.count += 1;
        self.next_seq += 1;
        if self.data.len() >= self.capacity {
            PushOutcome::Flush(self.take_batch(FlushReason::Capacity))
        } else {
            PushOutcome::Buffered
        }
    }

    /// Deadline at which the flush timer should fire, if armed.
    pub fn flush_deadline(&self) -> Option<Instant> {
        match (self.first_arrival, self.max_delay) {
            (Some(t0), Some(d)) if self.count > 0 => Some(t0 + d),
            _ => None,
        }
    }

    /// Timer path: flush if the oldest message has waited at least
    /// `max_delay` as of `now`.
    pub fn take_if_due(&mut self, now: Instant) -> Option<FlushedBatch> {
        match self.flush_deadline() {
            Some(deadline) if now >= deadline => Some(self.take_batch(FlushReason::Timer)),
            _ => None,
        }
    }

    /// Unconditional flush (teardown, explicit flush). `None` when empty.
    pub fn force_flush(&mut self) -> Option<FlushedBatch> {
        if self.count == 0 {
            None
        } else {
            Some(self.take_batch(FlushReason::Forced))
        }
    }

    fn take_batch(&mut self, reason: FlushReason) -> FlushedBatch {
        match reason {
            FlushReason::Capacity => self.flushes_capacity += 1,
            FlushReason::Timer => self.flushes_timer += 1,
            FlushReason::Forced => self.flushes_forced += 1,
        }
        let queueing_delay =
            self.first_arrival.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
        let count = self.count;
        let base_seq = self.next_seq - count as u64;
        self.count = 0;
        self.first_arrival = None;
        // Swap in the recycled buffer; hand out the filled one.
        self.spare.clear();
        let encoded = std::mem::replace(&mut self.data, std::mem::take(&mut self.spare));
        FlushedBatch { encoded, count, base_seq, reason, queueing_delay }
    }

    /// Return a batch's storage for reuse after the transport is done with
    /// it. Optional — skipping it only costs a fresh allocation next flush.
    pub fn recycle(&mut self, mut storage: Vec<u8>) {
        storage.clear();
        if storage.capacity() > self.spare.capacity() {
            self.spare = storage;
        }
    }
}

/// Split a [`FlushedBatch`]'s encoding back into messages (receiver side of
/// the in-process fast path and tests).
pub fn split_encoded(encoded: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < encoded.len() {
        if i + 4 > encoded.len() {
            return Err(format!("dangling length prefix at offset {i}"));
        }
        let len =
            u32::from_le_bytes(encoded[i..i + 4].try_into().expect("slice len")) as usize;
        i += 4;
        if i + len > encoded.len() {
            return Err(format!("message at offset {i} overruns buffer"));
        }
        out.push(encoded[i..i + len].to_vec());
        i += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_on_capacity() {
        let mut buf = OutputBuffer::new(100, None);
        let msg = [0u8; 20]; // 24 bytes per push with the prefix
        for _ in 0..4 {
            assert_eq!(buf.push(&msg), PushOutcome::Buffered);
        }
        match buf.push(&msg) {
            PushOutcome::Flush(b) => {
                assert_eq!(b.count, 5);
                assert_eq!(b.base_seq, 0);
                assert_eq!(b.reason, FlushReason::Capacity);
                assert_eq!(b.encoded.len(), 5 * 24);
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(buf.buffered_bytes(), 0);
        assert_eq!(buf.capacity_flushes(), 1);
    }

    #[test]
    fn capacity_is_bytes_not_messages() {
        // One big message flushes immediately; many tiny ones accumulate.
        let mut buf = OutputBuffer::new(1000, None);
        assert!(matches!(buf.push(&[0u8; 2000]), PushOutcome::Flush(_)));
        for _ in 0..10 {
            assert_eq!(buf.push(&[0u8; 10]), PushOutcome::Buffered);
        }
        assert_eq!(buf.buffered_count(), 10);
    }

    #[test]
    fn sequence_numbers_are_contiguous_across_batches() {
        let mut buf = OutputBuffer::new(64, None);
        let mut batches = Vec::new();
        for _ in 0..10 {
            if let PushOutcome::Flush(b) = buf.push(&[0u8; 28]) {
                batches.push(b);
            }
        }
        if let Some(b) = buf.force_flush() {
            batches.push(b);
        }
        let mut expected = 0u64;
        for b in &batches {
            assert_eq!(b.base_seq, expected);
            expected += b.count as u64;
        }
        assert_eq!(expected, 10);
    }

    #[test]
    fn timer_flush_after_max_delay() {
        let mut buf = OutputBuffer::new(1 << 20, Some(Duration::from_millis(5)));
        buf.push(b"slow stream");
        assert!(buf.take_if_due(Instant::now()).is_none(), "not due yet");
        std::thread::sleep(Duration::from_millis(8));
        let batch = buf.take_if_due(Instant::now()).expect("due");
        assert_eq!(batch.reason, FlushReason::Timer);
        assert_eq!(batch.count, 1);
        assert!(batch.queueing_delay >= Duration::from_millis(5));
        assert_eq!(buf.timer_flushes(), 1);
    }

    #[test]
    fn no_timer_when_empty() {
        let mut buf = OutputBuffer::new(1024, Some(Duration::from_millis(1)));
        assert!(buf.flush_deadline().is_none());
        std::thread::sleep(Duration::from_millis(3));
        assert!(buf.take_if_due(Instant::now()).is_none());
    }

    #[test]
    fn deadline_tracks_first_message_only() {
        let mut buf = OutputBuffer::new(1 << 20, Some(Duration::from_millis(50)));
        buf.push(b"first");
        let d1 = buf.flush_deadline().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        buf.push(b"second");
        let d2 = buf.flush_deadline().unwrap();
        assert_eq!(d1, d2, "deadline must anchor to the first message");
    }

    #[test]
    fn force_flush_empties_and_returns_none_when_empty() {
        let mut buf = OutputBuffer::new(1024, None);
        assert!(buf.force_flush().is_none());
        buf.push(b"x");
        let b = buf.force_flush().unwrap();
        assert_eq!(b.reason, FlushReason::Forced);
        assert_eq!(b.count, 1);
        assert!(buf.force_flush().is_none());
    }

    #[test]
    fn recycle_reuses_storage() {
        // The double-buffering scheme alternates between two allocations:
        // a recycled batch becomes the spare, which is swapped back into
        // service on the *next* flush. So a recycled pointer must reappear
        // within two flush cycles.
        let mut buf = OutputBuffer::new(64, None);
        let PushOutcome::Flush(batch) = buf.push(&[0u8; 100]) else { panic!("flush") };
        let ptr = batch.encoded.as_ptr();
        buf.recycle(batch.encoded);
        let PushOutcome::Flush(batch2) = buf.push(&[0u8; 100]) else { panic!("flush") };
        let ptr2 = batch2.encoded.as_ptr();
        buf.recycle(batch2.encoded);
        let PushOutcome::Flush(batch3) = buf.push(&[0u8; 100]) else { panic!("flush") };
        assert!(
            batch3.encoded.as_ptr() == ptr || ptr2 == ptr,
            "recycled allocation must round-trip within two flushes"
        );
    }

    #[test]
    fn split_encoded_roundtrips() {
        let mut buf = OutputBuffer::new(1 << 20, None);
        let msgs: Vec<Vec<u8>> = vec![b"a".to_vec(), vec![], b"long message".to_vec()];
        for m in &msgs {
            buf.push(m);
        }
        let batch = buf.force_flush().unwrap();
        assert_eq!(split_encoded(&batch.encoded).unwrap(), msgs);
    }

    #[test]
    fn split_encoded_rejects_corruption() {
        assert!(split_encoded(&[1, 2, 3]).is_err());
        assert!(split_encoded(&[10, 0, 0, 0, 1]).is_err());
        assert!(split_encoded(&[]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        OutputBuffer::new(0, None);
    }
}
