//! The flush policy of one link: batch-size threshold + flush deadline,
//! retunable at runtime.
//!
//! NEPTUNE flushes an output buffer when its byte capacity is reached or
//! its per-buffer timer fires (§III-B1). Historically both knobs were
//! frozen into each [`crate::buffer::OutputBuffer`] at construction; a
//! [`FlushPolicy`] lifts them into a shared, atomically-retunable object
//! so one handle — held by the link, surfaced in telemetry, and later by
//! a QoS controller (Nephele-style SLO adaptation) — can adjust a live
//! link's batching without touching the hot path: the buffer reads two
//! relaxed atomics per push, exactly what a field read cost before.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Retunable flush knobs for one link's output buffering.
#[derive(Debug)]
pub struct FlushPolicy {
    /// Flush once this many encoded bytes are buffered.
    batch_bytes: AtomicUsize,
    /// Flush this long after the first buffered message, µs (0 = no timer).
    max_delay_micros: AtomicU64,
    /// Flush once this many messages are buffered (0 = bytes-only, the
    /// paper's rule; used by the cluster egress, which batches by count).
    batch_messages: AtomicUsize,
}

/// Point-in-time copy of a policy's knobs, for telemetry exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicySnapshot {
    /// Byte threshold.
    pub batch_bytes: usize,
    /// Deadline in µs (0 = no timer).
    pub max_delay_micros: u64,
    /// Message-count threshold (0 = unlimited).
    pub batch_messages: usize,
}

impl FlushPolicy {
    /// Policy flushing at `batch_bytes`, with an optional deadline of
    /// `max_delay` after the first buffered message.
    ///
    /// Panics if `batch_bytes == 0`.
    pub fn new(batch_bytes: usize, max_delay: Option<Duration>) -> Arc<Self> {
        assert!(batch_bytes > 0, "buffer capacity must be positive");
        Arc::new(FlushPolicy {
            batch_bytes: AtomicUsize::new(batch_bytes),
            max_delay_micros: AtomicU64::new(
                max_delay.map(|d| (d.as_micros() as u64).max(1)).unwrap_or(0),
            ),
            batch_messages: AtomicUsize::new(0),
        })
    }

    /// Byte threshold.
    pub fn batch_bytes(&self) -> usize {
        self.batch_bytes.load(Ordering::Relaxed)
    }

    /// Retune the byte threshold (takes effect on the next push).
    pub fn set_batch_bytes(&self, bytes: usize) {
        self.batch_bytes.store(bytes.max(1), Ordering::Relaxed);
    }

    /// Flush deadline relative to the first buffered message.
    pub fn max_delay(&self) -> Option<Duration> {
        match self.max_delay_micros.load(Ordering::Relaxed) {
            0 => None,
            micros => Some(Duration::from_micros(micros)),
        }
    }

    /// Retune (or remove, with `None`) the flush deadline. Applies to the
    /// next batch; a deadline already armed keeps its original instant.
    pub fn set_max_delay(&self, max_delay: Option<Duration>) {
        self.max_delay_micros.store(
            max_delay.map(|d| (d.as_micros() as u64).max(1)).unwrap_or(0),
            Ordering::Relaxed,
        );
    }

    /// Message-count threshold (0 = bytes-only).
    pub fn batch_messages(&self) -> usize {
        self.batch_messages.load(Ordering::Relaxed)
    }

    /// Retune the message-count threshold (0 disables it).
    pub fn set_batch_messages(&self, messages: usize) {
        self.batch_messages.store(messages, Ordering::Relaxed);
    }

    /// Builder-style message-count threshold.
    pub fn with_batch_messages(self: Arc<Self>, messages: usize) -> Arc<Self> {
        self.set_batch_messages(messages);
        self
    }

    /// Snapshot every knob at once.
    pub fn snapshot(&self) -> FlushPolicySnapshot {
        FlushPolicySnapshot {
            batch_bytes: self.batch_bytes(),
            max_delay_micros: self.max_delay_micros.load(Ordering::Relaxed),
            batch_messages: self.batch_messages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_round_trip_and_retune() {
        let p = FlushPolicy::new(4096, Some(Duration::from_millis(5)));
        assert_eq!(p.batch_bytes(), 4096);
        assert_eq!(p.max_delay(), Some(Duration::from_millis(5)));
        assert_eq!(p.batch_messages(), 0);
        p.set_batch_bytes(1024);
        p.set_max_delay(None);
        p.set_batch_messages(64);
        let snap = p.snapshot();
        assert_eq!(
            snap,
            FlushPolicySnapshot { batch_bytes: 1024, max_delay_micros: 0, batch_messages: 64 }
        );
        assert_eq!(p.max_delay(), None);
    }

    #[test]
    fn zero_retunes_are_clamped_or_disable() {
        let p = FlushPolicy::new(64, None);
        p.set_batch_bytes(0);
        assert_eq!(p.batch_bytes(), 1, "a zero byte threshold would flush never");
        p.set_max_delay(Some(Duration::ZERO));
        assert_eq!(
            p.max_delay(),
            Some(Duration::from_micros(1)),
            "zero delay clamps, not disables"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FlushPolicy::new(0, None);
    }
}
