//! Batch wire framing.
//!
//! A flushed output buffer becomes exactly one *frame* on the wire:
//!
//! ```text
//! | magic (4B) | flags (1B) | link_id (8B) | base_seq (8B) | count (4B)
//! | body_len (4B) | crc32 (4B) | body (body_len bytes) |
//! ```
//!
//! The body is the selective-compression framing (see `neptune-compress`)
//! of the concatenation `[msg_len (4B LE) | msg bytes] * count`. `base_seq`
//! is the sequence number of the first message in the batch; messages are
//! contiguous, which is how the receiver enforces the paper's in-order,
//! exactly-once delivery within a link.
//!
//! Decoding is zero-copy per message (§III-B3's object-reuse principle
//! applied to the receive path): a decoded [`Frame`] holds one refcounted
//! [`Bytes`] batch buffer plus `(offset, len)` ranges into it — see
//! [`FrameMessages`] — so splitting a batch into messages allocates
//! nothing per message, and the batch buffer can be returned to a
//! [`crate::pool::BytesPool`] once the frame is consumed.
//!
//! The CRC32 (IEEE 802.3 polynomial, implemented from scratch with a
//! lazily-built lookup table) covers the body; the paper's correctness goal
//! — *"our proposed solution should not result in dropped or corrupted
//! stream packets"* — is checked, not assumed.
//!
//! ## Telemetry extension
//!
//! Bit 0 of the (previously reserved) flags byte marks an 8-byte
//! *sent-at* extension between the fixed header and the body: the
//! sender's wall clock in µs at flush time. The receive side uses it to
//! measure flush→receive transport latency (ISSUE 2); it is not covered
//! by the CRC (a stamp corrupted in transit skews one telemetry sample,
//! never the data path), and frames without the flag decode exactly as
//! before, so the formats interoperate.

use crate::pool::BytesPool;
use bytes::Bytes;
use neptune_compress::{SelectiveCompressor, TAG_RAW};
use std::io::Read;
use std::sync::OnceLock;
use std::time::Instant;

/// Frame magic: `"NEPT"` little-endian.
pub const MAGIC: u32 = 0x5450_454E;
/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4 + 4 + 4;
/// Flags bit 0: an 8-byte sent-at (µs) extension follows the header.
pub const FLAG_SENT_AT: u8 = 0b0000_0001;
/// Cap on the body length accepted by the decoder (a corrupted length field
/// must not trigger a huge allocation).
pub const MAX_BODY_LEN: usize = 64 << 20;

/// The messages of one decoded frame: a single refcounted batch buffer
/// plus per-message `(offset, len)` ranges into it.
///
/// Splitting a batch this way performs **zero per-message allocations** —
/// the ranges vector is the only per-frame allocation, amortized across
/// the whole batch. Messages read as `&[u8]` slices; the batch buffer
/// itself can be reclaimed via [`into_batch`](Self::into_batch) +
/// [`BytesPool::recycle`] once every message has been processed.
#[derive(Debug, Clone)]
pub struct FrameMessages {
    batch: Bytes,
    ranges: Vec<(u32, u32)>,
}

impl FrameMessages {
    /// Empty message set.
    pub fn empty() -> Self {
        FrameMessages { batch: Bytes::new(), ranges: Vec::new() }
    }

    /// Parse a length-prefixed concatenation (`[len u32 LE | bytes] *`)
    /// into message ranges — the zero-copy receive-side split. When
    /// `expected_count` is given, the number of parsed messages must match.
    pub fn parse_prefixed(batch: Bytes, expected_count: Option<u32>) -> Result<Self, String> {
        let mut ranges = Vec::with_capacity(expected_count.unwrap_or(8) as usize);
        let mut i = 0usize;
        while i < batch.len() {
            if i + 4 > batch.len() {
                return Err(format!("dangling length prefix at offset {i}"));
            }
            let len = u32::from_le_bytes(batch[i..i + 4].try_into().expect("slice len")) as usize;
            i += 4;
            if i + len > batch.len() {
                return Err(format!("message at offset {i} overruns buffer"));
            }
            ranges.push((i as u32, len as u32));
            i += len;
        }
        if let Some(count) = expected_count {
            if ranges.len() != count as usize {
                return Err(format!("count {} but {} messages", count, ranges.len()));
            }
        }
        Ok(FrameMessages { batch, ranges })
    }

    /// Build from discrete messages (tests and compatibility paths): the
    /// messages are copied once into a fresh length-prefixed batch.
    pub fn from_messages(messages: &[impl AsRef<[u8]>]) -> Self {
        let total: usize = messages.iter().map(|m| 4 + m.as_ref().len()).sum();
        let mut batch = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(messages.len());
        for m in messages {
            let m = m.as_ref();
            batch.extend_from_slice(&(m.len() as u32).to_le_bytes());
            ranges.push((batch.len() as u32, m.len() as u32));
            batch.extend_from_slice(m);
        }
        FrameMessages { batch: Bytes::from(batch), ranges }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no messages.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Message `i` as a slice, or `None` out of range.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        let &(off, len) = self.ranges.get(i)?;
        Some(&self.batch[off as usize..off as usize + len as usize])
    }

    /// Iterate over the messages as slices.
    pub fn iter(&self) -> FrameMessagesIter<'_> {
        FrameMessagesIter { batch: &self.batch, ranges: self.ranges.iter() }
    }

    /// Sum of message payload sizes (the "useful" bytes).
    pub fn payload_bytes(&self) -> usize {
        self.ranges.iter().map(|&(_, len)| len as usize).sum()
    }

    /// The shared batch buffer backing every message.
    pub fn batch(&self) -> &Bytes {
        &self.batch
    }

    /// Message `i` as a refcounted zero-copy slice of the batch buffer.
    ///
    /// Panics when out of range.
    pub fn message_bytes(&self, i: usize) -> Bytes {
        let (off, len) = self.ranges[i];
        self.batch.slice(off as usize..(off + len) as usize)
    }

    /// Consume the messages, yielding the batch buffer for recycling (see
    /// [`BytesPool::recycle`]).
    pub fn into_batch(self) -> Bytes {
        self.batch
    }
}

/// Iterator over a frame's messages as byte slices.
pub struct FrameMessagesIter<'a> {
    batch: &'a [u8],
    ranges: std::slice::Iter<'a, (u32, u32)>,
}

impl<'a> Iterator for FrameMessagesIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let &(off, len) = self.ranges.next()?;
        Some(&self.batch[off as usize..(off + len) as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ranges.size_hint()
    }
}

impl<'a> ExactSizeIterator for FrameMessagesIter<'a> {}

impl<'a> IntoIterator for &'a FrameMessages {
    type Item = &'a [u8];
    type IntoIter = FrameMessagesIter<'a>;

    fn into_iter(self) -> FrameMessagesIter<'a> {
        self.iter()
    }
}

impl std::ops::Index<usize> for FrameMessages {
    type Output = [u8];

    fn index(&self, i: usize) -> &[u8] {
        self.get(i).expect("message index out of range")
    }
}

impl PartialEq for FrameMessages {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for FrameMessages {}

impl<T: AsRef<[u8]>> PartialEq<Vec<T>> for FrameMessages {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b.as_ref())
    }
}

impl<T: AsRef<[u8]>> PartialEq<FrameMessages> for Vec<T> {
    fn eq(&self, other: &FrameMessages) -> bool {
        other == self
    }
}

impl FromIterator<Vec<u8>> for FrameMessages {
    fn from_iter<I: IntoIterator<Item = Vec<u8>>>(iter: I) -> Self {
        let collected: Vec<Vec<u8>> = iter.into_iter().collect();
        FrameMessages::from_messages(&collected)
    }
}

/// A decoded frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Link this batch belongs to.
    pub link_id: u64,
    /// Sequence number of the first message.
    pub base_seq: u64,
    /// The batched messages, in emission order.
    pub messages: FrameMessages,
    /// Total bytes this frame occupied on the wire (header + body).
    pub wire_len: usize,
    /// Sender wall clock (µs since the Unix epoch) at flush time, carried
    /// via the [`FLAG_SENT_AT`] wire extension. `0` when absent.
    pub sent_at_micros: u64,
    /// Local instant the frame landed on the destination queue. Set by
    /// transports on delivery, never carried on the wire; the receiving
    /// task's schedule delay is measured against it.
    pub received_at: Option<Instant>,
}

/// Equality compares wire content only — the telemetry stamps
/// (`sent_at_micros`, `received_at`) are measurement metadata, not
/// payload, and differ between otherwise-identical frames.
impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.link_id == other.link_id
            && self.base_seq == other.base_seq
            && self.messages == other.messages
            && self.wire_len == other.wire_len
    }
}

impl Eq for Frame {}

impl Frame {
    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the batch holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Sum of message payload sizes (the "useful" bytes).
    pub fn payload_bytes(&self) -> usize {
        self.messages.payload_bytes()
    }
}

/// Framing/deframing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes were not the frame magic.
    BadMagic(u32),
    /// Body CRC mismatch — corruption on the wire.
    CrcMismatch {
        /// CRC in the header.
        expected: u32,
        /// CRC of the received body.
        actual: u32,
    },
    /// Declared body length exceeds [`MAX_BODY_LEN`].
    OversizedBody(usize),
    /// Body did not decode into `count` well-formed messages.
    MalformedBody(String),
    /// Underlying IO failed (socket closed, truncated read).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#x}"),
            FrameError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: header {expected:#x}, body {actual:#x}")
            }
            FrameError::OversizedBody(n) => write!(f, "oversized frame body: {n} bytes"),
            FrameError::MalformedBody(msg) => write!(f, "malformed frame body: {msg}"),
            FrameError::Io(msg) => write!(f, "frame io error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode a batch of messages into one frame, applying the link's selective
/// compression policy to the body.
pub fn encode_frame(
    link_id: u64,
    base_seq: u64,
    messages: &[impl AsRef<[u8]>],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    // Concatenate length-prefixed messages.
    let raw_len: usize = messages.iter().map(|m| 4 + m.as_ref().len()).sum();
    let mut raw = Vec::with_capacity(raw_len);
    for m in messages {
        let m = m.as_ref();
        raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
        raw.extend_from_slice(m);
    }
    encode_frame_raw(link_id, base_seq, messages.len() as u32, &raw, compressor)
}

/// Encode a frame whose body is already the length-prefixed concatenation
/// produced by an output buffer — the zero-copy flush path: a flushed
/// [`crate::buffer::FlushedBatch`] goes straight to the wire without
/// re-splitting into messages.
pub fn encode_frame_raw(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    encode_frame_raw_at(link_id, base_seq, count, raw, compressor, 0)
}

/// [`encode_frame_raw`] plus a sender wall-clock stamp (µs since the Unix
/// epoch). A non-zero stamp sets [`FLAG_SENT_AT`] and appends the 8-byte
/// extension after the header; zero produces the exact legacy layout.
pub fn encode_frame_raw_at(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
    sent_at_micros: u64,
) -> Vec<u8> {
    let framed = compressor.encode(raw);
    let body = framed.payload;
    let ext = if sent_at_micros != 0 { 8 } else { 0 };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + ext + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(if sent_at_micros != 0 { FLAG_SENT_AT } else { 0 });
    out.extend_from_slice(&link_id.to_le_bytes());
    out.extend_from_slice(&base_seq.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    if sent_at_micros != 0 {
        out.extend_from_slice(&sent_at_micros.to_le_bytes());
    }
    out.extend_from_slice(&body);
    out
}

fn parse_header(
    header: &[u8; FRAME_HEADER_LEN],
) -> Result<(u8, u64, u64, u32, usize, u32), FrameError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("slice len"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let flags = header[4];
    let link_id = u64::from_le_bytes(header[5..13].try_into().expect("slice len"));
    let base_seq = u64::from_le_bytes(header[13..21].try_into().expect("slice len"));
    let count = u32::from_le_bytes(header[21..25].try_into().expect("slice len"));
    let body_len = u32::from_le_bytes(header[25..29].try_into().expect("slice len")) as usize;
    let crc = u32::from_le_bytes(header[29..33].try_into().expect("slice len"));
    if body_len > MAX_BODY_LEN {
        return Err(FrameError::OversizedBody(body_len));
    }
    Ok((flags, link_id, base_seq, count, body_len, crc))
}

/// Byte length of the header extensions selected by `flags`.
#[inline]
fn ext_len(flags: u8) -> usize {
    if flags & FLAG_SENT_AT != 0 {
        8
    } else {
        0
    }
}

/// Split a compression-framed body into message ranges. The hot path — an
/// uncompressed body — is pure pointer arithmetic over the shared buffer:
/// no copy, no per-message allocation. Compressed bodies decompress once
/// into a buffer drawn from `pool` (or a fresh one) and then split the
/// same way.
fn decode_body(
    link_id: u64,
    base_seq: u64,
    count: u32,
    body: Bytes,
    wire_len: usize,
    sent_at_micros: u64,
    pool: Option<&BytesPool>,
) -> Result<Frame, FrameError> {
    let Some(&tag) = body.first() else {
        return Err(FrameError::MalformedBody("empty body".into()));
    };
    let raw = if tag == TAG_RAW {
        body.slice(1..)
    } else {
        // LZ4 (or unknown tag, rejected by the decoder): decompress into
        // pooled storage so even compressed frames reuse batch buffers.
        let mut scratch = Vec::new();
        SelectiveCompressor::decode_into(&body, &mut scratch)
            .map_err(|e| FrameError::MalformedBody(e.to_string()))?;
        let raw = match pool {
            Some(p) => {
                let mut buf = p.checkout(scratch.len());
                buf.extend_from_slice(&scratch);
                buf.freeze()
            }
            None => Bytes::from(scratch),
        };
        // The compressed wire body is spent; reclaim its storage too.
        if let Some(p) = pool {
            p.recycle(body);
        }
        raw
    };
    let messages =
        FrameMessages::parse_prefixed(raw, Some(count)).map_err(FrameError::MalformedBody)?;
    Ok(Frame { link_id, base_seq, messages, wire_len, sent_at_micros, received_at: None })
}

/// Decode one frame from a byte slice; returns the frame and the number of
/// input bytes consumed. Used by the simulator and by tests. The body is
/// copied once into a fresh buffer; use [`decode_frame_shared`] to decode
/// out of an existing refcounted buffer with no copy at all.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Io("buffer shorter than frame header".into()));
    }
    let header: &[u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN].try_into().expect("slice len");
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(header)?;
    let ext = ext_len(flags);
    let total = FRAME_HEADER_LEN + ext + body_len;
    if buf.len() < total {
        return Err(FrameError::Io(format!("buffer holds {} of {total} frame bytes", buf.len())));
    }
    let sent_at = if ext > 0 {
        u64::from_le_bytes(
            buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + 8].try_into().expect("slice len"),
        )
    } else {
        0
    };
    let body = &buf[FRAME_HEADER_LEN + ext..total];
    let actual = crc32(body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    let frame =
        decode_body(link_id, base_seq, count, Bytes::copy_from_slice(body), total, sent_at, None)?;
    Ok((frame, total))
}

/// Decode one frame out of a refcounted buffer; the frame's batch is a
/// zero-copy slice of `buf` (uncompressed bodies perform no copy at all).
/// Returns the frame and the number of input bytes consumed.
pub fn decode_frame_shared(
    buf: &Bytes,
    pool: Option<&BytesPool>,
) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Io("buffer shorter than frame header".into()));
    }
    let header: &[u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN].try_into().expect("slice len");
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(header)?;
    let ext = ext_len(flags);
    let total = FRAME_HEADER_LEN + ext + body_len;
    if buf.len() < total {
        return Err(FrameError::Io(format!("buffer holds {} of {total} frame bytes", buf.len())));
    }
    let sent_at = if ext > 0 {
        u64::from_le_bytes(
            buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + 8].try_into().expect("slice len"),
        )
    } else {
        0
    };
    let body = buf.slice(FRAME_HEADER_LEN + ext..total);
    let actual = crc32(&body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    let frame = decode_body(link_id, base_seq, count, body, total, sent_at, pool)?;
    Ok((frame, total))
}

/// Read exactly one frame from a blocking reader (the TCP receive path).
/// The body lands in a fresh buffer; see [`read_frame_pooled`] for the
/// recycling variant used by receiver IO threads.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    read_frame_inner(r, None)
}

/// Read exactly one frame, drawing the body buffer from `pool` — the
/// steady-state receive path allocates nothing: the body buffer is
/// recycled, and splitting it into messages is zero-copy.
pub fn read_frame_pooled(r: &mut impl Read, pool: &BytesPool) -> Result<Frame, FrameError> {
    read_frame_inner(r, Some(pool))
}

fn read_frame_inner(r: &mut impl Read, pool: Option<&BytesPool>) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(&header)?;
    let sent_at = if flags & FLAG_SENT_AT != 0 {
        let mut stamp = [0u8; 8];
        r.read_exact(&mut stamp)?;
        u64::from_le_bytes(stamp)
    } else {
        0
    };
    let body = match pool {
        Some(p) => {
            let mut buf = p.checkout(body_len);
            buf.resize(body_len, 0);
            r.read_exact(&mut buf)?;
            buf.freeze()
        }
        None => {
            let mut buf = vec![0u8; body_len];
            r.read_exact(&mut buf)?;
            Bytes::from(buf)
        }
    };
    let actual = crc32(&body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    let wire_len = FRAME_HEADER_LEN + ext_len(flags) + body_len;
    decode_body(link_id, base_seq, count, body, wire_len, sent_at, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_policy() -> SelectiveCompressor {
        SelectiveCompressor::disabled()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn roundtrip_simple_batch() {
        let msgs: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"bravo!".to_vec(), vec![]];
        let wire = encode_frame(42, 1000, &msgs, &raw_policy());
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(frame.link_id, 42);
        assert_eq!(frame.base_seq, 1000);
        assert_eq!(frame.messages, msgs);
        assert_eq!(frame.wire_len, wire.len());
        assert_eq!(frame.payload_bytes(), 11);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let msgs: Vec<Vec<u8>> = vec![];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        let (frame, _) = decode_frame(&wire).unwrap();
        assert!(frame.is_empty());
        assert_eq!(frame.len(), 0);
    }

    #[test]
    fn roundtrip_compressed_batch_shrinks() {
        let msgs: Vec<Vec<u8>> = (0..100).map(|_| vec![7u8; 100]).collect();
        let raw = encode_frame(5, 0, &msgs, &raw_policy());
        let compressed = encode_frame(5, 0, &msgs, &SelectiveCompressor::new(4.0));
        assert!(compressed.len() < raw.len() / 4, "{} vs {}", compressed.len(), raw.len());
        let (frame, _) = decode_frame(&compressed).unwrap();
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn bad_magic_detected() {
        let msgs = vec![b"x".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        wire[0] ^= 0xFF;
        assert!(matches!(decode_frame(&wire), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn corrupted_body_detected_by_crc() {
        let msgs = vec![b"hello world".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(decode_frame(&wire), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn corrupted_header_length_rejected() {
        let msgs = vec![b"hello".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Blow up the declared body length beyond the cap.
        wire[25..29].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::OversizedBody(_))));
    }

    #[test]
    fn truncated_buffer_is_io_error() {
        let msgs = vec![b"hello".to_vec()];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        assert!(matches!(decode_frame(&wire[..10]), Err(FrameError::Io(_))));
        assert!(matches!(decode_frame(&wire[..wire.len() - 1]), Err(FrameError::Io(_))));
    }

    #[test]
    fn count_mismatch_detected() {
        let msgs = vec![b"a".to_vec(), b"b".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Claim 3 messages while the body holds 2.
        wire[21..25].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::MalformedBody(_))));
    }

    #[test]
    fn read_frame_from_stream() {
        let msgs = vec![b"stream-read".to_vec(), b"works".to_vec()];
        let wire = encode_frame(9, 77, &msgs, &SelectiveCompressor::new(6.0));
        let mut cursor = std::io::Cursor::new(wire);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.link_id, 9);
        assert_eq!(frame.base_seq, 77);
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let a = encode_frame(1, 0, &[b"one".to_vec()], &raw_policy());
        let b = encode_frame(1, 1, &[b"two".to_vec()], &raw_policy());
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        let (f1, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, a.len());
        let (f2, used2) = decode_frame(&wire[used..]).unwrap();
        assert_eq!(used + used2, wire.len());
        assert_eq!(f1.base_seq, 0);
        assert_eq!(f2.base_seq, 1);
    }

    #[test]
    fn shared_decode_aliases_input_buffer() {
        // Zero-copy: an uncompressed body decoded out of a shared buffer
        // must point into that buffer, not into a copy.
        let msgs = vec![b"zero".to_vec(), b"copy".to_vec()];
        let wire = Bytes::from(encode_frame(4, 2, &msgs, &raw_policy()));
        let (frame, used) = decode_frame_shared(&wire, None).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.messages, msgs);
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        let m0 = &frame.messages[0];
        assert!(
            wire_range.contains(&(m0.as_ptr() as usize)),
            "decoded message must alias the wire buffer"
        );
    }

    #[test]
    fn pooled_read_recycles_body_buffers() {
        let pool = BytesPool::new(8);
        let msgs = vec![b"pooled".to_vec(); 10];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        for round in 0..5 {
            let mut cursor = std::io::Cursor::new(&wire);
            let frame = read_frame_pooled(&mut cursor, &pool).unwrap();
            assert_eq!(frame.messages, msgs);
            assert!(pool.recycle(frame.messages.into_batch()), "round {round}");
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "steady state must reuse the body buffer: {stats:?}");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn pooled_read_recycles_compressed_bodies_too() {
        let pool = BytesPool::new(8);
        let msgs: Vec<Vec<u8>> = (0..50).map(|_| vec![3u8; 100]).collect();
        let wire = encode_frame(1, 0, &msgs, &SelectiveCompressor::new(4.0));
        for _ in 0..3 {
            let mut cursor = std::io::Cursor::new(&wire);
            let frame = read_frame_pooled(&mut cursor, &pool).unwrap();
            assert_eq!(frame.messages, msgs);
            pool.recycle(frame.messages.into_batch());
        }
        assert!(pool.stats().hits > 0, "decompressed bodies must come from the pool");
    }

    #[test]
    fn frame_messages_accessors() {
        let fm = FrameMessages::from_messages(&[b"ab".as_slice(), b"", b"cdef"]);
        assert_eq!(fm.len(), 3);
        assert!(!fm.is_empty());
        assert_eq!(fm.get(0), Some(b"ab".as_slice()));
        assert_eq!(fm.get(1), Some(b"".as_slice()));
        assert_eq!(&fm[2], b"cdef".as_slice());
        assert_eq!(fm.get(3), None);
        assert_eq!(fm.payload_bytes(), 6);
        assert_eq!(fm.iter().count(), 3);
        assert_eq!(fm.message_bytes(2), Bytes::from_static(b"cdef"));
        let collected: Vec<&[u8]> = (&fm).into_iter().collect();
        assert_eq!(collected, vec![b"ab".as_slice(), b"", b"cdef"]);
        assert_eq!(FrameMessages::empty().len(), 0);
    }

    #[test]
    fn frame_messages_equality() {
        let a = FrameMessages::from_messages(&[b"x".as_slice(), b"yy"]);
        let b: FrameMessages = vec![b"x".to_vec(), b"yy".to_vec()].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![b"x".to_vec(), b"yy".to_vec()]);
        assert_eq!(vec![b"x".to_vec(), b"yy".to_vec()], a);
        assert_ne!(a, vec![b"x".to_vec()]);
        assert_ne!(a, vec![b"x".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn sent_at_extension_roundtrips_on_every_decode_path() {
        let msgs = vec![b"stamped".to_vec(), b"batch".to_vec()];
        let mut raw = Vec::new();
        for m in &msgs {
            raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
            raw.extend_from_slice(m);
        }
        let stamp = 1_722_000_000_000_123u64;
        let wire = encode_frame_raw_at(3, 50, 2, &raw, &raw_policy(), stamp);
        assert_eq!(wire[4], FLAG_SENT_AT);

        let (f, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(f.sent_at_micros, stamp);
        assert_eq!(f.messages, msgs);
        assert_eq!(f.wire_len, wire.len());

        let shared = Bytes::from(wire.clone());
        let (f2, _) = decode_frame_shared(&shared, None).unwrap();
        assert_eq!(f2.sent_at_micros, stamp);

        let mut cursor = std::io::Cursor::new(&wire);
        let f3 = read_frame(&mut cursor).unwrap();
        assert_eq!(f3.sent_at_micros, stamp);
        assert_eq!(f3.messages, msgs);
        assert!(f3.received_at.is_none(), "the wire never carries received_at");
    }

    #[test]
    fn zero_stamp_produces_legacy_wire_format() {
        let msgs = vec![b"legacy".to_vec()];
        let via_raw = {
            let mut raw = Vec::new();
            raw.extend_from_slice(&(msgs[0].len() as u32).to_le_bytes());
            raw.extend_from_slice(&msgs[0]);
            encode_frame_raw_at(1, 0, 1, &raw, &raw_policy(), 0)
        };
        assert_eq!(via_raw, encode_frame(1, 0, &msgs, &raw_policy()));
        assert_eq!(via_raw[4], 0, "no flags without a stamp");
        let (f, _) = decode_frame(&via_raw).unwrap();
        assert_eq!(f.sent_at_micros, 0);
    }

    #[test]
    fn frame_equality_ignores_telemetry_stamps() {
        let wire = encode_frame(1, 0, &[b"x".to_vec()], &raw_policy());
        let (a, _) = decode_frame(&wire).unwrap();
        let mut b = a.clone();
        b.sent_at_micros = 12345;
        b.received_at = Some(Instant::now());
        assert_eq!(a, b);
    }

    #[test]
    fn parse_prefixed_rejects_corruption() {
        assert!(FrameMessages::parse_prefixed(Bytes::from_static(&[1, 2, 3]), None).is_err());
        assert!(FrameMessages::parse_prefixed(Bytes::from_static(&[10, 0, 0, 0, 1]), None).is_err());
        let ok = FrameMessages::parse_prefixed(Bytes::new(), None).unwrap();
        assert!(ok.is_empty());
        // Count mismatch.
        let one = FrameMessages::from_messages(&[b"m".as_slice()]);
        assert!(FrameMessages::parse_prefixed(one.into_batch(), Some(2)).is_err());
    }
}
