//! Batch wire framing.
//!
//! A flushed output buffer becomes exactly one *frame* on the wire:
//!
//! ```text
//! | magic (4B) | flags (1B) | link_id (8B) | base_seq (8B) | count (4B)
//! | body_len (4B) | crc32 (4B) | body (body_len bytes) |
//! ```
//!
//! The body is the selective-compression framing (see `neptune-compress`)
//! of the concatenation `[msg_len (4B LE) | msg bytes] * count`. `base_seq`
//! is the sequence number of the first message in the batch; messages are
//! contiguous, which is how the receiver enforces the paper's in-order,
//! exactly-once delivery within a link.
//!
//! The CRC32 (IEEE 802.3 polynomial, implemented from scratch with a
//! lazily-built lookup table) covers the body; the paper's correctness goal
//! — *"our proposed solution should not result in dropped or corrupted
//! stream packets"* — is checked, not assumed.

use neptune_compress::SelectiveCompressor;
use std::io::Read;
use std::sync::OnceLock;

/// Frame magic: `"NEPT"` little-endian.
pub const MAGIC: u32 = 0x5450_454E;
/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4 + 4 + 4;
/// Cap on the body length accepted by the decoder (a corrupted length field
/// must not trigger a huge allocation).
pub const MAX_BODY_LEN: usize = 64 << 20;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Link this batch belongs to.
    pub link_id: u64,
    /// Sequence number of the first message.
    pub base_seq: u64,
    /// The batched messages, in emission order.
    pub messages: Vec<Vec<u8>>,
    /// Total bytes this frame occupied on the wire (header + body).
    pub wire_len: usize,
}

impl Frame {
    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the batch holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Sum of message payload sizes (the "useful" bytes).
    pub fn payload_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.len()).sum()
    }
}

/// Framing/deframing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes were not the frame magic.
    BadMagic(u32),
    /// Body CRC mismatch — corruption on the wire.
    CrcMismatch {
        /// CRC in the header.
        expected: u32,
        /// CRC of the received body.
        actual: u32,
    },
    /// Declared body length exceeds [`MAX_BODY_LEN`].
    OversizedBody(usize),
    /// Body did not decode into `count` well-formed messages.
    MalformedBody(String),
    /// Underlying IO failed (socket closed, truncated read).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#x}"),
            FrameError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: header {expected:#x}, body {actual:#x}")
            }
            FrameError::OversizedBody(n) => write!(f, "oversized frame body: {n} bytes"),
            FrameError::MalformedBody(msg) => write!(f, "malformed frame body: {msg}"),
            FrameError::Io(msg) => write!(f, "frame io error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode a batch of messages into one frame, applying the link's selective
/// compression policy to the body.
pub fn encode_frame(
    link_id: u64,
    base_seq: u64,
    messages: &[impl AsRef<[u8]>],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    // Concatenate length-prefixed messages.
    let raw_len: usize = messages.iter().map(|m| 4 + m.as_ref().len()).sum();
    let mut raw = Vec::with_capacity(raw_len);
    for m in messages {
        let m = m.as_ref();
        raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
        raw.extend_from_slice(m);
    }
    encode_frame_raw(link_id, base_seq, messages.len() as u32, &raw, compressor)
}

/// Encode a frame whose body is already the length-prefixed concatenation
/// produced by an output buffer — the zero-copy flush path: a flushed
/// [`crate::buffer::FlushedBatch`] goes straight to the wire without
/// re-splitting into messages.
pub fn encode_frame_raw(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    let framed = compressor.encode(raw);
    let body = framed.payload;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(0u8); // flags, reserved
    out.extend_from_slice(&link_id.to_le_bytes());
    out.extend_from_slice(&base_seq.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn parse_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u64, u64, u32, usize, u32), FrameError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("slice len"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let link_id = u64::from_le_bytes(header[5..13].try_into().expect("slice len"));
    let base_seq = u64::from_le_bytes(header[13..21].try_into().expect("slice len"));
    let count = u32::from_le_bytes(header[21..25].try_into().expect("slice len"));
    let body_len = u32::from_le_bytes(header[25..29].try_into().expect("slice len")) as usize;
    let crc = u32::from_le_bytes(header[29..33].try_into().expect("slice len"));
    if body_len > MAX_BODY_LEN {
        return Err(FrameError::OversizedBody(body_len));
    }
    Ok((link_id, base_seq, count, body_len, crc))
}

fn decode_body(
    link_id: u64,
    base_seq: u64,
    count: u32,
    body: &[u8],
    wire_len: usize,
) -> Result<Frame, FrameError> {
    let raw = SelectiveCompressor::decode(body)
        .map_err(|e| FrameError::MalformedBody(e.to_string()))?;
    let mut messages = Vec::with_capacity(count as usize);
    let mut i = 0usize;
    for k in 0..count {
        if i + 4 > raw.len() {
            return Err(FrameError::MalformedBody(format!(
                "message {k} length prefix out of bounds"
            )));
        }
        let len =
            u32::from_le_bytes(raw[i..i + 4].try_into().expect("slice len")) as usize;
        i += 4;
        if i + len > raw.len() {
            return Err(FrameError::MalformedBody(format!("message {k} body out of bounds")));
        }
        messages.push(raw[i..i + len].to_vec());
        i += len;
    }
    if i != raw.len() {
        return Err(FrameError::MalformedBody(format!("{} trailing bytes", raw.len() - i)));
    }
    Ok(Frame { link_id, base_seq, messages, wire_len })
}

/// Decode one frame from a byte slice; returns the frame and the number of
/// input bytes consumed. Used by the simulator and by tests.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Io("buffer shorter than frame header".into()));
    }
    let header: &[u8; FRAME_HEADER_LEN] =
        buf[..FRAME_HEADER_LEN].try_into().expect("slice len");
    let (link_id, base_seq, count, body_len, crc) = parse_header(header)?;
    let total = FRAME_HEADER_LEN + body_len;
    if buf.len() < total {
        return Err(FrameError::Io(format!(
            "buffer holds {} of {total} frame bytes",
            buf.len()
        )));
    }
    let body = &buf[FRAME_HEADER_LEN..total];
    let actual = crc32(body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    Ok((decode_body(link_id, base_seq, count, body, total)?, total))
}

/// Read exactly one frame from a blocking reader (the TCP receive path).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let (link_id, base_seq, count, body_len, crc) = parse_header(&header)?;
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let actual = crc32(&body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    decode_body(link_id, base_seq, count, &body, FRAME_HEADER_LEN + body_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_policy() -> SelectiveCompressor {
        SelectiveCompressor::disabled()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn roundtrip_simple_batch() {
        let msgs: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"bravo!".to_vec(), vec![]];
        let wire = encode_frame(42, 1000, &msgs, &raw_policy());
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(frame.link_id, 42);
        assert_eq!(frame.base_seq, 1000);
        assert_eq!(frame.messages, msgs);
        assert_eq!(frame.wire_len, wire.len());
        assert_eq!(frame.payload_bytes(), 11);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let msgs: Vec<Vec<u8>> = vec![];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        let (frame, _) = decode_frame(&wire).unwrap();
        assert!(frame.is_empty());
        assert_eq!(frame.len(), 0);
    }

    #[test]
    fn roundtrip_compressed_batch_shrinks() {
        let msgs: Vec<Vec<u8>> = (0..100).map(|_| vec![7u8; 100]).collect();
        let raw = encode_frame(5, 0, &msgs, &raw_policy());
        let compressed = encode_frame(5, 0, &msgs, &SelectiveCompressor::new(4.0));
        assert!(compressed.len() < raw.len() / 4, "{} vs {}", compressed.len(), raw.len());
        let (frame, _) = decode_frame(&compressed).unwrap();
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn bad_magic_detected() {
        let msgs = vec![b"x".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        wire[0] ^= 0xFF;
        assert!(matches!(decode_frame(&wire), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn corrupted_body_detected_by_crc() {
        let msgs = vec![b"hello world".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(decode_frame(&wire), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn corrupted_header_length_rejected() {
        let msgs = vec![b"hello".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Blow up the declared body length beyond the cap.
        wire[25..29].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::OversizedBody(_))));
    }

    #[test]
    fn truncated_buffer_is_io_error() {
        let msgs = vec![b"hello".to_vec()];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        assert!(matches!(decode_frame(&wire[..10]), Err(FrameError::Io(_))));
        assert!(matches!(decode_frame(&wire[..wire.len() - 1]), Err(FrameError::Io(_))));
    }

    #[test]
    fn count_mismatch_detected() {
        let msgs = vec![b"a".to_vec(), b"b".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Claim 3 messages while the body holds 2.
        wire[21..25].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::MalformedBody(_))));
    }

    #[test]
    fn read_frame_from_stream() {
        let msgs = vec![b"stream-read".to_vec(), b"works".to_vec()];
        let wire = encode_frame(9, 77, &msgs, &SelectiveCompressor::new(6.0));
        let mut cursor = std::io::Cursor::new(wire);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.link_id, 9);
        assert_eq!(frame.base_seq, 77);
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let a = encode_frame(1, 0, &[b"one".to_vec()], &raw_policy());
        let b = encode_frame(1, 1, &[b"two".to_vec()], &raw_policy());
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        let (f1, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, a.len());
        let (f2, used2) = decode_frame(&wire[used..]).unwrap();
        assert_eq!(used + used2, wire.len());
        assert_eq!(f1.base_seq, 0);
        assert_eq!(f2.base_seq, 1);
    }
}
