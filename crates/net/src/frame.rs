//! Batch wire framing.
//!
//! A flushed output buffer becomes exactly one *frame* on the wire:
//!
//! ```text
//! | magic (4B) | flags (1B) | link_id (8B) | base_seq (8B) | count (4B)
//! | body_len (4B) | crc32 (4B) | body (body_len bytes) |
//! ```
//!
//! The body is the selective-compression framing (see `neptune-compress`)
//! of the concatenation `[msg_len (4B LE) | msg bytes] * count`. `base_seq`
//! is the sequence number of the first message in the batch; messages are
//! contiguous, which is how the receiver enforces the paper's in-order,
//! exactly-once delivery within a link.
//!
//! Decoding is zero-copy per message (§III-B3's object-reuse principle
//! applied to the receive path): a decoded [`Frame`] holds one refcounted
//! [`Bytes`] batch buffer plus `(offset, len)` ranges into it — see
//! [`FrameMessages`] — so splitting a batch into messages allocates
//! nothing per message, and the batch buffer can be returned to a
//! [`crate::pool::BytesPool`] once the frame is consumed.
//!
//! The CRC32 (IEEE 802.3 polynomial, implemented from scratch with a
//! lazily-built lookup table) covers the body; the paper's correctness goal
//! — *"our proposed solution should not result in dropped or corrupted
//! stream packets"* — is checked, not assumed.
//!
//! ## Header extensions
//!
//! The low four bits of the (previously reserved) flags byte each mark an
//! 8-byte extension word between the fixed header and the body, laid out
//! in ascending bit order. Because every extension bit contributes a fixed
//! 8 bytes, a decoder can compute the body offset from the flags mask
//! alone — extension bits it does not understand are *skipped*, not
//! misparsed, which is what keeps old and new senders interoperable.
//!
//! * Bit 0 ([`FLAG_SENT_AT`]): sender wall clock in µs at flush time. The
//!   receive side uses it to measure flush→receive transport latency
//!   (ISSUE 2); it is not covered by the CRC (a stamp corrupted in
//!   transit skews one telemetry sample, never the data path).
//! * Bit 1 ([`FLAG_SEQ`]): monotonically increasing per-link *frame*
//!   sequence number assigned by the HA layer (ISSUE 3). Receivers ack
//!   cumulatively against it and senders replay unacked frames on
//!   reconnect — at-least-once delivery across link failures.
//! * Bit 2 ([`FLAG_CONTROL`]): the frame is a control frame (heartbeat or
//!   cumulative ack), not data. The extension word carries the
//!   [`ControlKind`]; the control *value* (ack watermark, heartbeat
//!   nonce) rides in the `base_seq` header field and the body is empty.
//! * Bit 3 ([`FLAG_TRACE`]): causal trace id (ISSUE 7). A deterministically
//!   sampled source packet tags its frame with a 64-bit trace id; every
//!   hop records per-stage spans against it and re-tags downstream
//!   frames, so one packet's whole journey reconstructs in Perfetto.
//!   Like the sent-at stamp it is measurement metadata: not CRC-covered,
//!   and decoders that predate it skip the word.
//!
//! Frames with no extension bits decode exactly as before, so the
//! formats interoperate in both directions.

use crate::pool::BytesPool;
use bytes::{Bytes, BytesMut};
use neptune_compress::{SelectiveCompressor, TAG_RAW};
use std::io::Read;
use std::sync::OnceLock;
use std::time::Instant;

/// Frame magic: `"NEPT"` little-endian.
pub const MAGIC: u32 = 0x5450_454E;
/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4 + 4 + 4;
/// Flags bit 0: an 8-byte sent-at (µs) extension follows the header.
pub const FLAG_SENT_AT: u8 = 0b0000_0001;
/// Flags bit 1: an 8-byte per-link frame sequence number extension
/// follows the header (HA ack/replay delivery).
pub const FLAG_SEQ: u8 = 0b0000_0010;
/// Flags bit 2: this is a control frame (heartbeat/ack); an 8-byte
/// [`ControlKind`] word follows the header and the body is empty.
pub const FLAG_CONTROL: u8 = 0b0000_0100;
/// Flags bit 3: an 8-byte causal trace id extension follows the header
/// (sampled per-packet tracing, ISSUE 7).
pub const FLAG_TRACE: u8 = 0b0000_1000;
/// Every flag bit in this mask contributes one 8-byte extension word, in
/// ascending bit order. Decoders size the extension area from the mask so
/// reserved bits are skipped, never misparsed into the body.
pub const EXT_FLAG_MASK: u8 = 0b0000_1111;
/// Cap on the body length accepted by the decoder (a corrupted length field
/// must not trigger a huge allocation).
pub const MAX_BODY_LEN: usize = 64 << 20;

/// The messages of one decoded frame: a single refcounted batch buffer
/// plus per-message `(offset, len)` ranges into it.
///
/// Splitting a batch this way performs **zero per-message allocations** —
/// the ranges vector is the only per-frame allocation, amortized across
/// the whole batch. Messages read as `&[u8]` slices; the batch buffer
/// itself can be reclaimed via [`into_batch`](Self::into_batch) +
/// [`BytesPool::recycle`] once every message has been processed.
#[derive(Debug, Clone)]
pub struct FrameMessages {
    batch: Bytes,
    ranges: Vec<(u32, u32)>,
}

impl FrameMessages {
    /// Empty message set.
    pub fn empty() -> Self {
        FrameMessages { batch: Bytes::new(), ranges: Vec::new() }
    }

    /// Parse a length-prefixed concatenation (`[len u32 LE | bytes] *`)
    /// into message ranges — the zero-copy receive-side split. When
    /// `expected_count` is given, the number of parsed messages must match.
    pub fn parse_prefixed(batch: Bytes, expected_count: Option<u32>) -> Result<Self, String> {
        let mut ranges = Vec::with_capacity(expected_count.unwrap_or(8) as usize);
        let mut i = 0usize;
        while i < batch.len() {
            if i + 4 > batch.len() {
                return Err(format!("dangling length prefix at offset {i}"));
            }
            let len = u32::from_le_bytes(batch[i..i + 4].try_into().expect("slice len")) as usize;
            i += 4;
            if i + len > batch.len() {
                return Err(format!("message at offset {i} overruns buffer"));
            }
            ranges.push((i as u32, len as u32));
            i += len;
        }
        if let Some(count) = expected_count {
            if ranges.len() != count as usize {
                return Err(format!("count {} but {} messages", count, ranges.len()));
            }
        }
        Ok(FrameMessages { batch, ranges })
    }

    /// Build from discrete messages (tests and compatibility paths): the
    /// messages are copied once into a fresh length-prefixed batch.
    pub fn from_messages(messages: &[impl AsRef<[u8]>]) -> Self {
        let total: usize = messages.iter().map(|m| 4 + m.as_ref().len()).sum();
        let mut batch = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(messages.len());
        for m in messages {
            let m = m.as_ref();
            batch.extend_from_slice(&(m.len() as u32).to_le_bytes());
            ranges.push((batch.len() as u32, m.len() as u32));
            batch.extend_from_slice(m);
        }
        FrameMessages { batch: Bytes::from(batch), ranges }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no messages.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Message `i` as a slice, or `None` out of range.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        let &(off, len) = self.ranges.get(i)?;
        Some(&self.batch[off as usize..off as usize + len as usize])
    }

    /// Iterate over the messages as slices.
    pub fn iter(&self) -> FrameMessagesIter<'_> {
        FrameMessagesIter { batch: &self.batch, ranges: self.ranges.iter() }
    }

    /// Sum of message payload sizes (the "useful" bytes).
    pub fn payload_bytes(&self) -> usize {
        self.ranges.iter().map(|&(_, len)| len as usize).sum()
    }

    /// The shared batch buffer backing every message.
    pub fn batch(&self) -> &Bytes {
        &self.batch
    }

    /// Message `i` as a refcounted zero-copy slice of the batch buffer.
    ///
    /// Panics when out of range.
    pub fn message_bytes(&self, i: usize) -> Bytes {
        let (off, len) = self.ranges[i];
        self.batch.slice(off as usize..(off + len) as usize)
    }

    /// Consume the messages, yielding the batch buffer for recycling (see
    /// [`BytesPool::recycle`]).
    pub fn into_batch(self) -> Bytes {
        self.batch
    }
}

/// Iterator over a frame's messages as byte slices.
pub struct FrameMessagesIter<'a> {
    batch: &'a [u8],
    ranges: std::slice::Iter<'a, (u32, u32)>,
}

impl<'a> Iterator for FrameMessagesIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let &(off, len) = self.ranges.next()?;
        Some(&self.batch[off as usize..(off + len) as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ranges.size_hint()
    }
}

impl<'a> ExactSizeIterator for FrameMessagesIter<'a> {}

impl<'a> IntoIterator for &'a FrameMessages {
    type Item = &'a [u8];
    type IntoIter = FrameMessagesIter<'a>;

    fn into_iter(self) -> FrameMessagesIter<'a> {
        self.iter()
    }
}

impl std::ops::Index<usize> for FrameMessages {
    type Output = [u8];

    fn index(&self, i: usize) -> &[u8] {
        self.get(i).expect("message index out of range")
    }
}

impl PartialEq for FrameMessages {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for FrameMessages {}

impl<T: AsRef<[u8]>> PartialEq<Vec<T>> for FrameMessages {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b.as_ref())
    }
}

impl<T: AsRef<[u8]>> PartialEq<FrameMessages> for Vec<T> {
    fn eq(&self, other: &FrameMessages) -> bool {
        other == self
    }
}

impl FromIterator<Vec<u8>> for FrameMessages {
    fn from_iter<I: IntoIterator<Item = Vec<u8>>>(iter: I) -> Self {
        let collected: Vec<Vec<u8>> = iter.into_iter().collect();
        FrameMessages::from_messages(&collected)
    }
}

/// What a control frame ([`FLAG_CONTROL`]) carries. The kind lives in the
/// 8-byte control extension word; the associated value rides in the
/// `base_seq` header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Link liveness probe. Value: an opaque, monotonically increasing
    /// nonce; the receiver answers with an [`ControlKind::Ack`] carrying
    /// its cumulative delivery watermark.
    Heartbeat,
    /// Cumulative acknowledgement. Value: the next *message* sequence the
    /// receiver expects on this link — everything below it may be trimmed
    /// from the sender's replay buffer.
    Ack,
    /// Protocol handshake announcement. Value: [`hello_value`] — a magic
    /// tag plus the sender's protocol version and capability byte (see
    /// [`PROTOCOL_VERSION`]). Sent as the *first* frame on a connection by
    /// version-aware peers (`neptuned`); legacy in-repo clients never send
    /// it and receivers that predate it skip it, so the wire stays
    /// byte-compatible in both directions.
    Hello,
    /// Aligned-checkpoint barrier (Chandy–Lamport style). Value: the
    /// checkpoint id, monotonically increasing per job; `u64::MAX` is the
    /// *final* barrier a finished source emits so downstream alignment
    /// never waits on a closed channel. Barriers are injected at sources,
    /// flow in-band behind every data frame flushed before them, and are
    /// aligned at multi-input operators before state is snapshotted.
    /// Barrier frames only travel on links between checkpoint-aware
    /// builds (the feature is off by default), so no protocol-version
    /// bump is needed: a job either emits none or every peer decodes
    /// them.
    Barrier,
}

impl ControlKind {
    /// Wire encoding of the kind (the low bits of the control word).
    pub fn word(self) -> u64 {
        match self {
            ControlKind::Heartbeat => 1,
            ControlKind::Ack => 2,
            ControlKind::Hello => 3,
            ControlKind::Barrier => 4,
        }
    }

    /// Decode a control word; `None` for kinds this build does not know.
    pub fn from_word(w: u64) -> Option<Self> {
        match w {
            1 => Some(ControlKind::Heartbeat),
            2 => Some(ControlKind::Ack),
            3 => Some(ControlKind::Hello),
            4 => Some(ControlKind::Barrier),
            _ => None,
        }
    }
}

/// Wire protocol version announced in [`ControlKind::Hello`] frames. Bump
/// on any change that an older decoder would *misread* (new mandatory
/// extension semantics, control-value layout changes); purely additive
/// extension bits do not need a bump — unknown bits are skipped.
pub const PROTOCOL_VERSION: u8 = 1;

/// Capability bit: the peer propagates [`FLAG_TRACE`] trace ids.
pub const CAP_TRACE: u8 = 0x01;
/// Capability bit: the peer runs the HA layer ([`FLAG_SEQ`] ack/replay).
pub const CAP_SEQ_REPLAY: u8 = 0x02;
/// Capability bit: the peer understands entropy-compressed frame bodies.
pub const CAP_COMPRESS: u8 = 0x04;
/// Capability byte a current full-featured build announces.
pub const CAPS_ALL: u8 = CAP_TRACE | CAP_SEQ_REPLAY | CAP_COMPRESS;

/// Tag in the high bits of a hello value, so a garbled or misrouted
/// control word cannot be mistaken for a plausible version announcement.
const HELLO_TAG: u64 = 0x4E50_4854 << 32; // "NPHT"

/// Pack a hello control value: tag | version | capability byte.
pub fn hello_value(version: u8, caps: u8) -> u64 {
    HELLO_TAG | ((version as u64) << 8) | caps as u64
}

/// Unpack a hello control value into `(version, caps)`; `None` when the
/// tag is wrong (the word was not produced by [`hello_value`]).
pub fn hello_parts(value: u64) -> Option<(u8, u8)> {
    if value & 0xFFFF_FFFF_0000_0000 != HELLO_TAG {
        return None;
    }
    Some((((value >> 8) & 0xFF) as u8, (value & 0xFF) as u8))
}

/// Encode the hello handshake frame a version-aware peer sends first on a
/// new connection.
pub fn encode_hello_frame(link_id: u64, version: u8, caps: u8) -> Vec<u8> {
    encode_control_frame(link_id, ControlKind::Hello, hello_value(version, caps))
}

/// A decoded frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Link this batch belongs to.
    pub link_id: u64,
    /// Sequence number of the first message.
    pub base_seq: u64,
    /// The batched messages, in emission order.
    pub messages: FrameMessages,
    /// Total bytes this frame occupied on the wire (header + body).
    pub wire_len: usize,
    /// Sender wall clock (µs since the Unix epoch) at flush time, carried
    /// via the [`FLAG_SENT_AT`] wire extension. `0` when absent.
    pub sent_at_micros: u64,
    /// Local instant the frame landed on the destination queue. Set by
    /// transports on delivery, never carried on the wire; the receiving
    /// task's schedule delay is measured against it.
    pub received_at: Option<Instant>,
    /// Per-link frame sequence number carried via the [`FLAG_SEQ`] wire
    /// extension; `None` when the sender is not running the HA layer.
    pub seq: Option<u64>,
    /// Set when this is a control frame ([`FLAG_CONTROL`]); the control
    /// value (ack watermark / heartbeat nonce) is in `base_seq` and
    /// `messages` is empty.
    pub control: Option<ControlKind>,
    /// Causal trace id carried via the [`FLAG_TRACE`] wire extension;
    /// `None` for unsampled frames or senders without tracing.
    pub trace: Option<u64>,
}

/// Equality compares wire content only — the telemetry stamps
/// (`sent_at_micros`, `received_at`, `trace`) are measurement metadata,
/// not payload, and differ between otherwise-identical frames.
impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.link_id == other.link_id
            && self.base_seq == other.base_seq
            && self.messages == other.messages
            && self.wire_len == other.wire_len
            && self.seq == other.seq
            && self.control == other.control
    }
}

impl Eq for Frame {}

impl Frame {
    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the batch holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Sum of message payload sizes (the "useful" bytes).
    pub fn payload_bytes(&self) -> usize {
        self.messages.payload_bytes()
    }
}

/// Framing/deframing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes were not the frame magic.
    BadMagic(u32),
    /// Body CRC mismatch — corruption on the wire.
    CrcMismatch {
        /// CRC in the header.
        expected: u32,
        /// CRC of the received body.
        actual: u32,
    },
    /// Declared body length exceeds [`MAX_BODY_LEN`].
    OversizedBody(usize),
    /// Body did not decode into `count` well-formed messages.
    MalformedBody(String),
    /// Underlying IO failed (socket closed, truncated read).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#x}"),
            FrameError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: header {expected:#x}, body {actual:#x}")
            }
            FrameError::OversizedBody(n) => write!(f, "oversized frame body: {n} bytes"),
            FrameError::MalformedBody(msg) => write!(f, "malformed frame body: {msg}"),
            FrameError::Io(msg) => write!(f, "frame io error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode a batch of messages into one frame, applying the link's selective
/// compression policy to the body.
pub fn encode_frame(
    link_id: u64,
    base_seq: u64,
    messages: &[impl AsRef<[u8]>],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    // Concatenate length-prefixed messages.
    let raw_len: usize = messages.iter().map(|m| 4 + m.as_ref().len()).sum();
    let mut raw = Vec::with_capacity(raw_len);
    for m in messages {
        let m = m.as_ref();
        raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
        raw.extend_from_slice(m);
    }
    encode_frame_raw(link_id, base_seq, messages.len() as u32, &raw, compressor)
}

/// Encode a frame whose body is already the length-prefixed concatenation
/// produced by an output buffer — the zero-copy flush path: a flushed
/// [`crate::buffer::FlushedBatch`] goes straight to the wire without
/// re-splitting into messages.
pub fn encode_frame_raw(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
) -> Vec<u8> {
    encode_frame_raw_at(link_id, base_seq, count, raw, compressor, 0)
}

/// [`encode_frame_raw`] plus a sender wall-clock stamp (µs since the Unix
/// epoch). A non-zero stamp sets [`FLAG_SENT_AT`] and appends the 8-byte
/// extension after the header; zero produces the exact legacy layout.
pub fn encode_frame_raw_at(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
    sent_at_micros: u64,
) -> Vec<u8> {
    encode_frame_raw_ext(link_id, base_seq, count, raw, compressor, sent_at_micros, None)
}

/// [`encode_frame_raw_at`] plus an optional per-link frame sequence
/// number. `Some(seq)` sets [`FLAG_SEQ`] and appends the 8-byte extension
/// (after the sent-at word, in bit order) — the HA layer's ack/replay
/// identity for the frame. `None` with a zero stamp produces the exact
/// legacy layout.
#[allow(clippy::too_many_arguments)]
pub fn encode_frame_raw_ext(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
    sent_at_micros: u64,
    frame_seq: Option<u64>,
) -> Vec<u8> {
    encode_frame_raw_traced(
        link_id,
        base_seq,
        count,
        raw,
        compressor,
        sent_at_micros,
        frame_seq,
        None,
    )
}

/// The fully general encoder: [`encode_frame_raw_ext`] plus an optional
/// causal trace id. `Some(id)` sets [`FLAG_TRACE`] and appends the 8-byte
/// extension (last in bit order). With no stamp, no seq, and no trace the
/// output is the exact legacy layout.
#[allow(clippy::too_many_arguments)]
pub fn encode_frame_raw_traced(
    link_id: u64,
    base_seq: u64,
    count: u32,
    raw: &[u8],
    compressor: &SelectiveCompressor,
    sent_at_micros: u64,
    frame_seq: Option<u64>,
    trace: Option<u64>,
) -> Vec<u8> {
    let framed = compressor.encode(raw);
    let body = framed.payload;
    let mut flags = 0u8;
    if sent_at_micros != 0 {
        flags |= FLAG_SENT_AT;
    }
    if frame_seq.is_some() {
        flags |= FLAG_SEQ;
    }
    if trace.is_some() {
        flags |= FLAG_TRACE;
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + ext_len(flags) + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(flags);
    out.extend_from_slice(&link_id.to_le_bytes());
    out.extend_from_slice(&base_seq.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    if sent_at_micros != 0 {
        out.extend_from_slice(&sent_at_micros.to_le_bytes());
    }
    if let Some(seq) = frame_seq {
        out.extend_from_slice(&seq.to_le_bytes());
    }
    if let Some(id) = trace {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&body);
    out
}

/// Encode a bodyless control frame (heartbeat or cumulative ack). `value`
/// rides in the `base_seq` header field: the ack watermark for
/// [`ControlKind::Ack`], a liveness nonce for [`ControlKind::Heartbeat`].
pub fn encode_control_frame(link_id: u64, kind: ControlKind, value: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(FLAG_CONTROL);
    out.extend_from_slice(&link_id.to_le_bytes());
    out.extend_from_slice(&value.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // count
    out.extend_from_slice(&0u32.to_le_bytes()); // body_len
    out.extend_from_slice(&crc32(b"").to_le_bytes());
    out.extend_from_slice(&kind.word().to_le_bytes());
    out
}

fn parse_header(
    header: &[u8; FRAME_HEADER_LEN],
) -> Result<(u8, u64, u64, u32, usize, u32), FrameError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("slice len"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let flags = header[4];
    let link_id = u64::from_le_bytes(header[5..13].try_into().expect("slice len"));
    let base_seq = u64::from_le_bytes(header[13..21].try_into().expect("slice len"));
    let count = u32::from_le_bytes(header[21..25].try_into().expect("slice len"));
    let body_len = u32::from_le_bytes(header[25..29].try_into().expect("slice len")) as usize;
    let crc = u32::from_le_bytes(header[29..33].try_into().expect("slice len"));
    if body_len > MAX_BODY_LEN {
        return Err(FrameError::OversizedBody(body_len));
    }
    Ok((flags, link_id, base_seq, count, body_len, crc))
}

/// Byte length of the header extensions selected by `flags`: every set
/// bit in [`EXT_FLAG_MASK`] contributes a fixed 8-byte word, so decoders
/// can skip extensions they do not understand.
#[inline]
fn ext_len(flags: u8) -> usize {
    (flags & EXT_FLAG_MASK).count_ones() as usize * 8
}

/// Extension words decoded from the area between header and body.
#[derive(Debug, Default, Clone, Copy)]
struct Extensions {
    sent_at_micros: u64,
    seq: Option<u64>,
    control_word: Option<u64>,
    trace: Option<u64>,
}

/// Walk the extension area in ascending bit order, capturing the words
/// this build understands and skipping the rest. `ext` must be exactly
/// `ext_len(flags)` bytes.
fn parse_extensions(flags: u8, ext: &[u8]) -> Extensions {
    debug_assert_eq!(ext.len(), ext_len(flags));
    let mut out = Extensions::default();
    let mut off = 0usize;
    for bit in 0..u8::BITS as u8 {
        let flag = 1u8 << bit;
        if flag & EXT_FLAG_MASK == 0 || flags & flag == 0 {
            continue;
        }
        let word = u64::from_le_bytes(ext[off..off + 8].try_into().expect("slice len"));
        off += 8;
        match flag {
            FLAG_SENT_AT => out.sent_at_micros = word,
            FLAG_SEQ => out.seq = Some(word),
            FLAG_CONTROL => out.control_word = Some(word),
            FLAG_TRACE => out.trace = Some(word),
            _ => {} // reserved extension: skipped, not rejected
        }
    }
    out
}

/// Interpret a parsed control word, validating the control-frame shape
/// (empty body). Returns `Ok(None)` for data frames.
fn decode_control(exts: &Extensions, body_len: usize) -> Result<Option<ControlKind>, FrameError> {
    let Some(word) = exts.control_word else {
        return Ok(None);
    };
    if body_len != 0 {
        return Err(FrameError::MalformedBody(format!(
            "control frame carries a {body_len}-byte body"
        )));
    }
    match ControlKind::from_word(word) {
        Some(kind) => Ok(Some(kind)),
        None => Err(FrameError::MalformedBody(format!("unknown control kind {word}"))),
    }
}

/// Split a compression-framed body into message ranges. The hot path — an
/// uncompressed body — is pure pointer arithmetic over the shared buffer:
/// no copy, no per-message allocation. Compressed bodies decompress once
/// into a buffer drawn from `pool` (or a fresh one) and then split the
/// same way.
fn decode_body(
    link_id: u64,
    base_seq: u64,
    count: u32,
    body: Bytes,
    wire_len: usize,
    exts: Extensions,
    pool: Option<&BytesPool>,
) -> Result<Frame, FrameError> {
    let Some(&tag) = body.first() else {
        return Err(FrameError::MalformedBody("empty body".into()));
    };
    let raw = if tag == TAG_RAW {
        body.slice(1..)
    } else {
        // LZ4 (or unknown tag, rejected by the decoder): decompress into
        // pooled storage so even compressed frames reuse batch buffers.
        let mut scratch = Vec::new();
        SelectiveCompressor::decode_into(&body, &mut scratch)
            .map_err(|e| FrameError::MalformedBody(e.to_string()))?;
        let raw = match pool {
            Some(p) => {
                let mut buf = p.checkout(scratch.len());
                buf.extend_from_slice(&scratch);
                buf.freeze()
            }
            None => Bytes::from(scratch),
        };
        // The compressed wire body is spent; reclaim its storage too.
        if let Some(p) = pool {
            p.recycle(body);
        }
        raw
    };
    let messages =
        FrameMessages::parse_prefixed(raw, Some(count)).map_err(FrameError::MalformedBody)?;
    Ok(Frame {
        link_id,
        base_seq,
        messages,
        wire_len,
        sent_at_micros: exts.sent_at_micros,
        received_at: None,
        seq: exts.seq,
        control: None,
        trace: exts.trace,
    })
}

/// Assemble a bodyless control frame from its parsed pieces.
fn control_frame(
    link_id: u64,
    value: u64,
    wire_len: usize,
    exts: Extensions,
    kind: ControlKind,
) -> Frame {
    Frame {
        link_id,
        base_seq: value,
        messages: FrameMessages::empty(),
        wire_len,
        sent_at_micros: exts.sent_at_micros,
        received_at: None,
        seq: exts.seq,
        control: Some(kind),
        trace: exts.trace,
    }
}

/// Decode one frame from a byte slice; returns the frame and the number of
/// input bytes consumed. Used by the simulator and by tests. The body is
/// copied once into a fresh buffer; use [`decode_frame_shared`] to decode
/// out of an existing refcounted buffer with no copy at all.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Io("buffer shorter than frame header".into()));
    }
    let header: &[u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN].try_into().expect("slice len");
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(header)?;
    let ext = ext_len(flags);
    let total = FRAME_HEADER_LEN + ext + body_len;
    if buf.len() < total {
        return Err(FrameError::Io(format!("buffer holds {} of {total} frame bytes", buf.len())));
    }
    let exts = parse_extensions(flags, &buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + ext]);
    let body = &buf[FRAME_HEADER_LEN + ext..total];
    let actual = crc32(body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    if let Some(kind) = decode_control(&exts, body_len)? {
        return Ok((control_frame(link_id, base_seq, total, exts, kind), total));
    }
    let frame =
        decode_body(link_id, base_seq, count, Bytes::copy_from_slice(body), total, exts, None)?;
    Ok((frame, total))
}

/// Decode one frame out of a refcounted buffer; the frame's batch is a
/// zero-copy slice of `buf` (uncompressed bodies perform no copy at all).
/// Returns the frame and the number of input bytes consumed.
pub fn decode_frame_shared(
    buf: &Bytes,
    pool: Option<&BytesPool>,
) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Io("buffer shorter than frame header".into()));
    }
    let header: &[u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN].try_into().expect("slice len");
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(header)?;
    let ext = ext_len(flags);
    let total = FRAME_HEADER_LEN + ext + body_len;
    if buf.len() < total {
        return Err(FrameError::Io(format!("buffer holds {} of {total} frame bytes", buf.len())));
    }
    let exts = parse_extensions(flags, &buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + ext]);
    let body = buf.slice(FRAME_HEADER_LEN + ext..total);
    let actual = crc32(&body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    if let Some(kind) = decode_control(&exts, body_len)? {
        return Ok((control_frame(link_id, base_seq, total, exts, kind), total));
    }
    let frame = decode_body(link_id, base_seq, count, body, total, exts, pool)?;
    Ok((frame, total))
}

/// Read exactly one frame from a blocking reader (the TCP receive path).
/// The body lands in a fresh buffer; see [`read_frame_pooled`] for the
/// recycling variant used by receiver IO threads.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    read_frame_inner(r, None)
}

/// Read exactly one frame, drawing the body buffer from `pool` — the
/// steady-state receive path allocates nothing: the body buffer is
/// recycled, and splitting it into messages is zero-copy.
pub fn read_frame_pooled(r: &mut impl Read, pool: &BytesPool) -> Result<Frame, FrameError> {
    read_frame_inner(r, Some(pool))
}

fn read_frame_inner(r: &mut impl Read, pool: Option<&BytesPool>) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let (flags, link_id, base_seq, count, body_len, crc) = parse_header(&header)?;
    let mut ext = [0u8; 8 * (EXT_FLAG_MASK.count_ones() as usize)];
    let ext = &mut ext[..ext_len(flags)];
    r.read_exact(ext)?;
    let exts = parse_extensions(flags, ext);
    let body = match pool {
        Some(p) => {
            let mut buf = p.checkout(body_len);
            buf.resize(body_len, 0);
            r.read_exact(&mut buf)?;
            buf.freeze()
        }
        None => {
            let mut buf = vec![0u8; body_len];
            r.read_exact(&mut buf)?;
            Bytes::from(buf)
        }
    };
    let actual = crc32(&body);
    if actual != crc {
        return Err(FrameError::CrcMismatch { expected: crc, actual });
    }
    let wire_len = FRAME_HEADER_LEN + ext_len(flags) + body_len;
    if let Some(kind) = decode_control(&exts, body_len)? {
        return Ok(control_frame(link_id, base_seq, wire_len, exts, kind));
    }
    decode_body(link_id, base_seq, count, body, wire_len, exts, pool)
}

/// Largest possible extension area (every bit in [`EXT_FLAG_MASK`] set).
const MAX_EXT_LEN: usize = 8 * EXT_FLAG_MASK.count_ones() as usize;

/// Which wire section the incremental decoder is currently filling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeStage {
    Header,
    Ext,
    Body,
}

/// Incremental frame decoder for nonblocking sockets.
///
/// [`read_frame`] assumes a blocking reader: it can `read_exact` each wire
/// section. On the readiness-driven path a socket hands over however many
/// bytes the kernel has — possibly splitting a frame mid-header, mid-
/// extension, or mid-body — so the decoder must be resumable at *every*
/// byte boundary. [`feed`](Self::feed) consumes as much of the input as it
/// can, returns a completed [`Frame`] as soon as one closes, and parks its
/// partial state (fixed header/extension scratch plus a body buffer drawn
/// from the [`BytesPool`]) across `WouldBlock` gaps.
///
/// Semantics are byte-identical to [`read_frame`]: same header validation,
/// same extension skipping, same CRC check over the body, same pooled
/// decompression — the two paths share every parsing helper. A decode
/// error leaves the decoder reset; the transport treats it as fatal for
/// the connection either way, matching the blocking reader.
#[derive(Debug)]
pub struct FrameDecoder {
    stage: DecodeStage,
    /// Bytes filled so far in the *current* stage's buffer.
    filled: usize,
    header: [u8; FRAME_HEADER_LEN],
    ext: [u8; MAX_EXT_LEN],
    /// Body accumulator; checked out when the extension area completes.
    body: Option<BytesMut>,
    // Parsed header fields, valid from the Ext stage onwards.
    flags: u8,
    link_id: u64,
    base_seq: u64,
    count: u32,
    body_len: usize,
    crc: u32,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder positioned at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder {
            stage: DecodeStage::Header,
            filled: 0,
            header: [0u8; FRAME_HEADER_LEN],
            ext: [0u8; MAX_EXT_LEN],
            body: None,
            flags: 0,
            link_id: 0,
            base_seq: 0,
            count: 0,
            body_len: 0,
            crc: 0,
        }
    }

    /// True when the decoder sits exactly on a frame boundary — no partial
    /// frame is buffered. An EOF observed while `!is_idle()` means the
    /// peer died mid-frame.
    pub fn is_idle(&self) -> bool {
        self.stage == DecodeStage::Header && self.filled == 0
    }

    /// Drop any partial frame and return to the boundary state.
    pub fn reset(&mut self) {
        self.stage = DecodeStage::Header;
        self.filled = 0;
        self.body = None;
    }

    /// Consume bytes from `input`, advancing the partial frame. Returns
    /// how many input bytes were consumed and the frame, if one completed.
    /// Stops after at most one frame so the caller controls delivery
    /// pacing; call again with the unconsumed tail for back-to-back
    /// frames. Body buffers (and decompression scratch) come from `pool`
    /// when given. On error the decoder is reset; the connection should be
    /// dropped, exactly as after a [`read_frame`] error.
    pub fn feed(
        &mut self,
        input: &[u8],
        pool: Option<&BytesPool>,
    ) -> Result<(usize, Option<Frame>), FrameError> {
        let mut consumed = 0usize;
        loop {
            match self.stage {
                DecodeStage::Header => {
                    let take = (FRAME_HEADER_LEN - self.filled).min(input.len() - consumed);
                    self.header[self.filled..self.filled + take]
                        .copy_from_slice(&input[consumed..consumed + take]);
                    self.filled += take;
                    consumed += take;
                    if self.filled < FRAME_HEADER_LEN {
                        return Ok((consumed, None));
                    }
                    let (flags, link_id, base_seq, count, body_len, crc) =
                        match parse_header(&self.header) {
                            Ok(parsed) => parsed,
                            Err(e) => {
                                self.reset();
                                return Err(e);
                            }
                        };
                    self.flags = flags;
                    self.link_id = link_id;
                    self.base_seq = base_seq;
                    self.count = count;
                    self.body_len = body_len;
                    self.crc = crc;
                    self.stage = DecodeStage::Ext;
                    self.filled = 0;
                }
                DecodeStage::Ext => {
                    let need = ext_len(self.flags);
                    let take = (need - self.filled).min(input.len() - consumed);
                    self.ext[self.filled..self.filled + take]
                        .copy_from_slice(&input[consumed..consumed + take]);
                    self.filled += take;
                    consumed += take;
                    if self.filled < need {
                        return Ok((consumed, None));
                    }
                    self.body = Some(match pool {
                        Some(p) => p.checkout(self.body_len),
                        None => BytesMut::with_capacity(self.body_len),
                    });
                    self.stage = DecodeStage::Body;
                    self.filled = 0;
                }
                DecodeStage::Body => {
                    let body = self.body.as_mut().expect("body buffer present in Body stage");
                    let take = (self.body_len - body.len()).min(input.len() - consumed);
                    body.extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if body.len() < self.body_len {
                        return Ok((consumed, None));
                    }
                    let body = self.body.take().expect("body buffer present").freeze();
                    self.stage = DecodeStage::Header;
                    self.filled = 0;
                    match self.finish(body, pool) {
                        Ok(frame) => return Ok((consumed, Some(frame))),
                        Err(e) => {
                            self.reset();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Validate and assemble a frame whose three wire sections are all
    /// buffered — the shared tail of every decode path.
    fn finish(&self, body: Bytes, pool: Option<&BytesPool>) -> Result<Frame, FrameError> {
        let actual = crc32(&body);
        if actual != self.crc {
            return Err(FrameError::CrcMismatch { expected: self.crc, actual });
        }
        let exts = parse_extensions(self.flags, &self.ext[..ext_len(self.flags)]);
        let wire_len = FRAME_HEADER_LEN + ext_len(self.flags) + self.body_len;
        if let Some(kind) = decode_control(&exts, self.body_len)? {
            return Ok(control_frame(self.link_id, self.base_seq, wire_len, exts, kind));
        }
        decode_body(self.link_id, self.base_seq, self.count, body, wire_len, exts, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_policy() -> SelectiveCompressor {
        SelectiveCompressor::disabled()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn roundtrip_simple_batch() {
        let msgs: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"bravo!".to_vec(), vec![]];
        let wire = encode_frame(42, 1000, &msgs, &raw_policy());
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(frame.link_id, 42);
        assert_eq!(frame.base_seq, 1000);
        assert_eq!(frame.messages, msgs);
        assert_eq!(frame.wire_len, wire.len());
        assert_eq!(frame.payload_bytes(), 11);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let msgs: Vec<Vec<u8>> = vec![];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        let (frame, _) = decode_frame(&wire).unwrap();
        assert!(frame.is_empty());
        assert_eq!(frame.len(), 0);
    }

    #[test]
    fn barrier_control_frame_roundtrips() {
        let wire = encode_control_frame(11, ControlKind::Barrier, 42);
        let (frame, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.control, Some(ControlKind::Barrier));
        assert_eq!(frame.link_id, 11);
        assert_eq!(frame.base_seq, 42, "checkpoint id rides in base_seq");
        assert!(frame.is_empty(), "barriers carry no body");
        // The final-barrier sentinel survives the trip too.
        let fin = encode_control_frame(11, ControlKind::Barrier, u64::MAX);
        let (frame, _) = decode_frame(&fin).unwrap();
        assert_eq!(frame.base_seq, u64::MAX);
        assert_eq!(ControlKind::from_word(ControlKind::Barrier.word()), Some(ControlKind::Barrier));
    }

    #[test]
    fn roundtrip_compressed_batch_shrinks() {
        let msgs: Vec<Vec<u8>> = (0..100).map(|_| vec![7u8; 100]).collect();
        let raw = encode_frame(5, 0, &msgs, &raw_policy());
        let compressed = encode_frame(5, 0, &msgs, &SelectiveCompressor::new(4.0));
        assert!(compressed.len() < raw.len() / 4, "{} vs {}", compressed.len(), raw.len());
        let (frame, _) = decode_frame(&compressed).unwrap();
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn bad_magic_detected() {
        let msgs = vec![b"x".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        wire[0] ^= 0xFF;
        assert!(matches!(decode_frame(&wire), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn corrupted_body_detected_by_crc() {
        let msgs = vec![b"hello world".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(decode_frame(&wire), Err(FrameError::CrcMismatch { .. })));
    }

    #[test]
    fn corrupted_header_length_rejected() {
        let msgs = vec![b"hello".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Blow up the declared body length beyond the cap.
        wire[25..29].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::OversizedBody(_))));
    }

    #[test]
    fn truncated_buffer_is_io_error() {
        let msgs = vec![b"hello".to_vec()];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        assert!(matches!(decode_frame(&wire[..10]), Err(FrameError::Io(_))));
        assert!(matches!(decode_frame(&wire[..wire.len() - 1]), Err(FrameError::Io(_))));
    }

    #[test]
    fn count_mismatch_detected() {
        let msgs = vec![b"a".to_vec(), b"b".to_vec()];
        let mut wire = encode_frame(1, 0, &msgs, &raw_policy());
        // Claim 3 messages while the body holds 2.
        wire[21..25].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::MalformedBody(_))));
    }

    #[test]
    fn read_frame_from_stream() {
        let msgs = vec![b"stream-read".to_vec(), b"works".to_vec()];
        let wire = encode_frame(9, 77, &msgs, &SelectiveCompressor::new(6.0));
        let mut cursor = std::io::Cursor::new(wire);
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(frame.link_id, 9);
        assert_eq!(frame.base_seq, 77);
        assert_eq!(frame.messages, msgs);
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let a = encode_frame(1, 0, &[b"one".to_vec()], &raw_policy());
        let b = encode_frame(1, 1, &[b"two".to_vec()], &raw_policy());
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        let (f1, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, a.len());
        let (f2, used2) = decode_frame(&wire[used..]).unwrap();
        assert_eq!(used + used2, wire.len());
        assert_eq!(f1.base_seq, 0);
        assert_eq!(f2.base_seq, 1);
    }

    #[test]
    fn shared_decode_aliases_input_buffer() {
        // Zero-copy: an uncompressed body decoded out of a shared buffer
        // must point into that buffer, not into a copy.
        let msgs = vec![b"zero".to_vec(), b"copy".to_vec()];
        let wire = Bytes::from(encode_frame(4, 2, &msgs, &raw_policy()));
        let (frame, used) = decode_frame_shared(&wire, None).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.messages, msgs);
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        let m0 = &frame.messages[0];
        assert!(
            wire_range.contains(&(m0.as_ptr() as usize)),
            "decoded message must alias the wire buffer"
        );
    }

    #[test]
    fn pooled_read_recycles_body_buffers() {
        let pool = BytesPool::new(8);
        let msgs = vec![b"pooled".to_vec(); 10];
        let wire = encode_frame(1, 0, &msgs, &raw_policy());
        for round in 0..5 {
            let mut cursor = std::io::Cursor::new(&wire);
            let frame = read_frame_pooled(&mut cursor, &pool).unwrap();
            assert_eq!(frame.messages, msgs);
            assert!(pool.recycle(frame.messages.into_batch()), "round {round}");
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "steady state must reuse the body buffer: {stats:?}");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn pooled_read_recycles_compressed_bodies_too() {
        let pool = BytesPool::new(8);
        let msgs: Vec<Vec<u8>> = (0..50).map(|_| vec![3u8; 100]).collect();
        let wire = encode_frame(1, 0, &msgs, &SelectiveCompressor::new(4.0));
        for _ in 0..3 {
            let mut cursor = std::io::Cursor::new(&wire);
            let frame = read_frame_pooled(&mut cursor, &pool).unwrap();
            assert_eq!(frame.messages, msgs);
            pool.recycle(frame.messages.into_batch());
        }
        assert!(pool.stats().hits > 0, "decompressed bodies must come from the pool");
    }

    #[test]
    fn frame_messages_accessors() {
        let fm = FrameMessages::from_messages(&[b"ab".as_slice(), b"", b"cdef"]);
        assert_eq!(fm.len(), 3);
        assert!(!fm.is_empty());
        assert_eq!(fm.get(0), Some(b"ab".as_slice()));
        assert_eq!(fm.get(1), Some(b"".as_slice()));
        assert_eq!(&fm[2], b"cdef".as_slice());
        assert_eq!(fm.get(3), None);
        assert_eq!(fm.payload_bytes(), 6);
        assert_eq!(fm.iter().count(), 3);
        assert_eq!(fm.message_bytes(2), Bytes::from_static(b"cdef"));
        let collected: Vec<&[u8]> = (&fm).into_iter().collect();
        assert_eq!(collected, vec![b"ab".as_slice(), b"", b"cdef"]);
        assert_eq!(FrameMessages::empty().len(), 0);
    }

    #[test]
    fn frame_messages_equality() {
        let a = FrameMessages::from_messages(&[b"x".as_slice(), b"yy"]);
        let b: FrameMessages = vec![b"x".to_vec(), b"yy".to_vec()].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![b"x".to_vec(), b"yy".to_vec()]);
        assert_eq!(vec![b"x".to_vec(), b"yy".to_vec()], a);
        assert_ne!(a, vec![b"x".to_vec()]);
        assert_ne!(a, vec![b"x".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn sent_at_extension_roundtrips_on_every_decode_path() {
        let msgs = vec![b"stamped".to_vec(), b"batch".to_vec()];
        let mut raw = Vec::new();
        for m in &msgs {
            raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
            raw.extend_from_slice(m);
        }
        let stamp = 1_722_000_000_000_123u64;
        let wire = encode_frame_raw_at(3, 50, 2, &raw, &raw_policy(), stamp);
        assert_eq!(wire[4], FLAG_SENT_AT);

        let (f, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(f.sent_at_micros, stamp);
        assert_eq!(f.messages, msgs);
        assert_eq!(f.wire_len, wire.len());

        let shared = Bytes::from(wire.clone());
        let (f2, _) = decode_frame_shared(&shared, None).unwrap();
        assert_eq!(f2.sent_at_micros, stamp);

        let mut cursor = std::io::Cursor::new(&wire);
        let f3 = read_frame(&mut cursor).unwrap();
        assert_eq!(f3.sent_at_micros, stamp);
        assert_eq!(f3.messages, msgs);
        assert!(f3.received_at.is_none(), "the wire never carries received_at");
    }

    #[test]
    fn zero_stamp_produces_legacy_wire_format() {
        let msgs = vec![b"legacy".to_vec()];
        let via_raw = {
            let mut raw = Vec::new();
            raw.extend_from_slice(&(msgs[0].len() as u32).to_le_bytes());
            raw.extend_from_slice(&msgs[0]);
            encode_frame_raw_at(1, 0, 1, &raw, &raw_policy(), 0)
        };
        assert_eq!(via_raw, encode_frame(1, 0, &msgs, &raw_policy()));
        assert_eq!(via_raw[4], 0, "no flags without a stamp");
        let (f, _) = decode_frame(&via_raw).unwrap();
        assert_eq!(f.sent_at_micros, 0);
    }

    #[test]
    fn frame_equality_ignores_telemetry_stamps() {
        let wire = encode_frame(1, 0, &[b"x".to_vec()], &raw_policy());
        let (a, _) = decode_frame(&wire).unwrap();
        let mut b = a.clone();
        b.sent_at_micros = 12345;
        b.received_at = Some(Instant::now());
        assert_eq!(a, b);
    }

    fn prefixed(msgs: &[Vec<u8>]) -> Vec<u8> {
        let mut raw = Vec::new();
        for m in msgs {
            raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
            raw.extend_from_slice(m);
        }
        raw
    }

    #[test]
    fn seq_extension_roundtrips_on_every_decode_path() {
        let msgs = vec![b"sequenced".to_vec()];
        let raw = prefixed(&msgs);
        let wire = encode_frame_raw_ext(7, 100, 1, &raw, &raw_policy(), 0, Some(4242));
        assert_eq!(wire[4], FLAG_SEQ);

        let (f, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(f.seq, Some(4242));
        assert_eq!(f.sent_at_micros, 0);
        assert_eq!(f.messages, msgs);
        assert!(f.control.is_none());

        let shared = Bytes::from(wire.clone());
        let (f2, _) = decode_frame_shared(&shared, None).unwrap();
        assert_eq!(f2.seq, Some(4242));

        let mut cursor = std::io::Cursor::new(&wire);
        let f3 = read_frame(&mut cursor).unwrap();
        assert_eq!(f3.seq, Some(4242));
        assert_eq!(f3.messages, msgs);
    }

    #[test]
    fn sent_at_and_seq_extensions_compose() {
        let msgs = vec![b"both".to_vec(), b"exts".to_vec()];
        let raw = prefixed(&msgs);
        let stamp = 1_722_000_000_000_777u64;
        let wire = encode_frame_raw_ext(1, 9, 2, &raw, &raw_policy(), stamp, Some(55));
        assert_eq!(wire[4], FLAG_SENT_AT | FLAG_SEQ);
        assert_eq!(wire.len(), encode_frame(1, 9, &msgs, &raw_policy()).len() + 16);
        let (f, _) = decode_frame(&wire).unwrap();
        assert_eq!(f.sent_at_micros, stamp);
        assert_eq!(f.seq, Some(55));
        assert_eq!(f.messages, msgs);
    }

    #[test]
    fn no_extensions_produces_legacy_layout() {
        let msgs = vec![b"legacy".to_vec()];
        let raw = prefixed(&msgs);
        let wire = encode_frame_raw_ext(1, 0, 1, &raw, &raw_policy(), 0, None);
        assert_eq!(wire, encode_frame(1, 0, &msgs, &raw_policy()));
        let (f, _) = decode_frame(&wire).unwrap();
        assert_eq!(f.seq, None);
        assert!(f.control.is_none());
    }

    #[test]
    fn control_frames_roundtrip() {
        for (kind, value) in [(ControlKind::Heartbeat, 3u64), (ControlKind::Ack, 1_000_000u64)] {
            let wire = encode_control_frame(12, kind, value);
            let (f, used) = decode_frame(&wire).unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(f.control, Some(kind));
            assert_eq!(f.link_id, 12);
            assert_eq!(f.base_seq, value, "control value rides in base_seq");
            assert!(f.is_empty());

            let shared = Bytes::from(wire.clone());
            let (f2, _) = decode_frame_shared(&shared, None).unwrap();
            assert_eq!(f2.control, Some(kind));

            let mut cursor = std::io::Cursor::new(&wire);
            let f3 = read_frame(&mut cursor).unwrap();
            assert_eq!(f3.control, Some(kind));
            assert_eq!(f3.base_seq, value);
        }
    }

    #[test]
    fn hello_frame_roundtrips_and_value_is_tagged() {
        let wire = encode_hello_frame(7, PROTOCOL_VERSION, CAPS_ALL);
        let (f, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(f.control, Some(ControlKind::Hello));
        assert_eq!(hello_parts(f.base_seq), Some((PROTOCOL_VERSION, CAPS_ALL)));
        // A word not produced by hello_value (e.g. an ack watermark that
        // got misrouted) must not parse as a version announcement.
        assert_eq!(hello_parts(1_000_000), None);
        assert_eq!(hello_parts(0), None);
        // All version/caps combinations survive the pack/unpack.
        for v in [0u8, 1, 7, 255] {
            for c in [0u8, CAP_TRACE, CAPS_ALL, 255] {
                assert_eq!(hello_parts(hello_value(v, c)), Some((v, c)));
            }
        }
    }

    #[test]
    fn trace_extension_roundtrips_and_is_absent_by_default() {
        // Bit 3 was the reserved bit this test used to forge as "unknown"
        // — ISSUE 7 assigned it to FLAG_TRACE. The same wire shape
        // (header, seq word, one extra 8-byte word, body) now decodes the
        // extra word as the causal trace id, and the decoder still sizes
        // the extension area from the flags mask to find the body.
        let msgs = vec![b"future".to_vec(), b"proof".to_vec()];
        let raw = prefixed(&msgs);
        let wire =
            encode_frame_raw_traced(3, 20, 2, &raw, &raw_policy(), 0, Some(9), Some(0xDEAD_BEEF));
        let (f, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(f.seq, Some(9));
        assert_eq!(f.trace, Some(0xDEAD_BEEF));
        assert_eq!(f.messages, msgs);
        let mut cursor = std::io::Cursor::new(&wire);
        let f2 = read_frame(&mut cursor).unwrap();
        assert_eq!(f2.trace, Some(0xDEAD_BEEF));
        assert_eq!(f2.messages, msgs);
        // Untraced frames keep the exact legacy layout: no flag, no word,
        // and legacy decoders see a byte-identical frame.
        let legacy = encode_frame_raw_ext(3, 20, 2, &raw, &raw_policy(), 0, Some(9));
        assert_eq!(legacy.len() + 8, wire.len(), "trace adds exactly one 8-byte word");
        assert_eq!(legacy[4] | FLAG_TRACE, wire[4]);
        let (lf, _) = decode_frame(&legacy).unwrap();
        assert_eq!(lf.trace, None);
    }

    #[test]
    fn malformed_control_frames_rejected() {
        // Unknown control kind.
        let mut wire = encode_control_frame(1, ControlKind::Ack, 5);
        wire[FRAME_HEADER_LEN..FRAME_HEADER_LEN + 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(decode_frame(&wire), Err(FrameError::MalformedBody(_))));
        // Control frame with a body.
        let msgs = vec![b"x".to_vec()];
        let raw = prefixed(&msgs);
        let mut with_body = encode_frame_raw_ext(1, 0, 1, &raw, &raw_policy(), 0, None);
        with_body[4] |= FLAG_CONTROL;
        with_body.splice(
            FRAME_HEADER_LEN..FRAME_HEADER_LEN,
            ControlKind::Heartbeat.word().to_le_bytes(),
        );
        assert!(matches!(decode_frame(&with_body), Err(FrameError::MalformedBody(_))));
    }

    #[test]
    fn parse_prefixed_rejects_corruption() {
        assert!(FrameMessages::parse_prefixed(Bytes::from_static(&[1, 2, 3]), None).is_err());
        assert!(FrameMessages::parse_prefixed(Bytes::from_static(&[10, 0, 0, 0, 1]), None).is_err());
        let ok = FrameMessages::parse_prefixed(Bytes::new(), None).unwrap();
        assert!(ok.is_empty());
        // Count mismatch.
        let one = FrameMessages::from_messages(&[b"m".as_slice()]);
        assert!(FrameMessages::parse_prefixed(one.into_batch(), Some(2)).is_err());
    }

    /// Feed `wire` to a decoder in `chunk`-byte slices, asserting the
    /// consumed-byte accounting, and return every completed frame.
    fn feed_chunked(wire: &[u8], chunk: usize, pool: Option<&BytesPool>) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            let mut off = 0;
            while off < piece.len() {
                let (used, frame) = dec.feed(&piece[off..], pool).unwrap();
                assert!(used > 0, "no progress on nonempty input");
                off += used;
                frames.extend(frame);
            }
        }
        assert!(dec.is_idle(), "decoder must end on a frame boundary");
        frames
    }

    #[test]
    fn incremental_decoder_matches_blocking_at_every_split() {
        // All extension bits in play, two frames back to back, split at
        // every chunk size from one byte up: identical results each time.
        let msgs = vec![b"incremental".to_vec(), b"decode".to_vec()];
        let raw = prefixed(&msgs);
        let mut wire = encode_frame_raw_ext(7, 100, 2, &raw, &raw_policy(), 1_234_567, Some(42));
        wire.extend_from_slice(&encode_control_frame(7, ControlKind::Ack, 100));
        let mut cursor = std::io::Cursor::new(&wire);
        let expect_data = read_frame(&mut cursor).unwrap();
        let expect_ctl = read_frame(&mut cursor).unwrap();
        for chunk in 1..=wire.len() {
            let frames = feed_chunked(&wire, chunk, None);
            assert_eq!(frames.len(), 2, "chunk size {chunk}");
            assert_eq!(frames[0], expect_data);
            assert_eq!(frames[0].seq, expect_data.seq);
            assert_eq!(frames[0].sent_at_micros, expect_data.sent_at_micros);
            assert_eq!(frames[1].control, expect_ctl.control);
            assert_eq!(frames[1].base_seq, expect_ctl.base_seq);
        }
    }

    #[test]
    fn incremental_decoder_handles_compressed_bodies_and_recycles() {
        let pool = BytesPool::new(8);
        let msgs: Vec<Vec<u8>> = (0..50).map(|_| vec![9u8; 100]).collect();
        let wire = encode_frame(3, 0, &msgs, &SelectiveCompressor::new(4.0));
        for _ in 0..3 {
            let frames = feed_chunked(&wire, 13, Some(&pool));
            assert_eq!(frames.len(), 1);
            assert_eq!(frames[0].messages, msgs);
            pool.recycle(frames[0].messages.clone().into_batch());
        }
        assert!(pool.stats().hits > 0, "incremental bodies must come from the pool");
    }

    #[test]
    fn incremental_decoder_rejects_corruption_and_resets() {
        let wire = encode_frame(1, 0, &[b"good".to_vec()], &raw_policy());
        let mut dec = FrameDecoder::new();

        // Bad magic surfaces as soon as the header completes.
        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(dec.feed(&bad_magic, None), Err(FrameError::BadMagic(_))));
        assert!(dec.is_idle(), "decoder must reset after an error");

        // A flipped body bit fails the CRC even when fed byte-by-byte.
        let mut bad_body = wire.clone();
        let last = bad_body.len() - 1;
        bad_body[last] ^= 0x01;
        let mut err = None;
        for i in 0..bad_body.len() {
            if let Err(e) = dec.feed(&bad_body[i..i + 1], None) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(FrameError::CrcMismatch { .. })));
        assert!(dec.is_idle());

        // An oversized declared body is rejected before any allocation.
        let mut oversized = wire.clone();
        oversized[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(dec.feed(&oversized, None), Err(FrameError::OversizedBody(_))));

        // After every rejection the same decoder still handles clean input.
        let (used, frame) = dec.feed(&wire, None).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.unwrap().messages, vec![b"good".to_vec()]);
    }

    #[test]
    fn incremental_decoder_reports_mid_frame_state() {
        let wire = encode_frame(1, 0, &[b"partial".to_vec()], &raw_policy());
        let mut dec = FrameDecoder::new();
        assert!(dec.is_idle());
        let (used, frame) = dec.feed(&wire[..FRAME_HEADER_LEN + 2], None).unwrap();
        assert_eq!(used, FRAME_HEADER_LEN + 2);
        assert!(frame.is_none());
        assert!(!dec.is_idle(), "mid-body is not a frame boundary");
        dec.reset();
        assert!(dec.is_idle());
        let (_, frame) = dec.feed(&wire, None).unwrap();
        assert!(frame.is_some(), "reset decoder must accept a fresh frame");
    }
}
