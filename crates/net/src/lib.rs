//! # neptune-net
//!
//! Networking substrate for the NEPTUNE reproduction.
//!
//! This crate owns the mechanisms behind three of the paper's optimizations:
//!
//! * **Application-level buffering** (§III-B1): [`OutputBuffer`] accumulates
//!   serialized stream packets per link and flushes either when a
//!   *byte-capacity* threshold is reached ("irrespective of the number of
//!   the messages in the buffer and their sizes") or when a *flush timer*
//!   expires ("a timer that guarantees flushing of the buffer after a
//!   certain time period since arrival of the first message"), bounding
//!   end-to-end latency.
//! * **Batch framing**: [`frame`] packs a flushed buffer into one wire frame
//!   with a CRC32-protected, optionally entropy-compressed body, so a batch
//!   costs one network-stack traversal instead of hundreds.
//! * **Backpressure** (§III-B4): [`WatermarkQueue`] is the bounded inbound
//!   buffer with high/low watermarks. IO threads block on
//!   [`WatermarkQueue::push_blocking`] when the high watermark is reached
//!   and stay blocked until consumers drain it to the low watermark —
//!   which, on the TCP transport, stops the reader from draining the
//!   socket, closes the TCP window, and throttles the sender.
//!
//! Frames travel over the `neptune-link` crate's transport flavours:
//! in-process queue handover (links between operators co-located in one
//! resource) and [`tcp`] (links across resources, with dedicated IO
//! threads per §III's two-tier thread model). The TCP path itself has two
//! selectable implementations — blocking thread-per-connection and
//! readiness-driven ([`tcp_reactor`], epoll + IO-pool tasks,
//! O(io_threads) at thousands of connections) — behind one
//! byte-compatible facade. This crate keeps the shared vocabulary
//! ([`transport::TransportError`], [`flush::FlushPolicy`]) those flavours
//! compose over.

pub mod buffer;
pub mod flush;
pub mod frame;
pub mod pool;
pub mod tcp;
pub mod tcp_reactor;
pub mod test_support;
pub mod transport;
pub mod watermark;

pub use buffer::{FlushReason, FlushedBatch, OutputBuffer, PushOutcome};
pub use flush::{FlushPolicy, FlushPolicySnapshot};
pub use frame::{
    crc32, decode_frame, decode_frame_shared, encode_control_frame, encode_frame, encode_frame_raw,
    encode_frame_raw_ext, encode_hello_frame, hello_parts, hello_value, read_frame,
    read_frame_pooled, ControlKind, Frame, FrameDecoder, FrameError, FrameMessages, CAPS_ALL,
    CAP_COMPRESS, CAP_SEQ_REPLAY, CAP_TRACE, FLAG_CONTROL, FLAG_SENT_AT, FLAG_SEQ,
    FRAME_HEADER_LEN, PROTOCOL_VERSION,
};
pub use pool::{BytesPool, BytesPoolStats};
pub use tcp::{HandshakeGate, TcpReceiver, TcpSender};
pub use tcp_reactor::NetDriver;
pub use transport::TransportError;
pub use watermark::{PushError, Pushed, ShedConfig, ShedPolicy, WatermarkConfig, WatermarkQueue};
