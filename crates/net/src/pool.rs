//! Shared batch-buffer pool — the transport-level half of the paper's
//! frugal object-creation scheme (§III-B3).
//!
//! One [`BytesPool`] is shared by every allocation site on a job's batch
//! data path: output buffers check out backing storage here, TCP readers
//! check out frame-body buffers here, and processor tasks return a frame's
//! batch buffer here once every message in it has been processed. Because
//! frames carry one refcounted [`Bytes`] buffer (see
//! [`crate::frame::FrameMessages`]), "returning" is just
//! [`Bytes::try_into_mut`]: it succeeds exactly when no other handle to the
//! batch survives, so a buffer can never be recycled while a downstream
//! consumer still reads from it — the safety property the paper's JVM
//! implementation had to enforce by convention.

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of a [`BytesPool`]'s effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytesPoolStats {
    /// Checkouts served from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate fresh storage.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Returns dropped (pool full, or the buffer was still shared).
    pub discards: u64,
    /// Total capacity (bytes) of buffers served from the free list —
    /// allocation traffic the pool absorbed.
    pub bytes_reused: u64,
}

impl BytesPoolStats {
    /// Fraction of checkouts served without allocating (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe pool of reusable batch buffers.
///
/// Unlike the per-instance pools in `neptune-core`, this one is shared:
/// batches are checked out on worker threads (output buffers) and IO
/// threads (TCP readers) but recycled on whichever thread finishes with
/// the frame, so checkout/recycle take a mutex. The lock is held for a
/// vector push/pop only — the buffer contents are never touched under it.
#[derive(Debug)]
pub struct BytesPool {
    free: Mutex<Vec<BytesMut>>,
    max_retained: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    bytes_reused: AtomicU64,
}

impl BytesPool {
    /// Pool retaining at most `max_retained` idle buffers.
    ///
    /// Panics if `max_retained == 0`.
    pub fn new(max_retained: usize) -> Self {
        assert!(max_retained > 0, "pool must retain at least one buffer");
        BytesPool {
            free: Mutex::new(Vec::with_capacity(max_retained.min(256))),
            max_retained,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discards: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
        }
    }

    /// Check out a cleared buffer with at least `min_capacity` bytes of
    /// capacity. Served from the free list when possible; the pooled
    /// buffer's capacity is grown (one-time cost) if it is too small.
    pub fn checkout(&self, min_capacity: usize) -> BytesMut {
        let pooled = self.free.lock().pop();
        match pooled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_reused.fetch_add(buf.capacity() as u64, Ordering::Relaxed);
                buf.clear();
                if buf.capacity() < min_capacity {
                    // `reserve` is relative to `len` (0 after the clear), so
                    // this guarantees capacity >= min_capacity.
                    buf.reserve(min_capacity);
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::with_capacity(min_capacity)
            }
        }
    }

    /// Try to reclaim a frozen buffer. Succeeds (returns `true`) only when
    /// `bytes` is the last handle to its storage — a batch still referenced
    /// by any frame, queue, or in-flight send is left untouched and the
    /// handle is simply dropped.
    pub fn recycle(&self, bytes: Bytes) -> bool {
        match bytes.try_into_mut() {
            Ok(buf) => {
                self.recycle_mut(buf);
                true
            }
            Err(_still_shared) => {
                self.discards.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Return exclusively-owned storage to the free list.
    pub fn recycle_mut(&self, mut buf: BytesMut) {
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_retained {
            free.push(buf);
            drop(free);
            self.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(free);
            self.discards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Idle buffers currently retained.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> BytesPoolStats {
        BytesPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            discards: self.discards.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
        }
    }
}

impl Default for BytesPool {
    /// A pool sized for a mid-size job: up to 256 retained buffers.
    fn default() -> Self {
        BytesPool::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_from_empty_pool_allocates() {
        let pool = BytesPool::new(4);
        let b = pool.checkout(128);
        assert!(b.is_empty());
        assert!(b.capacity() >= 128);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn recycle_then_checkout_reuses_storage() {
        let pool = BytesPool::new(4);
        let mut b = pool.checkout(64);
        b.extend_from_slice(&[7u8; 64]);
        let ptr = b.as_ptr();
        assert!(pool.recycle(b.freeze()), "sole handle must recycle");
        let again = pool.checkout(64);
        assert_eq!(again.as_ptr(), ptr, "storage must round-trip");
        assert!(again.is_empty(), "recycled buffer must come back cleared");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!(s.bytes_reused >= 64);
    }

    #[test]
    fn shared_bytes_are_not_reclaimed() {
        let pool = BytesPool::new(4);
        let mut b = pool.checkout(32);
        b.extend_from_slice(b"live data");
        let frozen = b.freeze();
        let alias = frozen.clone();
        assert!(!pool.recycle(frozen), "shared buffer must not be reclaimed");
        assert_eq!(&alias[..], b"live data", "alias still reads valid data");
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats().discards, 1);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BytesPool::new(2);
        let bufs: Vec<_> = (0..4).map(|_| pool.checkout(16)).collect();
        for b in bufs {
            pool.recycle(b.freeze());
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discards, 2);
    }

    #[test]
    fn checkout_grows_undersized_pooled_buffer() {
        let pool = BytesPool::new(2);
        let b = pool.checkout(16);
        pool.recycle(b.freeze());
        let big = pool.checkout(4096);
        assert!(big.capacity() >= 4096);
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let pool = BytesPool::new(8);
        let b = pool.checkout(8); // miss
        pool.recycle(b.freeze());
        for _ in 0..9 {
            let b = pool.checkout(8); // hits
            pool.recycle(b.freeze());
        }
        assert!((pool.stats().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn concurrent_checkout_recycle() {
        use std::sync::Arc;
        let pool = Arc::new(BytesPool::new(64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        let mut b = pool.checkout(64);
                        b.extend_from_slice(&i.to_le_bytes());
                        let frozen = b.freeze();
                        assert_eq!(&frozen[..8], &i.to_le_bytes());
                        pool.recycle(frozen);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4000);
        assert!(s.hits > 3000, "steady state must be hit-dominated: {s:?}");
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_capacity_rejected() {
        BytesPool::new(0);
    }
}
