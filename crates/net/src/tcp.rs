//! TCP transport — the cross-resource link path, in two selectable
//! flavours behind one facade.
//!
//! The paper's two-tier thread model (§I-C, §IV-C) separates *worker
//! threads* (stream-processor logic) from *IO threads* (socket traffic).
//! [`TcpSender`] and [`TcpReceiver`] are facades over two implementations
//! of that contract:
//!
//! * **Blocking** (the original path, [`TcpSender::connect`] /
//!   [`TcpReceiver::bind`]): one writer OS thread per outbound link fed by
//!   a **bounded** frame queue, one reader OS thread per accepted
//!   connection, plus an acceptor thread. When the remote end stops
//!   reading, the kernel send buffer fills, the writer blocks in
//!   `write_all`, the bounded queue fills, and [`TcpSender::send`] blocks
//!   the calling worker thread — the paper's *"shared bounded buffers at
//!   IO threads that are handling outbound traffic ... prevents worker
//!   threads from writing to these shared buffers"*. Thread count is
//!   O(connections).
//! * **Readiness-driven** ([`TcpSender::connect_reactor`] /
//!   [`TcpReceiver::bind_reactor`], see [`crate::tcp_reactor`]): the same
//!   state machines as cooperative IO-pool tasks woken by an epoll
//!   reactor, so thread count stays O(io_threads) at thousands of
//!   connections. Backpressure works by *not re-arming* the read interest
//!   while the inbound [`WatermarkQueue`] is gated — the TCP window
//!   closes, §III-B4's *"backpressure model that leverages the TCP flow
//!   control"*, with zero parked threads.
//!
//! The wire format and ack protocol are byte-identical across the two, so
//! a blocking sender can feed a reactor receiver and vice versa.
//!
//! # Ack backchannel
//!
//! TCP links are full duplex, and the fault-tolerance layer uses the
//! reverse direction: when a receiver decodes a data frame carrying the
//! [`FLAG_SEQ`](crate::frame::FLAG_SEQ) extension, it writes a cumulative
//! [`ControlKind::Ack`] control frame back on the same socket after the
//! frame lands on the inbound queue. Heartbeat control frames are answered
//! the same way (and never surface on the data queue), so an idle link
//! still proves liveness end to end. A sender built with
//! [`TcpSender::connect_with_acks`] (or
//! [`TcpSender::connect_reactor_with_acks`]) parses that backchannel and
//! hands `(link_id, cumulative_seq)` to a callback — the hook
//! `neptune-ha`'s replay buffer trims from. Legacy frames without the
//! extension elicit no acks, so pre-existing peers are unaffected.

use crate::frame::{
    encode_control_frame, encode_hello_frame, hello_parts, read_frame, read_frame_pooled,
    ControlKind, Frame, PROTOCOL_VERSION,
};
use crate::pool::BytesPool;
use crate::tcp_reactor::{NetDriver, ReactorReceiver, ReactorSender};
use crate::transport::TransportError;
use crate::watermark::{ShedConfig, WatermarkConfig, WatermarkQueue};
use crossbeam::channel::{bounded, Sender as ChannelSender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Hook run after each data frame lands on the inbound queue; shared
/// between the acceptor and every reader, installable after bind (hence
/// the `RwLock<Option<..>>` indirection).
pub(crate) type DeliverHook = Arc<RwLock<Option<Arc<dyn Fn() + Send + Sync>>>>;

/// Receiver-side admission rule for the [`ControlKind::Hello`] handshake.
///
/// When installed (see [`TcpReceiver::bind_manual_ack`]), a connection's
/// first hello frame is checked against it: a version other than `version`
/// or a capability byte missing any of `required_caps` drops the
/// connection immediately — a mismatched peer fails on connect, before any
/// data frame can be mis-decoded. Connections that never send a hello are
/// still admitted (legacy in-repo clients are byte-compatible); the gate
/// only rejects peers that *announce* an incompatibility.
#[derive(Debug, Clone, Copy)]
pub struct HandshakeGate {
    /// Exact protocol version required ([`PROTOCOL_VERSION`] for this build).
    pub version: u8,
    /// Capability bits the peer must announce (0 = any peer).
    pub required_caps: u8,
}

impl HandshakeGate {
    /// Gate for this build's protocol version with no capability demands.
    pub fn current() -> Self {
        HandshakeGate { version: PROTOCOL_VERSION, required_caps: 0 }
    }

    /// Check an announced `(version, caps)` pair; `Err` holds a
    /// human-readable reason.
    pub fn check(&self, version: u8, caps: u8) -> Result<(), String> {
        if version != self.version {
            return Err(format!(
                "protocol version mismatch: peer announces v{version}, this build speaks v{}",
                self.version
            ));
        }
        if caps & self.required_caps != self.required_caps {
            return Err(format!(
                "capability mismatch: peer caps {caps:#04x} miss required {:#04x}",
                self.required_caps
            ));
        }
        Ok(())
    }
}

/// Per-link ack state on a manual-ack receiver: the socket to write the
/// ack on (re-registered by each new connection carrying the link) and the
/// last watermark the *application* acknowledged — which is also what
/// heartbeats answer with, so a supervised sender's replay buffer is never
/// trimmed past what the application has actually secured.
struct ManualAckLink {
    stream: TcpStream,
    acked: u64,
}

/// State shared by every reader thread of one blocking receiver: ack
/// discipline, handshake gate, and the link→socket registry behind
/// [`TcpReceiver::send_ack`].
struct ReaderPolicy {
    /// When true, data frames are *not* auto-acked after landing on the
    /// queue; the application drives acks via [`TcpReceiver::send_ack`].
    manual_ack: bool,
    handshake: Option<HandshakeGate>,
    handshake_rejects: AtomicU64,
    ack_links: Mutex<HashMap<u64, ManualAckLink>>,
}

impl ReaderPolicy {
    fn auto() -> Arc<Self> {
        Arc::new(ReaderPolicy {
            manual_ack: false,
            handshake: None,
            handshake_rejects: AtomicU64::new(0),
            ack_links: Mutex::new(HashMap::new()),
        })
    }
}

/// Outbound side of a TCP link: a bounded queue drained by one writer IO
/// thread (blocking path) or one IO-pool task (reactor path).
pub struct TcpSender {
    frames: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    acks: Arc<AtomicU64>,
    peer: SocketAddr,
    imp: SenderImpl,
}

enum SenderImpl {
    Blocking {
        tx: Option<ChannelSender<Vec<u8>>>,
        writer: Option<JoinHandle<()>>,
        ack_reader: Option<JoinHandle<()>>,
        /// Clone of the socket held to unblock the ack reader on shutdown.
        ack_stream: Option<TcpStream>,
    },
    Reactor(ReactorSender),
}

impl TcpSender {
    /// Connect to a receiver on the blocking thread-per-connection path.
    /// `queue_depth` bounds the number of in-flight frames between worker
    /// and IO thread (the shared bounded buffer of the two-tier model).
    pub fn connect(addr: impl ToSocketAddrs, queue_depth: usize) -> std::io::Result<Self> {
        Self::connect_inner(addr, queue_depth, None)
    }

    /// Like [`connect`](Self::connect), but also spawns an ack-reader IO
    /// thread that parses the receiver's backchannel and invokes `on_ack`
    /// with `(link_id, cumulative_next_expected_seq)` for every
    /// [`ControlKind::Ack`] frame. Use this for supervised links that
    /// retain unacked frames for replay.
    pub fn connect_with_acks(
        addr: impl ToSocketAddrs,
        queue_depth: usize,
        on_ack: impl Fn(u64, u64) + Send + 'static,
    ) -> std::io::Result<Self> {
        Self::connect_inner(addr, queue_depth, Some(Box::new(on_ack)))
    }

    /// Connect on the readiness-driven path: no per-connection threads;
    /// the write/ack state machine runs as a task on `driver`'s IO pool,
    /// woken by its reactor. Semantics match [`connect`](Self::connect).
    pub fn connect_reactor(
        addr: impl ToSocketAddrs,
        queue_depth: usize,
        driver: &NetDriver,
    ) -> std::io::Result<Self> {
        Self::connect_reactor_inner(addr, queue_depth, driver, None)
    }

    /// Readiness-driven equivalent of
    /// [`connect_with_acks`](Self::connect_with_acks): the ack backchannel
    /// is multiplexed onto the same IO task instead of a second thread.
    pub fn connect_reactor_with_acks(
        addr: impl ToSocketAddrs,
        queue_depth: usize,
        driver: &NetDriver,
        on_ack: impl Fn(u64, u64) + Send + 'static,
    ) -> std::io::Result<Self> {
        Self::connect_reactor_inner(addr, queue_depth, driver, Some(Box::new(on_ack)))
    }

    #[allow(clippy::type_complexity)]
    fn connect_reactor_inner(
        addr: impl ToSocketAddrs,
        queue_depth: usize,
        driver: &NetDriver,
        on_ack: Option<Box<dyn Fn(u64, u64) + Send>>,
    ) -> std::io::Result<Self> {
        assert!(queue_depth > 0, "sender queue depth must be positive");
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let frames = Arc::new(AtomicU64::new(0));
        let bytes = Arc::new(AtomicU64::new(0));
        let acks = Arc::new(AtomicU64::new(0));
        let sender = ReactorSender::spawn(
            stream,
            queue_depth,
            driver,
            on_ack,
            frames.clone(),
            bytes.clone(),
            acks.clone(),
        )?;
        Ok(TcpSender { frames, bytes, acks, peer, imp: SenderImpl::Reactor(sender) })
    }

    #[allow(clippy::type_complexity)]
    fn connect_inner(
        addr: impl ToSocketAddrs,
        queue_depth: usize,
        on_ack: Option<Box<dyn Fn(u64, u64) + Send>>,
    ) -> std::io::Result<Self> {
        assert!(queue_depth > 0, "sender queue depth must be positive");
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let (tx, rx) = bounded::<Vec<u8>>(queue_depth);
        let frames = Arc::new(AtomicU64::new(0));
        let bytes = Arc::new(AtomicU64::new(0));
        let acks = Arc::new(AtomicU64::new(0));

        let (ack_reader, ack_stream) = match on_ack {
            Some(cb) => {
                let mut back = stream.try_clone()?;
                let keep = back.try_clone()?;
                let ack_count = acks.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("neptune-io-ack-{peer}"))
                    .spawn(move || loop {
                        match read_frame(&mut back) {
                            Ok(f) if f.control == Some(ControlKind::Ack) => {
                                ack_count.fetch_add(1, Ordering::Relaxed);
                                cb(f.link_id, f.base_seq);
                            }
                            Ok(_) => continue, // tolerate unknown chatter
                            Err(_) => return,  // peer closed or shutdown
                        }
                    })
                    .expect("spawn tcp ack reader thread");
                (Some(handle), Some(keep))
            }
            None => (None, None),
        };

        let (tf, tb) = (frames.clone(), bytes.clone());
        let writer = std::thread::Builder::new()
            .name(format!("neptune-io-tx-{peer}"))
            .spawn(move || {
                let mut stream = stream;
                while let Ok(wire) = rx.recv() {
                    if stream.write_all(&wire).is_err() {
                        // Connection lost: drain and drop remaining frames.
                        break;
                    }
                    tf.fetch_add(1, Ordering::Relaxed);
                    tb.fetch_add(wire.len() as u64, Ordering::Relaxed);
                }
                let _ = stream.flush();
            })
            .expect("spawn tcp writer thread");
        Ok(TcpSender {
            frames,
            bytes,
            acks,
            peer,
            imp: SenderImpl::Blocking {
                tx: Some(tx),
                writer: Some(writer),
                ack_reader,
                ack_stream,
            },
        })
    }

    /// Queue one encoded wire frame. Blocks when the bounded IO queue is
    /// full (backpressure). Fails once the connection is closed.
    pub fn send(&self, wire: Vec<u8>) -> Result<(), TransportError> {
        match &self.imp {
            SenderImpl::Blocking { tx: Some(tx), .. } => {
                tx.send(wire).map_err(|_| TransportError::Closed)
            }
            SenderImpl::Blocking { tx: None, .. } => Err(TransportError::Closed),
            SenderImpl::Reactor(r) => r.send(wire),
        }
    }

    /// Frames written to the socket so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Bytes written to the socket so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Ack control frames received on the backchannel (always 0 unless
    /// built with an `_with_acks` constructor).
    pub fn acks_received(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    /// Remote address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Flush queued frames and close the connection.
    pub fn close(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        match &mut self.imp {
            SenderImpl::Blocking { tx, writer, ack_reader, ack_stream } => {
                tx.take(); // disconnect the channel; writer drains then exits
                if let Some(w) = writer.take() {
                    let _ = w.join();
                }
                // Unblock the ack reader parked in read_frame, then join it.
                if let Some(s) = ack_stream.take() {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
                if let Some(a) = ack_reader.take() {
                    let _ = a.join();
                }
            }
            SenderImpl::Reactor(r) => r.close(),
        }
    }
}

impl Drop for TcpSender {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Inbound side of TCP links: accepts connections and funnels decoded
/// frames into one shared watermark queue.
pub struct TcpReceiver {
    imp: ReceiverImpl,
}

enum ReceiverImpl {
    Blocking(BlockingReceiver),
    Reactor(ReactorReceiver),
}

struct BlockingReceiver {
    queue: Arc<WatermarkQueue<Frame>>,
    local: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Clones of accepted sockets, kept so `shutdown` can unblock reader
    /// threads that are parked in `read_frame` on a still-open connection.
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    decode_errors: Arc<AtomicU64>,
    on_deliver: DeliverHook,
    policy: Arc<ReaderPolicy>,
}

impl TcpReceiver {
    /// Bind a listener on the blocking thread-per-connection path; frames
    /// from every accepted connection land on one watermark-bounded
    /// inbound queue. Frame bodies come from fresh allocations; see
    /// [`bind_pooled`](Self::bind_pooled) for the recycling variant the
    /// runtime uses.
    pub fn bind(addr: impl ToSocketAddrs, watermark: WatermarkConfig) -> std::io::Result<Self> {
        Self::bind_inner(addr, watermark, ShedConfig::disabled(), None, ReaderPolicy::auto())
    }

    /// Bind on the blocking path with *manual* acknowledgement: data
    /// frames carrying [`FLAG_SEQ`](crate::frame::FLAG_SEQ) are **not**
    /// acked when they land on the inbound queue — the application calls
    /// [`send_ack`](Self::send_ack) once it has actually secured them
    /// (processed, forwarded downstream and had *that* hop acknowledged,
    /// …). Heartbeats are answered with the manually-acked watermark for
    /// the same reason. `neptune-cluster` node ingress uses this so a
    /// killed node's unacked frames stay in the upstream replay buffer.
    ///
    /// `gate`, when set, enforces the [`ControlKind::Hello`] version
    /// handshake on every accepted connection.
    pub fn bind_manual_ack(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        gate: Option<HandshakeGate>,
    ) -> std::io::Result<Self> {
        let policy = Arc::new(ReaderPolicy {
            manual_ack: true,
            handshake: gate,
            handshake_rejects: AtomicU64::new(0),
            ack_links: Mutex::new(HashMap::new()),
        });
        Self::bind_inner(addr, watermark, ShedConfig::disabled(), None, policy)
    }

    /// Like [`bind`](Self::bind), but reader threads draw frame-body
    /// buffers from `pool` — the job-wide [`BytesPool`] — so the
    /// steady-state receive path performs no per-frame allocation. The
    /// consumer returns each frame's batch to the pool when done (see
    /// [`crate::frame::FrameMessages::into_batch`]).
    pub fn bind_pooled(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        pool: Arc<BytesPool>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, watermark, ShedConfig::disabled(), Some(pool), ReaderPolicy::auto())
    }

    /// Like [`bind_pooled`](Self::bind_pooled), with an explicit
    /// [`ShedConfig`] on the inbound queue — the reader degrades per the
    /// policy instead of blocking forever once the gate has been closed
    /// longer than the configured stall.
    pub fn bind_pooled_with_shed(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        shed: ShedConfig,
        pool: Arc<BytesPool>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, watermark, shed, Some(pool), ReaderPolicy::auto())
    }

    /// Bind on the readiness-driven path: no per-connection threads; the
    /// acceptor and every connection run as tasks on `driver`'s IO pool.
    pub fn bind_reactor(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        driver: &NetDriver,
    ) -> std::io::Result<Self> {
        let r = ReactorReceiver::bind(addr, watermark, ShedConfig::disabled(), None, driver)?;
        Ok(TcpReceiver { imp: ReceiverImpl::Reactor(r) })
    }

    /// Readiness-driven equivalent of
    /// [`bind_pooled_with_shed`](Self::bind_pooled_with_shed) — the
    /// constructor the runtime uses when `net_reactor` is enabled.
    pub fn bind_reactor_pooled_with_shed(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        shed: ShedConfig,
        pool: Arc<BytesPool>,
        driver: &NetDriver,
    ) -> std::io::Result<Self> {
        let r = ReactorReceiver::bind(addr, watermark, shed, Some(pool), driver)?;
        Ok(TcpReceiver { imp: ReceiverImpl::Reactor(r) })
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        shed: ShedConfig,
        pool: Option<Arc<BytesPool>>,
        policy: Arc<ReaderPolicy>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(WatermarkQueue::with_shed(watermark, shed));
        let shutdown = Arc::new(AtomicBool::new(false));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accepted: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let decode_errors = Arc::new(AtomicU64::new(0));
        let on_deliver: DeliverHook = Arc::new(RwLock::new(None));

        let acceptor = {
            let queue = queue.clone();
            let shutdown = shutdown.clone();
            let readers = readers.clone();
            let accepted = accepted.clone();
            let decode_errors = decode_errors.clone();
            let on_deliver = on_deliver.clone();
            let policy = policy.clone();
            std::thread::Builder::new()
                .name(format!("neptune-io-accept-{local}"))
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        if let Ok(clone) = stream.try_clone() {
                            accepted.lock().push(clone);
                        }
                        let queue = queue.clone();
                        let shutdown = shutdown.clone();
                        let decode_errors = decode_errors.clone();
                        let on_deliver = on_deliver.clone();
                        let pool = pool.clone();
                        let policy = policy.clone();
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".into());
                        let reader = std::thread::Builder::new()
                            .name(format!("neptune-io-rx-{peer}"))
                            .spawn(move || {
                                reader_loop(
                                    stream,
                                    queue,
                                    shutdown,
                                    decode_errors,
                                    on_deliver,
                                    pool,
                                    policy,
                                )
                            })
                            .expect("spawn tcp reader thread");
                        readers.lock().push(reader);
                    }
                })
                .expect("spawn tcp acceptor thread")
        };

        Ok(TcpReceiver {
            imp: ReceiverImpl::Blocking(BlockingReceiver {
                queue,
                local,
                shutdown,
                acceptor: Some(acceptor),
                readers,
                accepted,
                decode_errors,
                on_deliver,
                policy,
            }),
        })
    }

    /// On a [`bind_manual_ack`](Self::bind_manual_ack) receiver: write a
    /// cumulative ack (`next_expected` message seq) for `link_id` on the
    /// most recent connection that carried the link, and remember the
    /// watermark for heartbeat replies. Returns `false` when the link is
    /// unknown, the socket write fails, or the receiver is not in manual
    /// mode — the caller retries after the peer reconnects and resends.
    pub fn send_ack(&self, link_id: u64, next_expected: u64) -> bool {
        let ReceiverImpl::Blocking(b) = &self.imp else { return false };
        if !b.policy.manual_ack {
            return false;
        }
        let mut links = b.policy.ack_links.lock();
        let Some(entry) = links.get_mut(&link_id) else { return false };
        entry.acked = entry.acked.max(next_expected);
        let wire = encode_control_frame(link_id, ControlKind::Ack, entry.acked);
        (&entry.stream).write_all(&wire).is_ok()
    }

    /// Connections dropped by the [`HandshakeGate`] since bind.
    pub fn handshake_rejects(&self) -> u64 {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.policy.handshake_rejects.load(Ordering::Relaxed),
            ReceiverImpl::Reactor(_) => 0,
        }
    }

    /// The shared inbound queue.
    pub fn queue(&self) -> Arc<WatermarkQueue<Frame>> {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.queue.clone(),
            ReceiverImpl::Reactor(r) => r.queue(),
        }
    }

    /// Bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.local,
            ReceiverImpl::Reactor(r) => r.local_addr(),
        }
    }

    /// Frames that failed CRC or structural validation.
    pub fn decode_errors(&self) -> u64 {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.decode_errors.load(Ordering::Relaxed),
            ReceiverImpl::Reactor(r) => r.decode_errors(),
        }
    }

    /// Connections accepted since bind (cleared at shutdown). Lets tests
    /// and operators confirm connection handlers exist without sleeping.
    pub fn connections(&self) -> usize {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.accepted.lock().len(),
            ReceiverImpl::Reactor(r) => r.connections(),
        }
    }

    /// Currently-open accepted connections (the reactor-path gauge; on
    /// the blocking path this reports connections accepted since bind,
    /// which only ever over-counts).
    pub fn open_connections(&self) -> usize {
        match &self.imp {
            ReceiverImpl::Blocking(b) => b.accepted.lock().len(),
            ReceiverImpl::Reactor(r) => r.open_connections(),
        }
    }

    /// Largest accept burst drained in a single readiness stint (always 0
    /// on the blocking path, which accepts one connection per wake).
    pub fn accept_backlog_peak(&self) -> u64 {
        match &self.imp {
            ReceiverImpl::Blocking(_) => 0,
            ReceiverImpl::Reactor(r) => r.accept_backlog_peak(),
        }
    }

    /// Register a callback fired after each delivered frame (data-driven
    /// scheduling hook).
    pub fn on_deliver<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        match &self.imp {
            ReceiverImpl::Blocking(b) => *b.on_deliver.write() = Some(Arc::new(f)),
            ReceiverImpl::Reactor(r) => r.set_on_deliver(Arc::new(f)),
        }
    }

    /// Fault injection: sever every accepted connection (the listener
    /// stays up so peers can reconnect). Returns how many were cut. Used
    /// by the chaos harness to reproduce seeded link-cut scenarios on
    /// either transport path.
    pub fn chaos_drop_connections(&self) -> usize {
        match &self.imp {
            ReceiverImpl::Blocking(b) => {
                let drained: Vec<TcpStream> = b.accepted.lock().drain(..).collect();
                for s in &drained {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
                drained.len()
            }
            ReceiverImpl::Reactor(r) => r.chaos_drop_connections(),
        }
    }

    /// Stop accepting, close the queue, and release IO resources.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        match &mut self.imp {
            ReceiverImpl::Blocking(b) => b.shutdown_inner(),
            ReceiverImpl::Reactor(r) => r.shutdown(),
        }
    }
}

impl BlockingReceiver {
    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.queue.close();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Unblock reader threads parked in read_frame on live connections.
        for stream in self.accepted.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for r in self.readers.lock().drain(..) {
            let _ = r.join();
        }
    }
}

impl Drop for TcpReceiver {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    queue: Arc<WatermarkQueue<Frame>>,
    shutdown: Arc<AtomicBool>,
    decode_errors: Arc<AtomicU64>,
    on_deliver: DeliverHook,
    pool: Option<Arc<BytesPool>>,
    policy: Arc<ReaderPolicy>,
) {
    // Cumulative next-expected message seq for this connection's acked
    // (FLAG_SEQ-carrying) traffic. Ack replies are best-effort: a failed
    // write means the peer is gone and the next read surfaces it.
    let mut next_expected: Option<u64> = None;
    // Links this connection has registered in the manual-ack registry.
    let mut registered: Vec<u64> = Vec::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let read = match &pool {
            Some(p) => read_frame_pooled(&mut stream, p),
            None => read_frame(&mut stream),
        };
        match read {
            Ok(mut frame) => {
                if let Some(kind) = frame.control {
                    // Control frames never surface on the data queue —
                    // except barriers, which are *in-band*: checkpoint
                    // alignment depends on a barrier staying behind every
                    // data frame flushed before it, so it rides the queue
                    // in arrival order like data. A heartbeat is answered
                    // with the current cumulative ack so an idle link
                    // proves liveness end to end.
                    match kind {
                        ControlKind::Barrier => {}
                        ControlKind::Heartbeat => {
                            let ack = if policy.manual_ack {
                                policy.ack_links.lock().get(&frame.link_id).map_or(0, |l| l.acked)
                            } else {
                                next_expected.unwrap_or(0)
                            };
                            let _ = (&stream).write_all(&encode_control_frame(
                                frame.link_id,
                                ControlKind::Ack,
                                ack,
                            ));
                        }
                        ControlKind::Hello => {
                            // Answer with our own announcement so the peer
                            // can diagnose a mismatch, then gate admission.
                            if let Some(gate) = &policy.handshake {
                                let _ = (&stream).write_all(&encode_hello_frame(
                                    frame.link_id,
                                    gate.version,
                                    0,
                                ));
                                let verdict = match hello_parts(frame.base_seq) {
                                    Some((version, caps)) => gate.check(version, caps),
                                    None => Err("malformed hello value".to_string()),
                                };
                                if let Err(reason) = verdict {
                                    policy.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                                    let peer = stream
                                        .peer_addr()
                                        .map(|a| a.to_string())
                                        .unwrap_or_else(|_| "?".into());
                                    eprintln!(
                                        "neptune-net: rejecting connection from {peer}: {reason}"
                                    );
                                    // Sever the socket itself, not just this
                                    // handle: the acceptor holds a clone (for
                                    // shutdown unblocking), so a plain drop
                                    // would leave the rejected peer hanging
                                    // on a half-open connection.
                                    let _ = stream.shutdown(std::net::Shutdown::Both);
                                    return;
                                }
                            }
                        }
                        ControlKind::Ack => {} // not expected inbound; skip
                    }
                    if kind != ControlKind::Barrier {
                        continue;
                    }
                }
                let seq_end = frame.seq.is_some().then(|| {
                    let end = frame.base_seq + frame.len() as u64;
                    let next = next_expected.map_or(end, |n| n.max(end));
                    next_expected = Some(next);
                    (frame.link_id, next)
                });
                // Manual mode: make the link addressable for application
                // acks before the frame surfaces, so a consumer can never
                // see a frame whose link it cannot ack.
                if policy.manual_ack {
                    if let Some((link_id, _)) = seq_end {
                        if !registered.contains(&link_id) {
                            if let Ok(clone) = stream.try_clone() {
                                let mut links = policy.ack_links.lock();
                                let acked = links.get(&link_id).map_or(0, |l| l.acked);
                                links.insert(link_id, ManualAckLink { stream: clone, acked });
                                registered.push(link_id);
                            }
                        }
                    }
                }
                // Arrival stamp: schedule delay is measured from the moment
                // the frame lands on the queue, not from socket read start.
                frame.received_at = Some(std::time::Instant::now());
                // Blocking here is the flow-control point: a gated queue
                // stops this thread from draining the socket.
                if queue.push_blocking(frame).is_err() {
                    return; // queue closed
                }
                // Ack only after the frame is safely on the inbound queue —
                // a replayed duplicate just re-acks the same watermark. In
                // manual mode the application acks instead, once secured.
                if !policy.manual_ack {
                    if let Some((link_id, next)) = seq_end {
                        let _ = (&stream).write_all(&encode_control_frame(
                            link_id,
                            ControlKind::Ack,
                            next,
                        ));
                    }
                }
                let hook = on_deliver.read().clone();
                if let Some(hook) = hook {
                    hook();
                }
            }
            Err(crate::frame::FrameError::Io(_)) => return, // peer closed
            Err(_) => {
                // Corrupted frame: count it and drop the connection — we
                // cannot resynchronize mid-stream.
                decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, encode_hello_frame, hello_parts, CAPS_ALL, PROTOCOL_VERSION};
    use crate::test_support::wait_for;
    use neptune_compress::SelectiveCompressor;
    use neptune_granules::{IoPool, Reactor};
    use std::time::Duration;

    fn localhost_receiver(high: usize, low: usize) -> TcpReceiver {
        TcpReceiver::bind("127.0.0.1:0", WatermarkConfig::new(high, low)).unwrap()
    }

    /// Pool + reactor owned for one test's lifetime; both shut down on
    /// drop (pool first — field order — so tasks retire while the reactor
    /// still accepts deregistrations).
    struct Rig {
        pool: IoPool,
        reactor: Reactor,
    }

    impl Rig {
        fn new(name: &str) -> Rig {
            Rig { pool: IoPool::new(name, 2), reactor: Reactor::new(name).unwrap() }
        }

        fn driver(&self) -> NetDriver {
            NetDriver::new(self.pool.spawner(), self.reactor.handle())
        }
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let tx = TcpSender::connect(rx.local_addr(), 16).unwrap();
        let raw = SelectiveCompressor::disabled();
        let msgs = vec![b"hello".to_vec(), b"tcp".to_vec()];
        tx.send(encode_frame(3, 10, &msgs, &raw)).unwrap();
        let frame = rx.queue().pop_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(frame.link_id, 3);
        assert_eq!(frame.base_seq, 10);
        assert_eq!(frame.messages, msgs);
        assert_eq!(rx.decode_errors(), 0);
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn many_frames_in_order() {
        let rx = localhost_receiver(1 << 22, 1 << 12);
        let tx = TcpSender::connect(rx.local_addr(), 64).unwrap();
        let raw = SelectiveCompressor::disabled();
        for i in 0..200u64 {
            let msgs = vec![i.to_le_bytes().to_vec()];
            tx.send(encode_frame(1, i, &msgs, &raw)).unwrap();
        }
        let q = rx.queue();
        for i in 0..200u64 {
            let f = q.pop_timeout(Duration::from_secs(5)).expect("frame");
            assert_eq!(f.base_seq, i);
            assert_eq!(f.messages[0], i.to_le_bytes().to_vec());
        }
        // `frames_sent` increments after `write_all` returns, so the last
        // frame can be received before the counter ticks; close() joins the
        // writer and settles the counters.
        let (frames, bytes) = (tx.frames.clone(), tx.bytes.clone());
        tx.close();
        assert_eq!(frames.load(Ordering::Relaxed), 200);
        assert!(bytes.load(Ordering::Relaxed) > 200 * 8);
        rx.shutdown();
    }

    #[test]
    fn compressed_frames_roundtrip_over_tcp() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let tx = TcpSender::connect(rx.local_addr(), 4).unwrap();
        let policy = SelectiveCompressor::new(4.0);
        let msgs: Vec<Vec<u8>> = (0..50).map(|_| vec![9u8; 200]).collect();
        tx.send(encode_frame(2, 0, &msgs, &policy)).unwrap();
        let f = rx.queue().pop_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(f.messages, msgs);
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn gated_receiver_backpressures_sender() {
        // Tiny watermarks + tiny sender queue: with the consumer stalled,
        // the sender must block rather than buffer unboundedly. The frames
        // are large (256 KB) so the total (32 MB) dwarfs what the kernel
        // socket buffers can absorb once the reader stops draining.
        const N_FRAMES: u64 = 128;
        let rx = localhost_receiver(4096, 512);
        let tx = TcpSender::connect(rx.local_addr(), 2).unwrap();
        let raw = SelectiveCompressor::disabled();
        let msgs: Vec<Vec<u8>> = vec![vec![0u8; 256 * 1024]];
        let wire = encode_frame(1, 0, &msgs, &raw);

        let tx = Arc::new(tx);
        let sent = Arc::new(AtomicU64::new(0));
        let producer = {
            let tx = tx.clone();
            let sent = sent.clone();
            let wire = wire.clone();
            std::thread::spawn(move || {
                for _ in 0..N_FRAMES {
                    if tx.send(wire.clone()).is_err() {
                        break;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        // Without backpressure the producer finishes all sends quickly;
        // with the receiver stalled it must still be stuck at the deadline.
        let finished_early =
            wait_for(Duration::from_millis(300), || sent.load(Ordering::Relaxed) == N_FRAMES);
        assert!(
            !finished_early,
            "producer should have been blocked by backpressure, sent {}",
            sent.load(Ordering::Relaxed)
        );
        // Drain the receiver: producer must finish.
        let q = rx.queue();
        let mut received = 0u64;
        while received < N_FRAMES {
            if q.pop_timeout(Duration::from_secs(5)).is_some() {
                received += 1;
            } else {
                panic!("timed out draining; received {received}");
            }
        }
        producer.join().unwrap();
        assert_eq!(sent.load(Ordering::Relaxed), N_FRAMES);
        rx.shutdown();
    }

    #[test]
    fn corrupted_stream_counts_decode_error() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let mut stream = TcpStream::connect(rx.local_addr()).unwrap();
        // A valid header magic but garbage after it.
        let mut junk = crate::frame::MAGIC.to_le_bytes().to_vec();
        junk.extend_from_slice(&[0xFFu8; 64]);
        stream.write_all(&junk).unwrap();
        drop(stream);
        // Wait for the reader to process and drop the connection.
        assert!(wait_for(Duration::from_secs(5), || rx.decode_errors() > 0));
        assert_eq!(rx.decode_errors(), 1);
        rx.shutdown();
    }

    #[test]
    fn sender_close_flushes_pending() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let tx = TcpSender::connect(rx.local_addr(), 64).unwrap();
        let raw = SelectiveCompressor::disabled();
        for i in 0..50u64 {
            tx.send(encode_frame(1, i, &[vec![1u8; 10]], &raw)).unwrap();
        }
        tx.close(); // must block until the writer drained the queue
        let q = rx.queue();
        for _ in 0..50 {
            assert!(q.pop_timeout(Duration::from_secs(5)).is_some());
        }
        rx.shutdown();
    }

    #[test]
    fn multiple_senders_one_receiver() {
        let rx = localhost_receiver(1 << 22, 1 << 12);
        let raw = SelectiveCompressor::disabled();
        let senders: Vec<_> = (0..4u64)
            .map(|link| {
                let addr = rx.local_addr();
                std::thread::spawn(move || {
                    let tx = TcpSender::connect(addr, 16).unwrap();
                    let raw = SelectiveCompressor::disabled();
                    for i in 0..100u64 {
                        tx.send(encode_frame(link, i, &[link.to_le_bytes().to_vec()], &raw))
                            .unwrap();
                    }
                    tx.close();
                })
            })
            .collect();
        let _ = raw;
        let q = rx.queue();
        let mut per_link = [0u64; 4];
        for _ in 0..400 {
            let f = q.pop_timeout(Duration::from_secs(5)).expect("frame");
            // Per-link ordering must hold even with interleaving.
            assert_eq!(f.base_seq, per_link[f.link_id as usize]);
            per_link[f.link_id as usize] += 1;
        }
        for s in senders {
            s.join().unwrap();
        }
        assert_eq!(per_link, [100, 100, 100, 100]);
        rx.shutdown();
    }

    #[test]
    fn pooled_receiver_recycles_body_buffers() {
        let pool = Arc::new(BytesPool::new(16));
        let rx = TcpReceiver::bind_pooled(
            "127.0.0.1:0",
            WatermarkConfig::new(1 << 20, 1 << 10),
            pool.clone(),
        )
        .unwrap();
        let tx = TcpSender::connect(rx.local_addr(), 16).unwrap();
        let raw = SelectiveCompressor::disabled();
        let q = rx.queue();
        for i in 0..50u64 {
            tx.send(encode_frame(1, i, &[i.to_le_bytes().to_vec()], &raw)).unwrap();
            let f = q.pop_timeout(Duration::from_secs(5)).expect("frame");
            assert_eq!(f.messages[0], i.to_le_bytes());
            // Consumer done with the frame: hand the batch back.
            pool.recycle(f.messages.into_batch());
        }
        let stats = pool.stats();
        assert!(stats.hits >= 40, "steady-state receive path must reuse body buffers: {stats:?}");
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn seq_frames_elicit_cumulative_acks() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let acks = Arc::new(Mutex::new(Vec::new()));
        let sink = acks.clone();
        let tx = TcpSender::connect_with_acks(rx.local_addr(), 16, move |link, cum| {
            sink.lock().push((link, cum));
        })
        .unwrap();
        let raw = SelectiveCompressor::disabled();
        // Two messages then one, length-prefixed, with the seq extension.
        let mut batch = Vec::new();
        for m in [b"a".as_slice(), b"b".as_slice()] {
            batch.extend_from_slice(&(m.len() as u32).to_le_bytes());
            batch.extend_from_slice(m);
        }
        tx.send(crate::frame::encode_frame_raw_ext(9, 0, 2, &batch, &raw, 0, Some(0))).unwrap();
        let mut one = (1u32).to_le_bytes().to_vec();
        one.push(b'c');
        tx.send(crate::frame::encode_frame_raw_ext(9, 2, 1, &one, &raw, 0, Some(1))).unwrap();
        let q = rx.queue();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(0));
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(1));
        assert!(wait_for(Duration::from_secs(5), || tx.acks_received() >= 2));
        assert_eq!(*acks.lock(), vec![(9, 2), (9, 3)], "cumulative next-expected seqs");
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn heartbeats_are_acked_and_bypass_the_data_queue() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let acks = Arc::new(Mutex::new(Vec::new()));
        let sink = acks.clone();
        let tx = TcpSender::connect_with_acks(rx.local_addr(), 4, move |link, cum| {
            sink.lock().push((link, cum));
        })
        .unwrap();
        tx.send(encode_control_frame(4, ControlKind::Heartbeat, 0)).unwrap();
        assert!(wait_for(Duration::from_secs(5), || tx.acks_received() >= 1));
        assert_eq!(*acks.lock(), vec![(4, 0)], "idle link acks at watermark 0");
        assert!(
            rx.queue().pop_timeout(Duration::from_millis(50)).is_none(),
            "control frames must not surface as data"
        );
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn manual_ack_receiver_defers_until_application_acks() {
        let rx = TcpReceiver::bind_manual_ack(
            "127.0.0.1:0",
            WatermarkConfig::new(1 << 20, 1 << 10),
            None,
        )
        .unwrap();
        let acks = Arc::new(Mutex::new(Vec::new()));
        let sink = acks.clone();
        let tx = TcpSender::connect_with_acks(rx.local_addr(), 16, move |link, cum| {
            sink.lock().push((link, cum));
        })
        .unwrap();
        let raw = SelectiveCompressor::disabled();
        let mut one = (1u32).to_le_bytes().to_vec();
        one.push(b'a');
        tx.send(crate::frame::encode_frame_raw_ext(9, 0, 1, &one, &raw, 0, Some(0))).unwrap();
        tx.send(crate::frame::encode_frame_raw_ext(9, 1, 1, &one, &raw, 0, Some(1))).unwrap();
        let q = rx.queue();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(0));
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(1));
        // No automatic ack: a heartbeat must answer with watermark 0.
        tx.send(encode_control_frame(9, ControlKind::Heartbeat, 1)).unwrap();
        assert!(wait_for(Duration::from_secs(5), || tx.acks_received() >= 1));
        assert_eq!(*acks.lock(), vec![(9, 0)], "unacked link reports watermark 0");
        // Application secures the frames and acks; the watermark advances.
        assert!(rx.send_ack(9, 2), "link must be registered for manual acks");
        assert!(wait_for(Duration::from_secs(5), || acks.lock().contains(&(9, 2))));
        assert!(!rx.send_ack(77, 1), "unknown link cannot be acked");
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn handshake_gate_rejects_version_mismatch_and_admits_match() {
        let gate = HandshakeGate::current();
        let rx = TcpReceiver::bind_manual_ack(
            "127.0.0.1:0",
            WatermarkConfig::new(1 << 20, 1 << 10),
            Some(gate),
        )
        .unwrap();
        // Mismatched peer: announces a future protocol version.
        let mut bad = TcpStream::connect(rx.local_addr()).unwrap();
        bad.write_all(&encode_hello_frame(1, PROTOCOL_VERSION + 1, 0)).unwrap();
        // The receiver answers with its own hello, then drops us.
        let answer = read_frame(&mut bad).unwrap();
        assert_eq!(answer.control, Some(ControlKind::Hello));
        assert_eq!(hello_parts(answer.base_seq).unwrap().0, PROTOCOL_VERSION);
        assert!(wait_for(Duration::from_secs(5), || rx.handshake_rejects() == 1));
        let mut rest = Vec::new();
        assert_eq!(std::io::Read::read_to_end(&mut bad, &mut rest).unwrap_or(0), 0, "closed");
        // Matching peer: admitted, data flows.
        let tx = TcpSender::connect(rx.local_addr(), 8).unwrap();
        tx.send(encode_hello_frame(1, PROTOCOL_VERSION, 0)).unwrap();
        let raw = SelectiveCompressor::disabled();
        tx.send(encode_frame(1, 0, &[b"ok".to_vec()], &raw)).unwrap();
        let f = rx.queue().pop_timeout(Duration::from_secs(5)).expect("admitted peer delivers");
        assert_eq!(&f.messages[0], b"ok");
        assert_eq!(rx.handshake_rejects(), 1);
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn legacy_auto_ack_receiver_skips_hello_frames() {
        // A hello sent at an un-gated receiver (this repo's default) is
        // skipped like any unknown control chatter — byte compatibility.
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let tx = TcpSender::connect(rx.local_addr(), 8).unwrap();
        tx.send(encode_hello_frame(1, PROTOCOL_VERSION, CAPS_ALL)).unwrap();
        let raw = SelectiveCompressor::disabled();
        tx.send(encode_frame(1, 5, &[b"after".to_vec()], &raw)).unwrap();
        let f = rx.queue().pop_timeout(Duration::from_secs(5)).expect("data after hello");
        assert_eq!(f.base_seq, 5);
        assert!(
            rx.queue().pop_timeout(Duration::from_millis(50)).is_none(),
            "hello must not surface as data"
        );
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn shutdown_unblocks_idle_readers_promptly() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        // Two live connections whose readers are parked in read_frame.
        let tx1 = TcpSender::connect(rx.local_addr(), 4).unwrap();
        let tx2 = TcpSender::connect_with_acks(rx.local_addr(), 4, |_, _| {}).unwrap();
        // Both readers accepted and parked in read_frame.
        assert!(wait_for(Duration::from_secs(5), || rx.connections() == 2));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        std::thread::spawn(move || {
            rx.shutdown();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("receiver shutdown must not hang on blocked readers");
        tx1.close();
        tx2.close();
    }

    #[test]
    fn deliver_hook_fires_per_frame() {
        let rx = localhost_receiver(1 << 20, 1 << 10);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        rx.on_deliver(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let tx = TcpSender::connect(rx.local_addr(), 8).unwrap();
        let raw = SelectiveCompressor::disabled();
        for i in 0..10u64 {
            tx.send(encode_frame(1, i, &[b"x".to_vec()], &raw)).unwrap();
        }
        tx.close();
        let q = rx.queue();
        for _ in 0..10 {
            q.pop_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        rx.shutdown();
    }

    // --- readiness-driven path ---------------------------------------

    #[test]
    fn reactor_frames_cross_a_real_socket() {
        let rig = Rig::new("trx1");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let tx = TcpSender::connect_reactor(rx.local_addr(), 16, &driver).unwrap();
        let raw = SelectiveCompressor::disabled();
        let msgs = vec![b"hello".to_vec(), b"reactor".to_vec()];
        tx.send(encode_frame(3, 10, &msgs, &raw)).unwrap();
        let frame = rx.queue().pop_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(frame.link_id, 3);
        assert_eq!(frame.base_seq, 10);
        assert_eq!(frame.messages, msgs);
        assert!(frame.received_at.is_some(), "reactor path must stamp arrival");
        assert_eq!(rx.decode_errors(), 0);
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn reactor_many_frames_in_order_and_counters_settle() {
        let rig = Rig::new("trx2");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 22, 1 << 12);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let tx = TcpSender::connect_reactor(rx.local_addr(), 64, &driver).unwrap();
        let raw = SelectiveCompressor::disabled();
        for i in 0..200u64 {
            tx.send(encode_frame(1, i, &[i.to_le_bytes().to_vec()], &raw)).unwrap();
        }
        let q = rx.queue();
        for i in 0..200u64 {
            let f = q.pop_timeout(Duration::from_secs(5)).expect("frame");
            assert_eq!(f.base_seq, i, "frames must arrive in order");
        }
        let (frames, bytes) = (tx.frames.clone(), tx.bytes.clone());
        tx.close(); // close() waits for the task to drain
        assert_eq!(frames.load(Ordering::Relaxed), 200);
        assert!(bytes.load(Ordering::Relaxed) > 200 * 8);
        assert!(rig.reactor.stats().events_dispatched > 0, "readiness events must flow");
        rx.shutdown();
    }

    #[test]
    fn blocking_sender_feeds_reactor_receiver_and_vice_versa() {
        // Wire-format compatibility both ways, §II of the migration story.
        let rig = Rig::new("trx3");
        let driver = rig.driver();
        let raw = SelectiveCompressor::disabled();

        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let reactor_rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let blocking_tx = TcpSender::connect(reactor_rx.local_addr(), 8).unwrap();
        blocking_tx.send(encode_frame(1, 7, &[b"b-to-r".to_vec()], &raw)).unwrap();
        let f = reactor_rx.queue().pop_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(f.messages, vec![b"b-to-r".to_vec()]);

        let blocking_rx = localhost_receiver(1 << 20, 1 << 10);
        let reactor_tx = TcpSender::connect_reactor(blocking_rx.local_addr(), 8, &driver).unwrap();
        reactor_tx.send(encode_frame(1, 8, &[b"r-to-b".to_vec()], &raw)).unwrap();
        let f = blocking_rx.queue().pop_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(f.messages, vec![b"r-to-b".to_vec()]);

        blocking_tx.close();
        reactor_tx.close();
        reactor_rx.shutdown();
        blocking_rx.shutdown();
    }

    #[test]
    fn reactor_gated_receiver_backpressures_sender() {
        // Same scenario as the blocking test: a stalled consumer must
        // stall the producer via queue gate + closed TCP window — here
        // with *zero* threads parked on sockets.
        const N_FRAMES: u64 = 128;
        let rig = Rig::new("trx4");
        let driver = rig.driver();
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", WatermarkConfig::new(4096, 512), &driver)
            .unwrap();
        let tx = Arc::new(TcpSender::connect_reactor(rx.local_addr(), 2, &driver).unwrap());
        let raw = SelectiveCompressor::disabled();
        let wire = encode_frame(1, 0, &[vec![0u8; 256 * 1024]], &raw);

        let sent = Arc::new(AtomicU64::new(0));
        let producer = {
            let tx = tx.clone();
            let sent = sent.clone();
            let wire = wire.clone();
            std::thread::spawn(move || {
                for _ in 0..N_FRAMES {
                    if tx.send(wire.clone()).is_err() {
                        break;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let finished_early =
            wait_for(Duration::from_millis(300), || sent.load(Ordering::Relaxed) == N_FRAMES);
        assert!(
            !finished_early,
            "producer should have been blocked by backpressure, sent {}",
            sent.load(Ordering::Relaxed)
        );
        let q = rx.queue();
        let mut received = 0u64;
        while received < N_FRAMES {
            if q.pop_timeout(Duration::from_secs(5)).is_some() {
                received += 1;
            } else {
                panic!("timed out draining; received {received}");
            }
        }
        producer.join().unwrap();
        assert_eq!(sent.load(Ordering::Relaxed), N_FRAMES);
        rx.shutdown();
    }

    #[test]
    fn reactor_sender_close_flushes_pending() {
        let rig = Rig::new("trx5");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let tx = TcpSender::connect_reactor(rx.local_addr(), 64, &driver).unwrap();
        let raw = SelectiveCompressor::disabled();
        for i in 0..50u64 {
            tx.send(encode_frame(1, i, &[vec![1u8; 10]], &raw)).unwrap();
        }
        tx.close(); // must not return until the task drained the queue
        let q = rx.queue();
        for _ in 0..50 {
            assert!(q.pop_timeout(Duration::from_secs(5)).is_some());
        }
        rx.shutdown();
    }

    #[test]
    fn reactor_seq_frames_elicit_cumulative_acks() {
        let rig = Rig::new("trx6");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let acks = Arc::new(Mutex::new(Vec::new()));
        let sink = acks.clone();
        let tx =
            TcpSender::connect_reactor_with_acks(rx.local_addr(), 16, &driver, move |link, cum| {
                sink.lock().push((link, cum));
            })
            .unwrap();
        let raw = SelectiveCompressor::disabled();
        let mut batch = Vec::new();
        for m in [b"a".as_slice(), b"b".as_slice()] {
            batch.extend_from_slice(&(m.len() as u32).to_le_bytes());
            batch.extend_from_slice(m);
        }
        tx.send(crate::frame::encode_frame_raw_ext(9, 0, 2, &batch, &raw, 0, Some(0))).unwrap();
        let mut one = (1u32).to_le_bytes().to_vec();
        one.push(b'c');
        tx.send(crate::frame::encode_frame_raw_ext(9, 2, 1, &one, &raw, 0, Some(1))).unwrap();
        let q = rx.queue();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(0));
        assert_eq!(q.pop_timeout(Duration::from_secs(5)).unwrap().seq, Some(1));
        assert!(wait_for(Duration::from_secs(5), || tx.acks_received() >= 2));
        assert_eq!(*acks.lock(), vec![(9, 2), (9, 3)], "cumulative next-expected seqs");
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn reactor_heartbeats_are_acked_and_bypass_the_data_queue() {
        let rig = Rig::new("trx7");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let acks = Arc::new(Mutex::new(Vec::new()));
        let sink = acks.clone();
        let tx =
            TcpSender::connect_reactor_with_acks(rx.local_addr(), 4, &driver, move |link, cum| {
                sink.lock().push((link, cum));
            })
            .unwrap();
        tx.send(encode_control_frame(4, ControlKind::Heartbeat, 0)).unwrap();
        assert!(wait_for(Duration::from_secs(5), || tx.acks_received() >= 1));
        assert_eq!(*acks.lock(), vec![(4, 0)], "idle link acks at watermark 0");
        assert!(
            rx.queue().pop_timeout(Duration::from_millis(50)).is_none(),
            "control frames must not surface as data"
        );
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn reactor_tracks_connection_gauges() {
        let rig = Rig::new("trx8");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let tx1 = TcpSender::connect_reactor(rx.local_addr(), 4, &driver).unwrap();
        let tx2 = TcpSender::connect_reactor(rx.local_addr(), 4, &driver).unwrap();
        assert!(wait_for(Duration::from_secs(5), || rx.open_connections() == 2));
        assert_eq!(rx.connections(), 2);
        assert!(rx.accept_backlog_peak() >= 1, "accept bursts must be tracked");
        drop(tx1);
        drop(tx2);
        assert!(
            wait_for(Duration::from_secs(5), || rx.open_connections() == 0),
            "closed connections must drain the gauge, at {}",
            rx.open_connections()
        );
        rx.shutdown();
    }

    #[test]
    fn reactor_corrupted_stream_counts_decode_error() {
        let rig = Rig::new("trx9");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let mut stream = TcpStream::connect(rx.local_addr()).unwrap();
        let mut junk = crate::frame::MAGIC.to_le_bytes().to_vec();
        junk.extend_from_slice(&[0xFFu8; 64]);
        stream.write_all(&junk).unwrap();
        drop(stream);
        assert!(wait_for(Duration::from_secs(5), || rx.decode_errors() > 0));
        assert_eq!(rx.decode_errors(), 1);
        rx.shutdown();
    }

    #[test]
    fn reactor_pooled_receiver_recycles_body_buffers() {
        let rig = Rig::new("trx10");
        let driver = rig.driver();
        let pool = Arc::new(BytesPool::new(16));
        let rx = TcpReceiver::bind_reactor_pooled_with_shed(
            "127.0.0.1:0",
            WatermarkConfig::new(1 << 20, 1 << 10),
            ShedConfig::disabled(),
            pool.clone(),
            &driver,
        )
        .unwrap();
        let tx = TcpSender::connect_reactor(rx.local_addr(), 16, &driver).unwrap();
        let raw = SelectiveCompressor::disabled();
        let q = rx.queue();
        for i in 0..50u64 {
            tx.send(encode_frame(1, i, &[i.to_le_bytes().to_vec()], &raw)).unwrap();
            let f = q.pop_timeout(Duration::from_secs(5)).expect("frame");
            assert_eq!(f.messages[0], i.to_le_bytes());
            pool.recycle(f.messages.into_batch());
        }
        let stats = pool.stats();
        assert!(stats.hits >= 40, "steady-state receive path must reuse body buffers: {stats:?}");
        tx.close();
        rx.shutdown();
    }

    #[test]
    fn reactor_chaos_drop_severs_connections_but_keeps_listener() {
        let rig = Rig::new("trx11");
        let driver = rig.driver();
        let wm = WatermarkConfig::new(1 << 20, 1 << 10);
        let rx = TcpReceiver::bind_reactor("127.0.0.1:0", wm, &driver).unwrap();
        let raw = SelectiveCompressor::disabled();
        let tx = TcpSender::connect_reactor(rx.local_addr(), 8, &driver).unwrap();
        tx.send(encode_frame(1, 0, &[b"pre".to_vec()], &raw)).unwrap();
        assert!(rx.queue().pop_timeout(Duration::from_secs(5)).is_some());

        assert_eq!(rx.chaos_drop_connections(), 1);
        // The cut link dies: sends eventually fail as the task observes it.
        assert!(wait_for(Duration::from_secs(5), || {
            tx.send(encode_frame(1, 1, &[b"dead".to_vec()], &raw)).is_err()
        }));
        // The listener survives: a new connection works.
        let tx2 = TcpSender::connect_reactor(rx.local_addr(), 8, &driver).unwrap();
        tx2.send(encode_frame(1, 2, &[b"post".to_vec()], &raw)).unwrap();
        let f = rx.queue().pop_timeout(Duration::from_secs(5)).expect("post-cut frame");
        assert_eq!(f.messages, vec![b"post".to_vec()]);
        tx2.close();
        drop(tx);
        rx.shutdown();
    }
}
