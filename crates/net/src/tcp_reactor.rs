//! Readiness-driven TCP on the IO tier (§I-C, §IV-C).
//!
//! The blocking transport spends 2–4 OS threads per connection (writer,
//! reader, acceptor, ack backchannel), so a job's thread count grows
//! O(connections) — the exact scaling wall the paper's two-tier thread
//! model exists to avoid. This module reimplements both transport ends as
//! cooperative [`IoTask`] state machines multiplexed onto the fixed IO
//! pool, with socket readiness delivered by the `neptune-granules` epoll
//! [`Reactor`](neptune_granules::Reactor):
//!
//! * The **sender task** drains the bounded outbound queue until
//!   `WouldBlock`, then arms a one-shot writable interest and parks. The
//!   ack/heartbeat backchannel is multiplexed onto the same task through
//!   an incremental [`FrameDecoder`], so `neptune-ha`'s
//!   reconnect-with-replay works unchanged over either transport.
//! * The **connection task** reads whatever the kernel has, feeds it
//!   through the incremental decoder, and pushes decoded frames onto the
//!   shared inbound [`WatermarkQueue`]. While the queue is gated the task
//!   does **not** re-arm its read interest — the kernel receive buffer
//!   fills, the TCP window closes, and §III-B4 backpressure propagates to
//!   the sender exactly as on the blocking path, with zero threads parked.
//! * The **accept task** accepts until `WouldBlock` and spawns one
//!   connection task per socket through the pool's [`IoSpawner`]; the
//!   accept burst length is tracked as the accept-backlog-peak gauge.
//!
//! Wire format and ack protocol are byte-identical to the blocking path —
//! the two interoperate freely in both directions, and
//! `RuntimeConfig::net_reactor` flips a whole job between them.

use crate::frame::{encode_control_frame, ControlKind, Frame, FrameDecoder};
use crate::pool::BytesPool;
use crate::tcp::DeliverHook;
use crate::transport::TransportError;
use crate::watermark::{PushError, ShedConfig, WatermarkConfig, WatermarkQueue};
use neptune_granules::{
    IoContext, IoSpawner, IoStatus, IoTask, IoTaskHandle, NetSource, NetWaker, ReactorHandle,
};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a gated connection task re-checks the inbound queue. The
/// gate has no per-connection release callback (listeners cannot be
/// removed, so per-connection listeners would leak under churn); a short
/// timer poll through the IO pool's wheel costs one stint per interval
/// and only while gated.
const GATE_POLL: Duration = Duration::from_millis(1);

/// Read budget per connection-task stint: after this many bytes the task
/// re-queues as Ready so one firehose connection cannot starve its
/// siblings on the same IO thread.
const READ_STINT_BYTES: usize = 256 * 1024;

/// Longest a sender `close()` waits for the task to drain the outbound
/// queue before giving up (a peer that stopped reading could otherwise
/// hang shutdown forever).
const CLOSE_DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything a reactor-path transport endpoint needs from the runtime:
/// a way to spawn IO tasks and a way to register sockets for readiness.
/// Cheap to clone; the runtime hands one to `wiring` when
/// `net_reactor` is enabled.
#[derive(Clone)]
pub struct NetDriver {
    spawner: IoSpawner,
    reactor: ReactorHandle,
}

impl NetDriver {
    /// Bundle a pool's spawner with a reactor's registration handle.
    pub fn new(spawner: IoSpawner, reactor: ReactorHandle) -> Self {
        NetDriver { spawner, reactor }
    }

    /// The reactor handle (for stats snapshots).
    pub fn reactor(&self) -> &ReactorHandle {
        &self.reactor
    }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// Outbound queue shared between producer threads (workers calling
/// `send`) and the sender task on the IO tier.
struct SendQueue {
    frames: VecDeque<Vec<u8>>,
    /// `close()` was called: no new sends; the task completes once drained.
    closed: bool,
    /// The socket died: sends fail immediately, queued frames are dropped.
    dead: bool,
    /// The task exited cleanly after draining a closed queue.
    done: bool,
}

struct SenderShared {
    queue: Mutex<SendQueue>,
    /// Producers wait here when the bounded queue is full.
    not_full: Condvar,
    /// `close()` waits here for the drain to finish.
    drained: Condvar,
    capacity: usize,
    frames: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    acks: Arc<AtomicU64>,
}

impl SenderShared {
    /// Mark the link dead and release everyone blocked on it.
    fn fail(&self) {
        let mut q = self.queue.lock();
        q.dead = true;
        q.frames.clear();
        drop(q);
        self.not_full.notify_all();
        self.drained.notify_all();
    }
}

/// Reactor-path outbound link: the facade `TcpSender` wraps this when the
/// runtime runs with `net_reactor` enabled.
pub(crate) struct ReactorSender {
    shared: Arc<SenderShared>,
    handle: IoTaskHandle,
}

impl ReactorSender {
    /// Take an already-connected stream nonblocking and hand it to a
    /// sender task on the IO pool. `frames`/`bytes`/`acks` are the
    /// facade's counters, shared with the task.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        stream: TcpStream,
        queue_depth: usize,
        driver: &NetDriver,
        on_ack: Option<Box<dyn Fn(u64, u64) + Send>>,
        frames: Arc<AtomicU64>,
        bytes: Arc<AtomicU64>,
        acks: Arc<AtomicU64>,
    ) -> std::io::Result<ReactorSender> {
        stream.set_nonblocking(true)?;
        let shared = Arc::new(SenderShared {
            queue: Mutex::new(SendQueue {
                frames: VecDeque::with_capacity(queue_depth.min(1024)),
                closed: false,
                dead: false,
                done: false,
            }),
            not_full: Condvar::new(),
            drained: Condvar::new(),
            capacity: queue_depth,
            frames,
            bytes,
            acks,
        });
        let waker = NetWaker::new();
        let source = driver.reactor.register(stream.as_raw_fd(), waker.clone())?;
        let task = SenderTask {
            stream,
            source,
            shared: shared.clone(),
            partial: None,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 4096],
            on_ack,
            finished: false,
        };
        let handle = driver
            .spawner
            .spawn_parked(task)
            .ok_or_else(|| std::io::Error::other("IO pool is shut down"))?;
        waker.set(handle.clone());
        // First stint arms the read interest for the ack backchannel.
        handle.wake();
        Ok(ReactorSender { shared, handle })
    }

    /// Queue one encoded wire frame; blocks while the bounded queue is
    /// full (the §IV-C shared bounded buffer), fails once closed or dead.
    pub(crate) fn send(&self, wire: Vec<u8>) -> Result<(), TransportError> {
        let mut q = self.shared.queue.lock();
        loop {
            if q.dead || q.closed {
                return Err(TransportError::Closed);
            }
            if q.frames.len() < self.shared.capacity {
                q.frames.push_back(wire);
                break;
            }
            self.shared.not_full.wait(&mut q);
        }
        drop(q);
        self.handle.wake();
        Ok(())
    }

    /// Stop accepting sends and wait (bounded) for the task to drain.
    pub(crate) fn close(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            if q.closed {
                return;
            }
            q.closed = true;
        }
        self.shared.not_full.notify_all();
        self.handle.wake();
        let deadline = Instant::now() + CLOSE_DRAIN_TIMEOUT;
        let mut q = self.shared.queue.lock();
        while !q.done && !q.dead {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || self.shared.drained.wait_for(&mut q, left).timed_out() {
                break;
            }
        }
    }
}

/// Nonblocking write/ack state machine for one outbound connection.
struct SenderTask {
    stream: TcpStream,
    source: NetSource,
    shared: Arc<SenderShared>,
    /// Frame currently on the wire: `(bytes, offset written so far)`.
    partial: Option<(Vec<u8>, usize)>,
    /// Incremental decoder for the ack/heartbeat backchannel.
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    on_ack: Option<Box<dyn Fn(u64, u64) + Send>>,
    finished: bool,
}

impl SenderTask {
    /// Terminal stint: mark the link dead (or cleanly done), release
    /// blocked producers and closers, drop the registration.
    fn finish(&mut self, clean: bool) -> IoStatus {
        if !self.finished {
            self.finished = true;
            if clean {
                let mut q = self.shared.queue.lock();
                q.done = true;
                drop(q);
                self.shared.drained.notify_all();
            } else {
                self.shared.fail();
            }
            self.source.deregister();
        }
        IoStatus::Complete
    }

    /// Drain the ack backchannel. Returns `false` on a fatal socket
    /// condition (EOF, error, corrupt stream).
    fn read_backchannel(&mut self) -> bool {
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return false, // peer closed
                Ok(n) => {
                    let mut off = 0;
                    while off < n {
                        match self.decoder.feed(&self.read_buf[off..n], None) {
                            Ok((used, frame)) => {
                                off += used;
                                if let Some(f) = frame {
                                    if f.control == Some(ControlKind::Ack) {
                                        if let Some(cb) = &self.on_ack {
                                            self.shared.acks.fetch_add(1, Ordering::Relaxed);
                                            cb(f.link_id, f.base_seq);
                                        }
                                    }
                                    // Tolerate unknown chatter, like the
                                    // blocking ack reader.
                                }
                            }
                            Err(_) => return false,
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
}

impl IoTask for SenderTask {
    fn run(&mut self, ctx: &IoContext) -> IoStatus {
        if ctx.shutting_down() {
            return self.finish(false);
        }
        self.source.take_readiness();
        if !self.read_backchannel() {
            return self.finish(false);
        }
        loop {
            if self.partial.is_none() {
                let mut q = self.shared.queue.lock();
                match q.frames.pop_front() {
                    Some(wire) => {
                        drop(q);
                        self.shared.not_full.notify_one();
                        self.partial = Some((wire, 0));
                    }
                    None => {
                        let closed = q.closed;
                        drop(q);
                        if closed {
                            let _ = self.stream.flush();
                            return self.finish(true);
                        }
                        // Idle: watch the backchannel only.
                        self.source.arm(true, false);
                        return IoStatus::Park;
                    }
                }
            }
            let (wire, off) = self.partial.as_mut().expect("partial frame set above");
            match self.stream.write(&wire[*off..]) {
                Ok(0) => return self.finish(false),
                Ok(n) => {
                    *off += n;
                    if *off == wire.len() {
                        self.shared.frames.fetch_add(1, Ordering::Relaxed);
                        self.shared.bytes.fetch_add(wire.len() as u64, Ordering::Relaxed);
                        self.partial = None;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Kernel send buffer full (remote backpressure):
                    // re-arm for writability, keep the backchannel open.
                    self.source.arm(true, true);
                    return IoStatus::Park;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return self.finish(false),
            }
        }
    }

    fn on_shutdown(&mut self) {
        let _ = self.finish(false);
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// State shared by the accept task, every connection task, and the
/// facade `TcpReceiver`.
struct RecvShared {
    queue: Arc<WatermarkQueue<Frame>>,
    shutdown: AtomicBool,
    decode_errors: AtomicU64,
    on_deliver: DeliverHook,
    /// Currently-open accepted connections (gauge).
    open_connections: AtomicUsize,
    /// Largest accept burst drained in a single readiness stint.
    accept_backlog_peak: AtomicU64,
    /// Clones of accepted sockets: lets `shutdown` (and the chaos
    /// harness) sever live connections, which wakes their tasks via the
    /// reactor's hangup readiness.
    accepted: Mutex<Vec<TcpStream>>,
}

/// Reactor-path inbound endpoint: the facade `TcpReceiver` wraps this
/// when the runtime runs with `net_reactor` enabled.
pub(crate) struct ReactorReceiver {
    shared: Arc<RecvShared>,
    acceptor: IoTaskHandle,
    local: SocketAddr,
}

impl ReactorReceiver {
    pub(crate) fn bind(
        addr: impl ToSocketAddrs,
        watermark: WatermarkConfig,
        shed: ShedConfig,
        pool: Option<Arc<BytesPool>>,
        driver: &NetDriver,
    ) -> std::io::Result<ReactorReceiver> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RecvShared {
            queue: Arc::new(WatermarkQueue::with_shed(watermark, shed)),
            shutdown: AtomicBool::new(false),
            decode_errors: AtomicU64::new(0),
            on_deliver: Arc::new(parking_lot::RwLock::new(None)),
            open_connections: AtomicUsize::new(0),
            accept_backlog_peak: AtomicU64::new(0),
            accepted: Mutex::new(Vec::new()),
        });
        let waker = NetWaker::new();
        let source = driver.reactor.register(listener.as_raw_fd(), waker.clone())?;
        let task =
            AcceptTask { listener, source, shared: shared.clone(), driver: driver.clone(), pool };
        let acceptor = driver
            .spawner
            .spawn_parked(task)
            .ok_or_else(|| std::io::Error::other("IO pool is shut down"))?;
        waker.set(acceptor.clone());
        acceptor.wake();
        Ok(ReactorReceiver { shared, acceptor, local })
    }

    pub(crate) fn queue(&self) -> Arc<WatermarkQueue<Frame>> {
        self.shared.queue.clone()
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local
    }

    pub(crate) fn decode_errors(&self) -> u64 {
        self.shared.decode_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn connections(&self) -> usize {
        self.shared.accepted.lock().len()
    }

    pub(crate) fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::Relaxed)
    }

    pub(crate) fn accept_backlog_peak(&self) -> u64 {
        self.shared.accept_backlog_peak.load(Ordering::Relaxed)
    }

    pub(crate) fn set_on_deliver(&self, f: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.on_deliver.write() = Some(f);
    }

    /// Sever every accepted connection (fault injection): tasks observe
    /// the hangup through the reactor and complete; the acceptor stays up
    /// so peers can reconnect.
    pub(crate) fn chaos_drop_connections(&self) -> usize {
        let drained: Vec<TcpStream> = self.shared.accepted.lock().drain(..).collect();
        let n = drained.len();
        for s in &drained {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        n
    }

    pub(crate) fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.queue.close();
        // The acceptor checks the flag at its next stint; connection
        // tasks are woken by the socket shutdowns below (hangup
        // readiness) or, if gated, by their gate-poll timer.
        self.acceptor.wake();
        for s in self.shared.accepted.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for ReactorReceiver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Nonblocking accept loop: one per listener, spawning a connection task
/// per accepted socket.
struct AcceptTask {
    listener: TcpListener,
    source: NetSource,
    shared: Arc<RecvShared>,
    driver: NetDriver,
    pool: Option<Arc<BytesPool>>,
}

impl AcceptTask {
    /// Register + spawn the connection task for a fresh socket. An error
    /// means the runtime is shutting down (reactor or pool gone).
    fn admit(&self, stream: TcpStream) -> Result<(), ()> {
        if stream.set_nonblocking(true).is_err() {
            return Ok(()); // drop this socket, keep accepting
        }
        let _ = stream.set_nodelay(true);
        let waker = NetWaker::new();
        let Ok(source) = self.driver.reactor.register(stream.as_raw_fd(), waker.clone()) else {
            return Err(());
        };
        if let Ok(clone) = stream.try_clone() {
            self.shared.accepted.lock().push(clone);
        }
        self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
        let task = ConnTask {
            stream,
            source,
            shared: self.shared.clone(),
            pool: self.pool.clone(),
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 16 * 1024],
            pending: VecDeque::new(),
            next_expected: None,
            ack_out: Vec::new(),
            ack_off: 0,
            finished: false,
        };
        match self.driver.spawner.spawn_parked(task) {
            Some(handle) => {
                waker.set(handle.clone());
                handle.wake();
                Ok(())
            }
            None => {
                // Pool shut down; dropping the task closes the socket and
                // deregisters the source.
                self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
                Err(())
            }
        }
    }
}

impl IoTask for AcceptTask {
    fn run(&mut self, ctx: &IoContext) -> IoStatus {
        if ctx.shutting_down() || self.shared.shutdown.load(Ordering::Acquire) {
            return IoStatus::Complete;
        }
        self.source.take_readiness();
        let mut burst = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    burst += 1;
                    if self.admit(stream).is_err() {
                        return IoStatus::Complete;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shared.accept_backlog_peak.fetch_max(burst, Ordering::Relaxed);
                    self.source.arm(true, false);
                    return IoStatus::Park;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion): back
                    // off briefly instead of spinning hot.
                    self.shared.accept_backlog_peak.fetch_max(burst, Ordering::Relaxed);
                    return IoStatus::ParkUntil(Instant::now() + Duration::from_millis(5));
                }
            }
        }
    }
}

/// What draining the decoded-frame stash achieved.
enum Drain {
    /// Everything pending was delivered.
    Delivered,
    /// The inbound queue is gated: stop reading, poll the gate.
    Gated,
    /// The inbound queue is closed: the job is shutting down.
    Closed,
}

/// Nonblocking read/decode/deliver state machine for one accepted
/// connection, including its ack backchannel writes.
struct ConnTask {
    stream: TcpStream,
    source: NetSource,
    shared: Arc<RecvShared>,
    pool: Option<Arc<BytesPool>>,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    /// Frames decoded but not yet on the inbound queue (gate was closed),
    /// each with its pending cumulative ack `(link_id, next_expected)`.
    pending: VecDeque<(Frame, Option<(u64, u64)>)>,
    /// Cumulative next-expected message seq for FLAG_SEQ traffic.
    next_expected: Option<u64>,
    /// Encoded ack/heartbeat replies not yet written: `ack_out[ack_off..]`.
    ack_out: Vec<u8>,
    ack_off: usize,
    finished: bool,
}

impl ConnTask {
    fn finish(&mut self) -> IoStatus {
        if !self.finished {
            self.finished = true;
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.source.deregister();
        }
        IoStatus::Complete
    }

    fn queue_ack(&mut self, link_id: u64, next: u64) {
        self.ack_out.extend_from_slice(&encode_control_frame(link_id, ControlKind::Ack, next));
    }

    /// Write pending ack bytes until done or `WouldBlock`. Ack replies
    /// are best-effort (as on the blocking path): a failed write means
    /// the peer is gone and the next read surfaces it.
    fn flush_acks(&mut self) {
        while self.ack_off < self.ack_out.len() {
            match self.stream.write(&self.ack_out[self.ack_off..]) {
                Ok(0) => break,
                Ok(n) => self.ack_off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => break,
            }
        }
        self.ack_out.clear();
        self.ack_off = 0;
    }

    fn acks_pending(&self) -> bool {
        self.ack_off < self.ack_out.len()
    }

    /// Push stashed frames onto the inbound queue without blocking. While
    /// the gate is closed (and the queue does not shed) nothing is
    /// pushed and nothing is read — the backpressure lever.
    fn drain_pending(&mut self) -> Drain {
        while let Some((frame, ack)) = self.pending.pop_front() {
            // A lossless queue that is gated cannot accept the frame;
            // don't burn a push (and a gate event) per poll tick. A
            // shedding queue must see the push so its stall clock and
            // policy apply.
            if self.shared.queue.is_gated() && !self.shared.queue.sheds() {
                self.pending.push_front((frame, ack));
                return Drain::Gated;
            }
            match self.shared.queue.push_timeout(frame, Duration::ZERO) {
                Ok(_) => {
                    // Ack only after the frame landed (or was shed after
                    // the policy's stall) — a replayed duplicate just
                    // re-acks the same watermark.
                    if let Some((link_id, next)) = ack {
                        self.queue_ack(link_id, next);
                    }
                    let hook = self.shared.on_deliver.read().clone();
                    if let Some(hook) = hook {
                        hook();
                    }
                }
                Err(PushError::Gated(frame)) => {
                    self.pending.push_front((frame, ack));
                    return Drain::Gated;
                }
                Err(PushError::Closed(_)) => return Drain::Closed,
            }
        }
        Drain::Delivered
    }

    /// Run `n` freshly-read bytes through the incremental decoder,
    /// stashing completed frames. Returns `false` on a corrupt stream.
    fn decode(&mut self, n: usize) -> bool {
        let mut off = 0;
        while off < n {
            let fed = self.decoder.feed(&self.read_buf[off..n], self.pool.as_deref());
            match fed {
                Ok((used, frame)) => {
                    off += used;
                    let Some(mut frame) = frame else { continue };
                    if let Some(kind) = frame.control {
                        // Control frames never surface on the data queue —
                        // except barriers, which ride it in arrival order
                        // (checkpoint alignment depends on a barrier
                        // staying behind data flushed before it). A
                        // heartbeat is answered with the cumulative ack so
                        // an idle link proves liveness end to end.
                        if kind != ControlKind::Barrier {
                            if kind == ControlKind::Heartbeat {
                                let ack = self.next_expected.unwrap_or(0);
                                self.queue_ack(frame.link_id, ack);
                            }
                            continue;
                        }
                    }
                    let ack_after = frame.seq.is_some().then(|| {
                        let end = frame.base_seq + frame.len() as u64;
                        let next = self.next_expected.map_or(end, |n| n.max(end));
                        self.next_expected = Some(next);
                        (frame.link_id, next)
                    });
                    frame.received_at = Some(Instant::now());
                    self.pending.push_back((frame, ack_after));
                }
                Err(_) => return false,
            }
        }
        true
    }
}

impl IoTask for ConnTask {
    fn run(&mut self, ctx: &IoContext) -> IoStatus {
        if ctx.shutting_down() || self.shared.shutdown.load(Ordering::Acquire) {
            return self.finish();
        }
        self.source.take_readiness();
        self.flush_acks();
        match self.drain_pending() {
            Drain::Gated => return IoStatus::ParkUntil(Instant::now() + GATE_POLL),
            Drain::Closed => return self.finish(),
            Drain::Delivered => {}
        }
        let mut budget = READ_STINT_BYTES;
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return self.finish(), // peer closed
                Ok(n) => {
                    if !self.decode(n) {
                        // Corrupted frame: count it and drop the
                        // connection — no resync mid-stream.
                        self.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                        return self.finish();
                    }
                    match self.drain_pending() {
                        Drain::Gated => {
                            // Deliberately NOT re-arming the read
                            // interest: the kernel buffer fills and the
                            // TCP window closes (§III-B4).
                            return IoStatus::ParkUntil(Instant::now() + GATE_POLL);
                        }
                        Drain::Closed => return self.finish(),
                        Drain::Delivered => {}
                    }
                    self.flush_acks();
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        // Fairness: yield the IO thread, come right back.
                        return IoStatus::Ready;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.source.arm(true, self.acks_pending());
                    return IoStatus::Park;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return self.finish(),
            }
        }
    }

    fn on_shutdown(&mut self) {
        let _ = self.finish();
    }
}
