//! Deadline-polling helpers for tests.
//!
//! Synchronizing a test with a background thread via a bare
//! `thread::sleep(fixed)` is a race with the scheduler: too short and the
//! test flakes under load, too long and the suite crawls. These helpers
//! poll a predicate up to a deadline instead — the test proceeds the moment
//! the condition holds and only fails after the (generous) deadline, so the
//! timeout can be sized for the worst CI machine without slowing the common
//! case.

use std::time::{Duration, Instant};

/// Poll `pred` until it returns true or `deadline` passes. Returns the
/// final verdict of `pred`, so `assert!(wait_until(..))` reads naturally.
pub fn wait_until(deadline: Instant, mut pred: impl FnMut() -> bool) -> bool {
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= deadline {
            return pred();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// [`wait_until`] with a relative timeout.
pub fn wait_for(timeout: Duration, pred: impl FnMut() -> bool) -> bool {
    wait_until(Instant::now() + timeout, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn returns_immediately_once_predicate_holds() {
        let t0 = Instant::now();
        assert!(wait_for(Duration::from_secs(10), || true));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn times_out_when_predicate_never_holds() {
        let t0 = Instant::now();
        assert!(!wait_for(Duration::from_millis(5), || false));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn observes_condition_set_by_another_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f = flag.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            f.store(true, Ordering::Release);
        });
        assert!(wait_for(Duration::from_secs(5), || flag.load(Ordering::Acquire)));
        t.join().unwrap();
    }
}
