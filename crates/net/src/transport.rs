//! Transport abstraction: how a flushed batch travels from a link's output
//! buffer to the downstream operator's inbound watermark queue.
//!
//! Two implementations exist:
//!
//! * [`InProcessTransport`] — both operator instances live in the same
//!   Granules resource; the batch buffer is handed over as a decoded
//!   [`Frame`] with no wire encoding, no compression, and **no copy**: the
//!   refcounted `Bytes` batch the output buffer flushed is the same storage
//!   the receiving task reads messages from. Backpressure still applies:
//!   the push blocks on the destination watermark queue.
//! * [`crate::tcp`] — operator instances on different resources; the batch
//!   is encoded with [`crate::frame::encode_frame_raw`] and carried over a
//!   TCP connection by dedicated IO threads.
//!
//! Both are *blocking under backpressure*, which is what lets the
//! watermark gating propagate upstream (§III-B4): a worker thread that
//! cannot hand off a batch simply does not return from `send_batch`, and
//! the stream processor that produced the batch is not rescheduled —
//! *"The stream processors are not scheduled again until these write
//! operations are successful."*

use crate::frame::{Frame, FrameMessages, FRAME_HEADER_LEN};
use crate::watermark::WatermarkQueue;
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from handing a batch to a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination (queue or connection) has been closed.
    Closed,
    /// The destination refused the batch because its watermark gate is
    /// closed (backpressure) — retry later; this is not a shutdown.
    Backpressure,
    /// The batch could not be encoded/decoded.
    Malformed(String),
    /// Socket-level failure.
    Io(String),
}

impl TransportError {
    /// Map a watermark-queue push failure onto the transport error space,
    /// preserving the closed-vs-gated distinction.
    pub fn from_push<T>(err: crate::watermark::PushError<T>) -> Self {
        match err {
            crate::watermark::PushError::Closed(_) => TransportError::Closed,
            crate::watermark::PushError::Gated(_) => TransportError::Backpressure,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Backpressure => write!(f, "transport gated (backpressure)"),
            TransportError::Malformed(m) => write!(f, "malformed batch: {m}"),
            TransportError::Io(m) => write!(f, "transport io error: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Anything that can carry a flushed batch toward a downstream instance.
pub trait BatchSink: Send + Sync {
    /// Deliver a batch. `encoded` is the output buffer's length-prefixed
    /// concatenation, passed by refcounted handle so the in-process path
    /// shares the storage instead of copying it; `count` the number of
    /// messages; `base_seq` the sequence number of the first;
    /// `sent_at_micros` the sender's wall clock at flush time (`0` when
    /// telemetry is disabled). Blocks under backpressure.
    fn send_batch(
        &self,
        link_id: u64,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
    ) -> Result<(), TransportError>;

    /// [`BatchSink::send_batch`] plus a causal trace id for the sampled
    /// per-packet tracing path (ISSUE 7). The default drops the id so
    /// sinks that predate tracing keep working; trace-aware sinks carry
    /// it to the delivered frame (`FLAG_TRACE` on the wire).
    fn send_batch_traced(
        &self,
        link_id: u64,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
        _trace: Option<u64>,
    ) -> Result<(), TransportError> {
        self.send_batch(link_id, base_seq, encoded, count, sent_at_micros)
    }

    /// Frames handed to this sink so far.
    fn frames_sent(&self) -> u64;

    /// Wire-equivalent bytes handed to this sink so far.
    fn bytes_sent(&self) -> u64;
}

type DeliverHook = Arc<dyn Fn() + Send + Sync>;

/// Same-resource transport: batches land directly on the destination
/// watermark queue as decoded frames sharing the sender's batch buffer.
pub struct InProcessTransport {
    queue: Arc<WatermarkQueue<Frame>>,
    on_deliver: RwLock<Option<DeliverHook>>,
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl InProcessTransport {
    /// Wrap a destination queue.
    pub fn new(queue: Arc<WatermarkQueue<Frame>>) -> Self {
        InProcessTransport {
            queue,
            on_deliver: RwLock::new(None),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Register a callback invoked after every delivered frame (wired to
    /// the destination task's data-driven signal).
    pub fn on_deliver<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        *self.on_deliver.write() = Some(Arc::new(f));
    }

    /// The destination queue.
    pub fn queue(&self) -> &Arc<WatermarkQueue<Frame>> {
        &self.queue
    }
}

impl BatchSink for InProcessTransport {
    fn send_batch(
        &self,
        link_id: u64,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
    ) -> Result<(), TransportError> {
        self.send_batch_traced(link_id, base_seq, encoded, count, sent_at_micros, None)
    }

    fn send_batch_traced(
        &self,
        link_id: u64,
        base_seq: u64,
        encoded: Bytes,
        count: u32,
        sent_at_micros: u64,
        trace: Option<u64>,
    ) -> Result<(), TransportError> {
        // Wire-equivalent accounting: header + compression tag + body.
        let wire_len = FRAME_HEADER_LEN + encoded.len() + 1;
        // Zero-copy split: the frame's messages are ranges into `encoded`.
        let messages = FrameMessages::parse_prefixed(encoded, Some(count))
            .map_err(TransportError::Malformed)?;
        let frame = Frame {
            link_id,
            base_seq,
            messages,
            wire_len,
            sent_at_micros,
            received_at: Some(std::time::Instant::now()),
            seq: None,
            control: None,
            trace,
        };
        let outcome = self.queue.push_blocking(frame).map_err(TransportError::from_push)?;
        if !outcome.accepted() {
            // The queue's armed ShedPolicy dropped the incoming frame to
            // bound latency; it was never enqueued, so nothing was "sent"
            // and there is no delivery to signal.
            return Ok(());
        }
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(wire_len as u64, Ordering::Relaxed);
        let hook = self.on_deliver.read().clone();
        if let Some(hook) = hook {
            hook();
        }
        Ok(())
    }

    fn frames_sent(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::WatermarkConfig;
    use std::sync::atomic::AtomicU64;

    fn encode(msgs: &[&[u8]]) -> (Bytes, u32) {
        let mut out = Vec::new();
        for m in msgs {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m);
        }
        (Bytes::from(out), msgs.len() as u32)
    }

    #[test]
    fn delivers_frames_in_order() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let t = InProcessTransport::new(q.clone());
        let (e1, c1) = encode(&[b"a", b"b"]);
        let (e2, c2) = encode(&[b"c"]);
        t.send_batch(7, 0, e1, c1, 0).unwrap();
        t.send_batch(7, 2, e2, c2, 0).unwrap();
        let f1 = q.pop().unwrap();
        assert_eq!(f1.base_seq, 0);
        assert_eq!(f1.messages, vec![b"a".to_vec(), b"b".to_vec()]);
        let f2 = q.pop().unwrap();
        assert_eq!(f2.base_seq, 2);
        assert_eq!(t.frames_sent(), 2);
        assert!(t.bytes_sent() > 0);
    }

    #[test]
    fn delivered_frame_shares_the_batch_buffer() {
        // The whole point of the in-process path: no copy on handover.
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let t = InProcessTransport::new(q.clone());
        let (e, c) = encode(&[b"shared"]);
        let batch_ptr = e.as_ptr() as usize;
        t.send_batch(1, 0, e, c, 0).unwrap();
        let f = q.pop().unwrap();
        let range = batch_ptr..batch_ptr + f.messages.batch().len();
        assert!(
            range.contains(&(f.messages[0].as_ptr() as usize)),
            "message must alias the sender's batch buffer"
        );
    }

    #[test]
    fn deliver_hook_fires() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let t = InProcessTransport::new(q);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        t.on_deliver(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let (e, c) = encode(&[b"x"]);
        t.send_batch(1, 0, e.clone(), c, 0).unwrap();
        t.send_batch(1, 1, e, c, 0).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn count_mismatch_rejected() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let t = InProcessTransport::new(q);
        let (e, _) = encode(&[b"x", b"y"]);
        assert!(matches!(t.send_batch(1, 0, e, 3, 0), Err(TransportError::Malformed(_))));
    }

    #[test]
    fn closed_queue_surfaces_as_closed() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let t = InProcessTransport::new(q.clone());
        q.close();
        let (e, c) = encode(&[b"x"]);
        assert_eq!(t.send_batch(1, 0, e, c, 0), Err(TransportError::Closed));
    }

    #[test]
    fn blocks_under_backpressure_until_drained() {
        let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(64, 8)));
        let t = Arc::new(InProcessTransport::new(q.clone()));
        let (e, c) = encode(&[&[0u8; 60]]);
        t.send_batch(1, 0, e.clone(), c, 0).unwrap(); // gates the queue
        assert!(q.is_gated());
        let t2 = t.clone();
        let e2 = e.clone();
        let sender = std::thread::spawn(move || t2.send_batch(1, 1, e2, c, 0));
        assert!(crate::test_support::wait_for(std::time::Duration::from_secs(5), || {
            q.gate_events() == 1
        }));
        assert_eq!(q.total_pushed(), 1, "second send must be blocked");
        q.pop().unwrap();
        sender.join().unwrap().unwrap();
        assert_eq!(q.total_pushed(), 2);
    }
}
