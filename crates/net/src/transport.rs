//! The transport error vocabulary shared by every link flavour.
//!
//! The transports themselves live in the `neptune-link` crate (in-process
//! queue handover, blocking TCP, reactor TCP, chaos-injected), composed
//! under optional reliability and flush-policy layers. What stays here is
//! the error space they all map into — in particular the closed-vs-gated
//! distinction [`TransportError::from_push`] preserves, which shedding
//! and containment depend on: `Closed` means the destination is gone for
//! good, `Backpressure` means the watermark gate is shut and the send
//! should park or shed (§III-B4), never abort.

/// Errors from handing a batch to a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination (queue or connection) has been closed.
    Closed,
    /// The destination refused the batch because its watermark gate is
    /// closed (backpressure) — retry later; this is not a shutdown.
    Backpressure,
    /// The batch could not be encoded/decoded.
    Malformed(String),
    /// Socket-level failure.
    Io(String),
}

impl TransportError {
    /// Map a watermark-queue push failure onto the transport error space,
    /// preserving the closed-vs-gated distinction.
    pub fn from_push<T>(err: crate::watermark::PushError<T>) -> Self {
        match err {
            crate::watermark::PushError::Closed(_) => TransportError::Closed,
            crate::watermark::PushError::Gated(_) => TransportError::Backpressure,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Backpressure => write!(f, "transport gated (backpressure)"),
            TransportError::Malformed(m) => write!(f, "malformed batch: {m}"),
            TransportError::Io(m) => write!(f, "transport io error: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::PushError;

    #[test]
    fn push_errors_keep_the_closed_vs_gated_distinction() {
        assert_eq!(TransportError::from_push(PushError::Closed(7u8)), TransportError::Closed);
        assert_eq!(TransportError::from_push(PushError::Gated(7u8)), TransportError::Backpressure);
    }
}
