//! Watermark-bounded inbound buffers — the heart of NEPTUNE's backpressure
//! (§III-B4 of the paper).
//!
//! *"For each inbound buffer of a stream processor, we maintain high and
//! low watermarks. Once the buffer is filled up to the high watermark, the
//! IO worker threads are not allowed to write to the buffer unless the
//! buffer contents are consumed by the worker threads and the buffer usage
//! reaches the low watermark level."*
//!
//! [`WatermarkQueue`] implements exactly that hysteresis: a byte-weighted
//! queue where producers block at the *high* watermark and stay blocked
//! until consumers drain it to the *low* watermark. The gap between the two
//! prevents the system from *"oscillating between the two states rapidly"*.
//! On the TCP transport a blocked reader thread stops draining its socket,
//! the kernel receive buffer fills, the TCP window closes, and the
//! sender's writes stall — propagating pressure upstream hop by hop, which
//! is what Fig. 4 of the paper demonstrates end to end.

//!
//! The IO tier subscribes to the *release* edge of that hysteresis:
//! [`WatermarkQueue::add_gate_listener`] registers a callback fired when
//! the gate opens (or the queue closes), which is how parked source-pump
//! tasks are woken by capacity events instead of polling the gate.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Items stored in a watermark queue report their size in bytes, because
/// watermarks bound *memory*, not message counts.
pub trait Weighted {
    /// Size of this item for watermark accounting, in bytes.
    fn weight(&self) -> usize;
}

impl Weighted for Vec<u8> {
    fn weight(&self) -> usize {
        self.len()
    }
}

impl Weighted for crate::frame::Frame {
    fn weight(&self) -> usize {
        self.wire_len
    }
}

/// High/low watermark configuration, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkConfig {
    /// Producers block once buffered bytes reach this level.
    pub high: usize,
    /// Blocked producers resume once buffered bytes drain to this level.
    pub low: usize,
}

impl WatermarkConfig {
    /// Validated constructor: `0 <= low < high`.
    pub fn new(high: usize, low: usize) -> Self {
        assert!(high > 0, "high watermark must be positive");
        assert!(low < high, "low watermark ({low}) must be below high ({high})");
        WatermarkConfig { high, low }
    }

    /// The paper's guidance: watermarks "set sufficiently apart" — default
    /// low is half of high.
    pub fn with_high(high: usize) -> Self {
        Self::new(high, high / 2)
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    level: usize,
    /// True between hitting the high watermark and draining to the low one.
    gated: bool,
    closed: bool,
    /// Set when the gate opened under the lock; the public entry points
    /// fire the listeners *after* releasing it (listeners may take other
    /// locks, e.g. an IO pool's ready queue).
    release_pending: bool,
}

/// Byte-weighted MPMC queue with high/low watermark flow control.
pub struct WatermarkQueue<T: Weighted> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    config: WatermarkConfig,
    pushed: AtomicU64,
    popped: AtomicU64,
    /// Number of times a producer had to block at the high watermark.
    gate_events: AtomicU64,
    /// Callbacks fired when the gate opens or the queue closes.
    gate_listeners: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl<T: Weighted> WatermarkQueue<T> {
    /// New queue with the given watermark configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        WatermarkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                level: 0,
                gated: false,
                closed: false,
                release_pending: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            config,
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            gate_events: AtomicU64::new(0),
            gate_listeners: Mutex::new(Vec::new()),
        }
    }

    /// Register a callback fired whenever the gate opens (drain reached the
    /// low watermark) or the queue closes. This is the capacity-event hook
    /// the IO tier uses to wake parked producers; callbacks must be cheap
    /// and must not re-enter the queue.
    pub fn add_gate_listener(&self, f: impl Fn() + Send + Sync + 'static) {
        self.gate_listeners.lock().push(Arc::new(f));
    }

    fn fire_gate_listeners(&self) {
        let listeners: Vec<_> = self.gate_listeners.lock().clone();
        for l in listeners {
            l();
        }
    }

    /// The configured watermarks.
    pub fn config(&self) -> WatermarkConfig {
        self.config
    }

    /// Bytes currently buffered.
    pub fn level(&self) -> usize {
        self.state.lock().level
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }

    /// True while producers are gated (between high and low watermark).
    pub fn is_gated(&self) -> bool {
        self.state.lock().gated
    }

    /// Items pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Items popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }

    /// How many times a producer blocked at the high watermark.
    pub fn gate_events(&self) -> u64 {
        self.gate_events.load(Ordering::Relaxed)
    }

    /// Push, blocking while the queue is gated. Returns `Err(item)` if the
    /// queue was closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock();
        if st.gated && !st.closed {
            self.gate_events.fetch_add(1, Ordering::Relaxed);
            while st.gated && !st.closed {
                self.not_full.wait(&mut st);
            }
        }
        if st.closed {
            return Err(item);
        }
        self.finish_push(&mut st, item);
        Ok(())
    }

    /// Non-blocking push. `Err(item)` when gated or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock();
        if st.gated || st.closed {
            return Err(item);
        }
        self.finish_push(&mut st, item);
        Ok(())
    }

    fn finish_push(&self, st: &mut QueueState<T>, item: T) {
        st.level += item.weight();
        st.items.push_back(item);
        if st.level >= self.config.high {
            st.gated = true;
        }
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.not_empty.notify_one();
    }

    /// Pop one item without blocking.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        let item = self.finish_pop(&mut st);
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        item
    }

    /// Pop one item, blocking up to `timeout`. `None` on timeout or close.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = self.state.lock();
        if st.items.is_empty() && !st.closed {
            self.not_empty.wait_for(&mut st, timeout);
        }
        let item = self.finish_pop(&mut st);
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        item
    }

    /// Pop up to `max` items into `out`; returns how many were popped.
    /// This is the batch-drain the worker threads use: one lock
    /// acquisition per scheduled execution, not per packet.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut st = self.state.lock();
        let mut n = 0;
        while n < max {
            match self.finish_pop(&mut st) {
                Some(item) => {
                    out.push(item);
                    n += 1;
                }
                None => break,
            }
        }
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        n
    }

    fn finish_pop(&self, st: &mut QueueState<T>) -> Option<T> {
        let item = st.items.pop_front()?;
        st.level -= item.weight();
        self.popped.fetch_add(1, Ordering::Relaxed);
        if st.gated && st.level <= self.config.low {
            st.gated = false;
            st.release_pending = true;
            self.not_full.notify_all();
        }
        Some(item)
    }

    /// Close the queue: blocked producers fail, consumers drain the rest.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
        drop(st);
        // Close is a capacity event too: parked producers must wake to
        // observe the closure instead of waiting on a gate that will never
        // open.
        self.fire_gate_listeners();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::wait_for;
    use std::time::Instant;

    fn item(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn config_validation() {
        let c = WatermarkConfig::new(100, 50);
        assert_eq!(c.high, 100);
        assert_eq!(c.low, 50);
        let d = WatermarkConfig::with_high(1000);
        assert_eq!(d.low, 500);
    }

    #[test]
    #[should_panic(expected = "below high")]
    fn low_must_be_below_high() {
        WatermarkConfig::new(100, 100);
    }

    #[test]
    fn fifo_order_preserved() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1 << 20, 0));
        for i in 0..10u8 {
            q.push_blocking(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(q.pop().unwrap(), vec![i]);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn gates_at_high_watermark() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 40));
        q.push_blocking(item(60)).unwrap();
        assert!(!q.is_gated());
        q.push_blocking(item(60)).unwrap(); // level 120 >= 100
        assert!(q.is_gated());
        assert!(q.try_push(item(1)).is_err());
    }

    #[test]
    fn hysteresis_releases_at_low_not_below_high() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 40));
        q.push_blocking(item(50)).unwrap();
        q.push_blocking(item(50)).unwrap(); // gated at 100
        assert!(q.is_gated());
        q.pop().unwrap(); // level 50: still above low -> still gated
        assert!(q.is_gated(), "must stay gated until low watermark");
        q.pop().unwrap(); // level 0 <= 40 -> released
        assert!(!q.is_gated());
        assert!(q.try_push(item(1)).is_ok());
    }

    #[test]
    fn blocked_producer_resumes_after_drain() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 10)));
        q.push_blocking(item(100)).unwrap(); // gated
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push_blocking(item(10)).unwrap());
        // The gate-event counter ticks before the producer blocks, so once
        // it reads 1 the push is provably parked at the gate.
        assert!(wait_for(Duration::from_secs(5), || q.gate_events() == 1));
        assert_eq!(q.len(), 1, "producer must still be blocked");
        q.pop().unwrap(); // drains to 0 <= low, releases producer
        producer.join().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.gate_events(), 1);
    }

    #[test]
    fn pop_timeout_returns_none_when_idle() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 10));
        let t0 = Instant::now();
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 10)));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(5));
        q.push_blocking(item(3)).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.unwrap().len(), 3);
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1 << 20, 0));
        for _ in 0..10 {
            q.push_blocking(item(4)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(6, &mut out), 6);
        assert_eq!(out.len(), 6);
        assert_eq!(q.pop_batch(100, &mut out), 4);
        assert_eq!(q.pop_batch(1, &mut out), 0);
    }

    #[test]
    fn close_fails_blocked_producers_and_drains_consumers() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(10, 1)));
        q.push_blocking(item(10)).unwrap(); // gated
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push_blocking(item(1)));
        assert!(wait_for(Duration::from_secs(5), || q.gate_events() == 1));
        q.close();
        assert!(producer.join().unwrap().is_err(), "blocked producer must fail on close");
        // Remaining items still drain.
        assert_eq!(q.pop().unwrap().len(), 10);
        assert!(q.pop().is_none());
        assert!(q.push_blocking(item(1)).is_err());
    }

    #[test]
    fn gate_listener_fires_on_release_and_close() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 40)));
        let events = Arc::new(AtomicU64::new(0));
        let e = events.clone();
        q.add_gate_listener(move || {
            e.fetch_add(1, Ordering::Relaxed);
        });
        q.push_blocking(item(120)).unwrap();
        assert!(q.is_gated());
        assert_eq!(events.load(Ordering::Relaxed), 0, "no event while gated");
        q.pop().unwrap(); // level 0 <= low: gate opens
        assert_eq!(events.load(Ordering::Relaxed), 1, "release edge must fire");
        q.push_blocking(item(10)).unwrap();
        q.pop().unwrap(); // never gated: no edge
        assert_eq!(events.load(Ordering::Relaxed), 1);
        q.close();
        assert_eq!(events.load(Ordering::Relaxed), 2, "close is a capacity event");
    }

    #[test]
    fn counters_track_traffic() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1000, 100));
        for _ in 0..5 {
            q.push_blocking(item(10)).unwrap();
        }
        q.pop().unwrap();
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.level(), 40);
    }

    #[test]
    fn stress_producers_and_consumers_no_loss() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(4096, 1024)));
        const PER_PRODUCER: usize = 2000;
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER_PRODUCER {
                        q.push_blocking(item(16)).unwrap();
                    }
                })
            })
            .collect();
        let consumed = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if consumed.load(Ordering::Relaxed) == (4 * PER_PRODUCER) as u64 {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(q.total_pushed(), (4 * PER_PRODUCER) as u64);
        assert_eq!(q.total_popped(), (4 * PER_PRODUCER) as u64);
        assert_eq!(q.level(), 0);
    }
}
