//! Watermark-bounded inbound buffers — the heart of NEPTUNE's backpressure
//! (§III-B4 of the paper).
//!
//! *"For each inbound buffer of a stream processor, we maintain high and
//! low watermarks. Once the buffer is filled up to the high watermark, the
//! IO worker threads are not allowed to write to the buffer unless the
//! buffer contents are consumed by the worker threads and the buffer usage
//! reaches the low watermark level."*
//!
//! [`WatermarkQueue`] implements exactly that hysteresis: a byte-weighted
//! queue where producers block at the *high* watermark and stay blocked
//! until consumers drain it to the *low* watermark. The gap between the two
//! prevents the system from *"oscillating between the two states rapidly"*.
//! On the TCP transport a blocked reader thread stops draining its socket,
//! the kernel receive buffer fills, the TCP window closes, and the
//! sender's writes stall — propagating pressure upstream hop by hop, which
//! is what Fig. 4 of the paper demonstrates end to end.

//!
//! The IO tier subscribes to the *release* edge of that hysteresis:
//! [`WatermarkQueue::add_gate_listener`] registers a callback fired when
//! the gate opens (or the queue closes), which is how parked source-pump
//! tasks are woken by capacity events instead of polling the gate.

use neptune_telemetry::{EventKind, FlightRecorder};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Items stored in a watermark queue report their size in bytes, because
/// watermarks bound *memory*, not message counts.
pub trait Weighted {
    /// Size of this item for watermark accounting, in bytes.
    fn weight(&self) -> usize;

    /// Whether a [`ShedPolicy`] may sacrifice this item. Control-plane
    /// items (checkpoint barriers, acks, heartbeats) return `false`:
    /// dropping a barrier would wedge checkpoint alignment forever, and
    /// shedding exists to bound *data* latency, not to lose signalling.
    /// Non-sheddable items are still weighed — they occupy watermark
    /// budget like everything else — they just survive every policy.
    fn sheddable(&self) -> bool {
        true
    }
}

impl Weighted for Vec<u8> {
    fn weight(&self) -> usize {
        self.len()
    }
}

impl Weighted for crate::frame::Frame {
    fn weight(&self) -> usize {
        self.wire_len
    }

    /// Control frames ([`crate::frame::FLAG_CONTROL`]) are exempt from
    /// load shedding.
    fn sheddable(&self) -> bool {
        self.control.is_none()
    }
}

/// High/low watermark configuration, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkConfig {
    /// Producers block once buffered bytes reach this level.
    pub high: usize,
    /// Blocked producers resume once buffered bytes drain to this level.
    pub low: usize,
}

impl WatermarkConfig {
    /// Validated constructor: `0 <= low < high`.
    pub fn new(high: usize, low: usize) -> Self {
        assert!(high > 0, "high watermark must be positive");
        assert!(low < high, "low watermark ({low}) must be below high ({high})");
        WatermarkConfig { high, low }
    }

    /// The paper's guidance: watermarks "set sufficiently apart" — default
    /// low is half of high.
    pub fn with_high(high: usize) -> Self {
        Self::new(high, high / 2)
    }
}

/// Why a push could not enqueue its item. The item is handed back so the
/// caller can retry, replay, or quarantine it.
///
/// Supervisors need the distinction: [`PushError::Closed`] means the job is
/// shutting down (stop retrying), while [`PushError::Gated`] means the
/// consumer is merely behind (backpressure — park and retry later).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was closed ([`WatermarkQueue::close`]) — shutdown, not
    /// backpressure. The item is handed back.
    Closed(T),
    /// The queue is gated at the high watermark — backpressure, not
    /// shutdown. Returned by the non-blocking and bounded-wait push paths;
    /// `push_blocking` never returns it (it waits the gate out).
    Gated(T),
}

impl<T> PushError<T> {
    /// Recover the item that could not be enqueued.
    pub fn into_item(self) -> T {
        match self {
            PushError::Closed(item) | PushError::Gated(item) => item,
        }
    }

    /// True when the failure was a shutdown, not backpressure.
    pub fn is_closed(&self) -> bool {
        matches!(self, PushError::Closed(_))
    }

    /// True when the failure was backpressure, not shutdown.
    pub fn is_gated(&self) -> bool {
        matches!(self, PushError::Gated(_))
    }
}

/// What a successful push did with the item. Anything other than
/// [`Pushed::Enqueued`] means the queue's [`ShedPolicy`] degraded service
/// to keep latency bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pushed {
    /// The item was enqueued normally.
    Enqueued,
    /// The incoming item itself was shed (dropped) by `DropNewest` or the
    /// probabilistic policy.
    Shed,
    /// The item was enqueued after evicting this many older items
    /// (`DropOldest`).
    Evicted(usize),
}

impl Pushed {
    /// True unless the incoming item was dropped.
    pub fn accepted(&self) -> bool {
        !matches!(self, Pushed::Shed)
    }
}

/// Load-shedding policy applied by [`WatermarkQueue::push_blocking`] once
/// the gate has been closed for longer than [`ShedConfig::max_stall`].
///
/// The paper's backpressure (§III-B4) is lossless: producers block until
/// consumers drain. That remains the default ([`ShedPolicy::None`]).
/// Shedding is an explicit opt-in degradation mode for sources that cannot
/// be throttled (IoT sensors keep sensing): it bounds producer-side latency
/// by sacrificing data, and every sacrificed item is counted in
/// [`WatermarkQueue::shed_total`] / [`WatermarkQueue::shed_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Lossless backpressure (the paper's semantics): block until drained.
    None,
    /// Drop the incoming item; queued items are preserved. Favours data
    /// already in flight (oldest-first delivery).
    DropNewest,
    /// Evict queued items from the front until the incoming item fits below
    /// the high watermark, then enqueue it. Favours fresh data — the right
    /// choice when stale sensor readings are worthless.
    DropOldest,
    /// Drop the incoming item with probability proportional to occupancy
    /// above the low watermark (`p = (level - low) / (high - low)`,
    /// clamped to [0, 1]), using a deterministic xorshift stream seeded
    /// here. Smooths degradation instead of hard-dropping everything.
    Probabilistic {
        /// Seed for the deterministic drop-decision stream.
        seed: u64,
    },
}

/// When and how a queue sheds. Constructed via [`ShedConfig::disabled`] by
/// default; pass a policy to [`WatermarkQueue::with_shed`] to opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// What to drop once armed.
    pub policy: ShedPolicy,
    /// How long the gate must stay continuously closed before the policy
    /// arms. Below this threshold producers block losslessly, so brief
    /// bursts are absorbed exactly as the paper describes.
    pub max_stall: Duration,
}

impl ShedConfig {
    /// Lossless default: never shed.
    pub fn disabled() -> Self {
        ShedConfig { policy: ShedPolicy::None, max_stall: Duration::from_secs(1) }
    }

    /// Shed with `policy` after the gate has been closed for `max_stall`.
    pub fn new(policy: ShedPolicy, max_stall: Duration) -> Self {
        ShedConfig { policy, max_stall }
    }
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

struct QueueState<T> {
    items: VecDeque<T>,
    level: usize,
    /// True between hitting the high watermark and draining to the low one.
    gated: bool,
    /// When the current gating episode began; `None` while the gate is
    /// open. Drives [`ShedConfig::max_stall`] arming.
    gated_since: Option<Instant>,
    closed: bool,
    /// Set when the gate opened under the lock; the public entry points
    /// fire the listeners *after* releasing it (listeners may take other
    /// locks, e.g. an IO pool's ready queue).
    release_pending: bool,
    /// Deterministic xorshift state for `ShedPolicy::Probabilistic`.
    shed_rng: u64,
}

/// Byte-weighted MPMC queue with high/low watermark flow control.
pub struct WatermarkQueue<T: Weighted> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    config: WatermarkConfig,
    shed: ShedConfig,
    pushed: AtomicU64,
    popped: AtomicU64,
    /// Number of times a producer had to block at the high watermark.
    gate_events: AtomicU64,
    /// Items sacrificed by the shed policy over the queue's lifetime.
    shed_total: AtomicU64,
    /// Bytes sacrificed by the shed policy over the queue's lifetime.
    shed_bytes: AtomicU64,
    /// Callbacks fired when the gate opens or the queue closes.
    gate_listeners: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
    /// Optional flight recorder timelining gate/shed transitions; the
    /// `u64` is the subject id events are recorded under. Locked only on
    /// the (rare) transition edges, never on the per-item fast path.
    recorder: Mutex<Option<(Arc<FlightRecorder>, u64)>>,
}

impl<T: Weighted> WatermarkQueue<T> {
    /// New queue with the given watermark configuration and lossless
    /// backpressure (no shedding).
    pub fn new(config: WatermarkConfig) -> Self {
        Self::with_shed(config, ShedConfig::disabled())
    }

    /// New queue that degrades per `shed` once the gate has been closed
    /// longer than [`ShedConfig::max_stall`].
    pub fn with_shed(config: WatermarkConfig, shed: ShedConfig) -> Self {
        let seed = match shed.policy {
            ShedPolicy::Probabilistic { seed } if seed != 0 => seed,
            _ => 0x9E37_79B9_7F4A_7C15,
        };
        WatermarkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                level: 0,
                gated: false,
                gated_since: None,
                closed: false,
                release_pending: false,
                shed_rng: seed,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            config,
            shed,
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            gate_events: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            shed_bytes: AtomicU64::new(0),
            gate_listeners: Mutex::new(Vec::new()),
            recorder: Mutex::new(None),
        }
    }

    /// Attach a flight recorder: gate close/open and shed transitions are
    /// timelined as [`EventKind::GateClosed`] (detail = buffered bytes),
    /// [`EventKind::GateOpened`] (detail = gated microseconds) and
    /// [`EventKind::Shed`] (detail = bytes sacrificed), with `subject`
    /// identifying this queue.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>, subject: u64) {
        *self.recorder.lock() = Some((recorder, subject));
    }

    #[inline]
    fn record_event(&self, kind: EventKind, detail: u64) {
        if let Some((r, subject)) = self.recorder.lock().as_ref() {
            r.record(kind, *subject, detail);
        }
    }

    /// Register a callback fired whenever the gate opens (drain reached the
    /// low watermark) or the queue closes. This is the capacity-event hook
    /// the IO tier uses to wake parked producers; callbacks must be cheap
    /// and must not re-enter the queue.
    pub fn add_gate_listener(&self, f: impl Fn() + Send + Sync + 'static) {
        self.gate_listeners.lock().push(Arc::new(f));
    }

    fn fire_gate_listeners(&self) {
        let listeners: Vec<_> = self.gate_listeners.lock().clone();
        for l in listeners {
            l();
        }
    }

    /// The configured watermarks.
    pub fn config(&self) -> WatermarkConfig {
        self.config
    }

    /// Bytes currently buffered.
    pub fn level(&self) -> usize {
        self.state.lock().level
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }

    /// True while producers are gated (between high and low watermark).
    pub fn is_gated(&self) -> bool {
        self.state.lock().gated
    }

    /// Items pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Items popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }

    /// How many times a producer blocked at the high watermark.
    pub fn gate_events(&self) -> u64 {
        self.gate_events.load(Ordering::Relaxed)
    }

    /// Items sacrificed by the shed policy (evicted or dropped).
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Bytes sacrificed by the shed policy (evicted or dropped).
    pub fn shed_bytes(&self) -> u64 {
        self.shed_bytes.load(Ordering::Relaxed)
    }

    /// The configured shed policy.
    pub fn shed_config(&self) -> ShedConfig {
        self.shed
    }

    /// True when this queue may sacrifice items under sustained gating
    /// (its policy is not [`ShedPolicy::None`]). Producers that normally
    /// park on a closed gate should keep pushing into a shedding queue:
    /// the push itself blocks no longer than `max_stall` before the
    /// policy degrades instead of waiting.
    pub fn sheds(&self) -> bool {
        self.shed.policy != ShedPolicy::None
    }

    /// Push, blocking while the queue is gated. Returns
    /// [`PushError::Closed`] if the queue was closed — `push_blocking`
    /// never fails with backpressure; it waits the gate out (or, with a
    /// non-`None` [`ShedPolicy`] armed after `max_stall`, degrades instead
    /// of waiting forever).
    pub fn push_blocking(&self, item: T) -> Result<Pushed, PushError<T>> {
        self.push_bounded(item, None)
    }

    /// Push, blocking at the gate for at most `timeout`. Returns
    /// [`PushError::Gated`] (item handed back) if the gate stayed closed
    /// for the whole wait — the caller can now tell backpressure apart
    /// from shutdown ([`PushError::Closed`]).
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<Pushed, PushError<T>> {
        self.push_bounded(item, Some(timeout))
    }

    fn push_bounded(&self, item: T, timeout: Option<Duration>) -> Result<Pushed, PushError<T>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock();
        if st.gated && !st.closed {
            self.gate_events.fetch_add(1, Ordering::Relaxed);
            while st.gated && !st.closed {
                if self.shed.policy != ShedPolicy::None {
                    if let Some(since) = st.gated_since {
                        let stalled = since.elapsed();
                        if stalled >= self.shed.max_stall {
                            let outcome = self.shed_push(&mut st, item);
                            let fire = std::mem::take(&mut st.release_pending);
                            drop(st);
                            if fire {
                                self.fire_gate_listeners();
                            }
                            return Ok(outcome);
                        }
                        // Not armed yet: sleep only until arming time so a
                        // wedged consumer can't park us forever.
                        let until_armed = self.shed.max_stall - stalled;
                        let wait = match deadline {
                            Some(d) => until_armed.min(d.saturating_duration_since(Instant::now())),
                            None => until_armed,
                        };
                        self.not_full.wait_for(&mut st, wait);
                    } else {
                        // Gate raced open between the loop check and here.
                        continue;
                    }
                } else {
                    match deadline {
                        Some(d) => {
                            let left = d.saturating_duration_since(Instant::now());
                            self.not_full.wait_for(&mut st, left);
                        }
                        None => self.not_full.wait(&mut st),
                    }
                }
                if let Some(d) = deadline {
                    if st.gated && !st.closed && Instant::now() >= d {
                        return Err(PushError::Gated(item));
                    }
                }
            }
        }
        if st.closed {
            return Err(PushError::Closed(item));
        }
        self.finish_push(&mut st, item);
        Ok(Pushed::Enqueued)
    }

    /// Non-blocking push. [`PushError::Gated`] under backpressure,
    /// [`PushError::Closed`] after shutdown.
    pub fn try_push(&self, item: T) -> Result<Pushed, PushError<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.gated {
            return Err(PushError::Gated(item));
        }
        self.finish_push(&mut st, item);
        Ok(Pushed::Enqueued)
    }

    fn note_shed(&self, bytes: usize) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        self.shed_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.record_event(EventKind::Shed, bytes as u64);
    }

    /// Apply the armed shed policy to an incoming item while gated.
    fn shed_push(&self, st: &mut QueueState<T>, item: T) -> Pushed {
        if !item.sheddable() {
            // Control-plane items (barriers, acks) bypass every policy:
            // they are small, rare, and dropping one wedges the protocol
            // that sent it. They enqueue despite the gate.
            self.finish_push(st, item);
            return Pushed::Enqueued;
        }
        match self.shed.policy {
            ShedPolicy::None => unreachable!("shed_push called with ShedPolicy::None"),
            ShedPolicy::DropNewest => {
                self.note_shed(item.weight());
                Pushed::Shed
            }
            ShedPolicy::DropOldest => {
                let need = item.weight();
                let mut evicted = 0usize;
                // Evict from the oldest end but step over non-sheddable
                // items — a queued barrier survives the purge in place, so
                // its ordering relative to surviving data frames holds.
                let mut idx = 0usize;
                while st.level + need > self.config.high && idx < st.items.len() {
                    if !st.items[idx].sheddable() {
                        idx += 1;
                        continue;
                    }
                    let old = st.items.remove(idx).expect("index bounded by len");
                    st.level -= old.weight();
                    self.note_shed(old.weight());
                    evicted += 1;
                }
                self.maybe_release(st);
                self.finish_push(st, item);
                Pushed::Evicted(evicted)
            }
            ShedPolicy::Probabilistic { .. } => {
                // p = (level - low) / (high - low), deterministic roll.
                let span = (self.config.high - self.config.low).max(1) as u64;
                let over = st.level.saturating_sub(self.config.low) as u64;
                st.shed_rng = xorshift(st.shed_rng);
                if st.shed_rng % span < over.min(span) {
                    self.note_shed(item.weight());
                    Pushed::Shed
                } else {
                    // Accept despite the gate: occupancy-proportional
                    // admission self-limits the overshoot.
                    self.finish_push(st, item);
                    Pushed::Enqueued
                }
            }
        }
    }

    /// Open the gate if eviction drained us to the low watermark.
    fn maybe_release(&self, st: &mut QueueState<T>) {
        if st.gated && st.level <= self.config.low {
            let gated_for =
                st.gated_since.map(|since| since.elapsed().as_micros() as u64).unwrap_or(0);
            st.gated = false;
            st.gated_since = None;
            st.release_pending = true;
            self.not_full.notify_all();
            self.record_event(EventKind::GateOpened, gated_for);
        }
    }

    fn finish_push(&self, st: &mut QueueState<T>, item: T) {
        st.level += item.weight();
        st.items.push_back(item);
        if st.level >= self.config.high && !st.gated {
            st.gated = true;
            st.gated_since = Some(Instant::now());
            self.record_event(EventKind::GateClosed, st.level as u64);
        }
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.not_empty.notify_one();
    }

    /// Pop one item without blocking.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        let item = self.finish_pop(&mut st);
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        item
    }

    /// Pop one item, blocking up to `timeout`. `None` on timeout or close.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = self.state.lock();
        if st.items.is_empty() && !st.closed {
            self.not_empty.wait_for(&mut st, timeout);
        }
        let item = self.finish_pop(&mut st);
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        item
    }

    /// Pop up to `max` items into `out`; returns how many were popped.
    /// This is the batch-drain the worker threads use: one lock
    /// acquisition per scheduled execution, not per packet.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut st = self.state.lock();
        let mut n = 0;
        while n < max {
            match self.finish_pop(&mut st) {
                Some(item) => {
                    out.push(item);
                    n += 1;
                }
                None => break,
            }
        }
        let fire = std::mem::take(&mut st.release_pending);
        drop(st);
        if fire {
            self.fire_gate_listeners();
        }
        n
    }

    fn finish_pop(&self, st: &mut QueueState<T>) -> Option<T> {
        let item = st.items.pop_front()?;
        st.level -= item.weight();
        self.popped.fetch_add(1, Ordering::Relaxed);
        self.maybe_release(st);
        Some(item)
    }

    /// Close the queue: blocked producers fail, consumers drain the rest.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
        drop(st);
        // Close is a capacity event too: parked producers must wake to
        // observe the closure instead of waiting on a gate that will never
        // open.
        self.fire_gate_listeners();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::wait_for;
    use std::time::Instant;

    fn item(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn config_validation() {
        let c = WatermarkConfig::new(100, 50);
        assert_eq!(c.high, 100);
        assert_eq!(c.low, 50);
        let d = WatermarkConfig::with_high(1000);
        assert_eq!(d.low, 500);
    }

    #[test]
    #[should_panic(expected = "below high")]
    fn low_must_be_below_high() {
        WatermarkConfig::new(100, 100);
    }

    #[test]
    fn fifo_order_preserved() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1 << 20, 0));
        for i in 0..10u8 {
            q.push_blocking(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(q.pop().unwrap(), vec![i]);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn gates_at_high_watermark() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 40));
        q.push_blocking(item(60)).unwrap();
        assert!(!q.is_gated());
        q.push_blocking(item(60)).unwrap(); // level 120 >= 100
        assert!(q.is_gated());
        assert!(q.try_push(item(1)).is_err());
    }

    #[test]
    fn hysteresis_releases_at_low_not_below_high() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 40));
        q.push_blocking(item(50)).unwrap();
        q.push_blocking(item(50)).unwrap(); // gated at 100
        assert!(q.is_gated());
        q.pop().unwrap(); // level 50: still above low -> still gated
        assert!(q.is_gated(), "must stay gated until low watermark");
        q.pop().unwrap(); // level 0 <= 40 -> released
        assert!(!q.is_gated());
        assert!(q.try_push(item(1)).is_ok());
    }

    #[test]
    fn blocked_producer_resumes_after_drain() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 10)));
        q.push_blocking(item(100)).unwrap(); // gated
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push_blocking(item(10)).unwrap());
        // The gate-event counter ticks before the producer blocks, so once
        // it reads 1 the push is provably parked at the gate.
        assert!(wait_for(Duration::from_secs(5), || q.gate_events() == 1));
        assert_eq!(q.len(), 1, "producer must still be blocked");
        q.pop().unwrap(); // drains to 0 <= low, releases producer
        producer.join().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.gate_events(), 1);
    }

    #[test]
    fn pop_timeout_returns_none_when_idle() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(100, 10));
        let t0 = Instant::now();
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 10)));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(5));
        q.push_blocking(item(3)).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.unwrap().len(), 3);
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1 << 20, 0));
        for _ in 0..10 {
            q.push_blocking(item(4)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(6, &mut out), 6);
        assert_eq!(out.len(), 6);
        assert_eq!(q.pop_batch(100, &mut out), 4);
        assert_eq!(q.pop_batch(1, &mut out), 0);
    }

    #[test]
    fn close_fails_blocked_producers_and_drains_consumers() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(10, 1)));
        q.push_blocking(item(10)).unwrap(); // gated
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push_blocking(item(1)));
        assert!(wait_for(Duration::from_secs(5), || q.gate_events() == 1));
        q.close();
        assert!(producer.join().unwrap().is_err(), "blocked producer must fail on close");
        // Remaining items still drain.
        assert_eq!(q.pop().unwrap().len(), 10);
        assert!(q.pop().is_none());
        assert!(q.push_blocking(item(1)).is_err());
    }

    #[test]
    fn gate_listener_fires_on_release_and_close() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(100, 40)));
        let events = Arc::new(AtomicU64::new(0));
        let e = events.clone();
        q.add_gate_listener(move || {
            e.fetch_add(1, Ordering::Relaxed);
        });
        q.push_blocking(item(120)).unwrap();
        assert!(q.is_gated());
        assert_eq!(events.load(Ordering::Relaxed), 0, "no event while gated");
        q.pop().unwrap(); // level 0 <= low: gate opens
        assert_eq!(events.load(Ordering::Relaxed), 1, "release edge must fire");
        q.push_blocking(item(10)).unwrap();
        q.pop().unwrap(); // never gated: no edge
        assert_eq!(events.load(Ordering::Relaxed), 1);
        q.close();
        assert_eq!(events.load(Ordering::Relaxed), 2, "close is a capacity event");
    }

    #[test]
    fn recorder_timelines_gate_and_shed_transitions() {
        let recorder = Arc::new(FlightRecorder::new(32));
        let shed = ShedConfig::new(ShedPolicy::DropNewest, Duration::from_millis(5));
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::with_shed(WatermarkConfig::new(10, 4), shed);
        q.attach_recorder(recorder.clone(), 7);
        q.push_blocking(item(10)).unwrap(); // gate closes
        q.push_blocking(item(3)).unwrap(); // stalls past max_stall, then sheds
        q.pop().unwrap(); // gate opens
        assert!(recorder.contains_sequence(&[
            EventKind::GateClosed,
            EventKind::Shed,
            EventKind::GateOpened,
        ]));
        let events = recorder.snapshot();
        let closed = events.iter().find(|e| e.kind == EventKind::GateClosed).unwrap();
        assert_eq!(closed.subject, 7);
        assert_eq!(closed.detail, 10, "detail carries buffered bytes at close");
        let shed_ev = events.iter().find(|e| e.kind == EventKind::Shed).unwrap();
        assert_eq!(shed_ev.detail, 3, "detail carries shed bytes");
    }

    #[test]
    fn counters_track_traffic() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(1000, 100));
        for _ in 0..5 {
            q.push_blocking(item(10)).unwrap();
        }
        q.pop().unwrap();
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.level(), 40);
    }

    #[test]
    fn try_push_distinguishes_gated_from_closed() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(10, 1));
        q.push_blocking(item(10)).unwrap(); // gated
        match q.try_push(item(1)) {
            Err(PushError::Gated(it)) => assert_eq!(it.len(), 1),
            other => panic!("expected Gated, got {other:?}"),
        }
        q.close();
        match q.try_push(item(2)) {
            Err(PushError::Closed(it)) => assert_eq!(it.len(), 2),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn push_timeout_reports_backpressure_distinct_from_shutdown() {
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(10, 1));
        q.push_blocking(item(10)).unwrap(); // gated
        let err = q.push_timeout(item(3), Duration::from_millis(10)).unwrap_err();
        assert!(err.is_gated());
        assert!(!err.is_closed());
        assert_eq!(err.into_item().len(), 3);
        q.close();
        let err = q.push_timeout(item(4), Duration::from_millis(10)).unwrap_err();
        assert!(err.is_closed());
    }

    #[test]
    fn shedding_stays_lossless_before_max_stall() {
        let shed = ShedConfig::new(ShedPolicy::DropNewest, Duration::from_secs(60));
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::with_shed(WatermarkConfig::new(10, 1), shed));
        q.push_blocking(item(10)).unwrap(); // gated
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push_blocking(item(2)));
        assert!(wait_for(Duration::from_secs(5), || q.gate_events() == 1));
        // Far below max_stall: the producer must still be blocked, nothing shed.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.shed_total(), 0);
        assert_eq!(q.len(), 1, "producer must still be parked at the gate");
        q.pop().unwrap();
        assert!(matches!(producer.join().unwrap().unwrap(), Pushed::Enqueued));
    }

    #[test]
    fn drop_newest_sheds_incoming_after_stall() {
        let shed = ShedConfig::new(ShedPolicy::DropNewest, Duration::from_millis(10));
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::with_shed(WatermarkConfig::new(10, 1), shed);
        q.push_blocking(item(10)).unwrap(); // gated
        let t0 = Instant::now();
        let outcome = q.push_blocking(item(4)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(9), "must wait out max_stall first");
        assert_eq!(outcome, Pushed::Shed);
        assert_eq!(q.shed_total(), 1);
        assert_eq!(q.shed_bytes(), 4);
        assert_eq!(q.len(), 1, "queued item preserved, incoming dropped");
    }

    #[test]
    fn drop_oldest_evicts_to_admit_fresh_data() {
        let shed = ShedConfig::new(ShedPolicy::DropOldest, Duration::from_millis(10));
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::with_shed(WatermarkConfig::new(10, 4), shed);
        q.push_blocking(vec![1u8; 5]).unwrap();
        q.push_blocking(vec![2u8; 5]).unwrap(); // level 10: gated
        assert!(q.is_gated());
        let outcome = q.push_blocking(vec![3u8; 5]).unwrap();
        assert!(matches!(outcome, Pushed::Evicted(n) if n >= 1));
        assert!(q.shed_total() >= 1);
        // Freshest item must be present; the front of the queue was sacrificed.
        let drained: Vec<Vec<u8>> = std::iter::from_fn(|| q.pop()).collect();
        assert!(drained.iter().any(|v| v[0] == 3), "fresh item must survive");
        assert!(!drained.iter().any(|v| v[0] == 1), "oldest item must be shed");
    }

    /// A weighted item that opts out of shedding, like control frames do.
    #[derive(Debug)]
    struct Pinned(usize);

    impl Weighted for Pinned {
        fn weight(&self) -> usize {
            self.0
        }

        fn sheddable(&self) -> bool {
            false
        }
    }

    #[test]
    fn non_sheddable_items_survive_every_policy() {
        for policy in
            [ShedPolicy::DropNewest, ShedPolicy::DropOldest, ShedPolicy::Probabilistic { seed: 9 }]
        {
            let shed = ShedConfig::new(policy, Duration::from_millis(5));
            let q: WatermarkQueue<Pinned> =
                WatermarkQueue::with_shed(WatermarkConfig::new(10, 4), shed);
            q.push_blocking(Pinned(10)).unwrap(); // gated
            let outcome = q.push_blocking(Pinned(4)).unwrap();
            assert_eq!(outcome, Pushed::Enqueued, "{policy:?} must not drop control items");
            assert_eq!(q.shed_total(), 0, "{policy:?} shed a non-sheddable item");
            assert_eq!(q.len(), 2, "{policy:?} lost a queued non-sheddable item");
        }
    }

    #[test]
    fn control_frames_never_shed_and_data_eviction_skips_them() {
        use crate::frame::{decode_frame, encode_control_frame, encode_frame, ControlKind};
        use neptune_compress::SelectiveCompressor;
        let frame = |wire: Vec<u8>| decode_frame(&wire).unwrap().0;
        let barrier = frame(encode_control_frame(1, ControlKind::Barrier, 7));
        assert!(!barrier.sheddable(), "control frames must be shed-exempt");
        let data = frame(encode_frame(1, 0, &[vec![0u8; 64]], &SelectiveCompressor::disabled()));
        assert!(data.sheddable());
        let high = barrier.weight() + data.weight();
        let shed = ShedConfig::new(ShedPolicy::DropOldest, Duration::from_millis(5));
        let q = WatermarkQueue::with_shed(WatermarkConfig::new(high, high / 2), shed);
        q.push_blocking(barrier).unwrap();
        q.push_blocking(data.clone()).unwrap(); // level = high: gated
        assert!(q.is_gated());
        // DropOldest must evict the data frame, never the older barrier.
        q.push_blocking(data.clone()).unwrap();
        let survivor = q.pop().unwrap();
        assert_eq!(
            survivor.control,
            Some(ControlKind::Barrier),
            "barrier must survive DropOldest eviction in FIFO position"
        );
        assert!(q.shed_total() >= 1, "the data frame was the one sacrificed");
    }

    #[test]
    fn probabilistic_shed_is_deterministic_and_counts() {
        let shed =
            ShedConfig::new(ShedPolicy::Probabilistic { seed: 42 }, Duration::from_millis(5));
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::with_shed(WatermarkConfig::new(64, 8), shed);
        q.push_blocking(item(64)).unwrap(); // gated, level = high -> p ~ 1
        let mut shed_seen = 0;
        for _ in 0..8 {
            if let Pushed::Shed = q.push_blocking(item(4)).unwrap() {
                shed_seen += 1;
            }
        }
        assert!(shed_seen > 0, "at full occupancy the drop probability is ~1");
        assert_eq!(q.shed_total(), shed_seen);
    }

    #[test]
    fn stress_producers_and_consumers_no_loss() {
        let q = Arc::new(WatermarkQueue::<Vec<u8>>::new(WatermarkConfig::new(4096, 1024)));
        const PER_PRODUCER: usize = 2000;
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER_PRODUCER {
                        q.push_blocking(item(16)).unwrap();
                    }
                })
            })
            .collect();
        let consumed = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if consumed.load(Ordering::Relaxed) == (4 * PER_PRODUCER) as u64 {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(q.total_pushed(), (4 * PER_PRODUCER) as u64);
        assert_eq!(q.total_popped(), (4 * PER_PRODUCER) as u64);
        assert_eq!(q.level(), 0);
    }
}
