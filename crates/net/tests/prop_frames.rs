//! Property-based tests for the frame header-extension scheme.
//!
//! Invariants:
//! * A frame carrying any combination of the [`FLAG_SENT_AT`] and
//!   [`FLAG_SEQ`] extensions round-trips through every decode path
//!   (slice, shared-buffer, and stream reader) with the extension values
//!   and messages intact.
//! * Setting no extensions produces the exact legacy wire layout.
//! * A decoder presented with a *reserved* extension bit it does not
//!   understand skips the unknown word and still decodes the known
//!   extensions and the body — old and new builds interoperate.

//! * The incremental [`FrameDecoder`] fed an arbitrary frame stream in
//!   arbitrary chunks produces exactly the frames the blocking
//!   [`read_frame`] reader produces, and never panics on truncated or
//!   bit-flipped input.

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_net::frame::{
    decode_frame, decode_frame_shared, encode_control_frame, encode_frame, encode_frame_raw_ext,
    read_frame, ControlKind, Frame, FrameDecoder, FLAG_SENT_AT, FLAG_SEQ, FRAME_HEADER_LEN,
};
use proptest::prelude::*;

fn prefixed(msgs: &[Vec<u8>]) -> Vec<u8> {
    let mut raw = Vec::new();
    for m in msgs {
        raw.extend_from_slice(&(m.len() as u32).to_le_bytes());
        raw.extend_from_slice(m);
    }
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_extension_combination_roundtrips_every_decode_path(
        link_id in any::<u64>(),
        base_seq in any::<u64>(),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80), 0..12),
        with_stamp in any::<bool>(),
        stamp in 1u64..u64::MAX,
        with_seq in any::<bool>(),
        frame_seq in any::<u64>(),
    ) {
        let raw = prefixed(&messages);
        let sent_at = if with_stamp { stamp } else { 0 };
        let seq = if with_seq { Some(frame_seq) } else { None };
        let wire = encode_frame_raw_ext(
            link_id, base_seq, messages.len() as u32, &raw,
            &SelectiveCompressor::disabled(), sent_at, seq,
        );

        // The flags byte is exactly the chosen extension set.
        let mut expected_flags = 0u8;
        if with_stamp { expected_flags |= FLAG_SENT_AT; }
        if with_seq { expected_flags |= FLAG_SEQ; }
        prop_assert_eq!(wire[4], expected_flags);

        // Slice decode.
        let (f, used) = decode_frame(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(f.link_id, link_id);
        prop_assert_eq!(f.base_seq, base_seq);
        prop_assert_eq!(f.sent_at_micros, sent_at);
        prop_assert_eq!(f.seq, seq);
        prop_assert!(f.control.is_none());
        prop_assert_eq!(&f.messages, &messages);

        // Zero-copy shared decode.
        let shared = Bytes::from(wire.clone());
        let (f2, used2) = decode_frame_shared(&shared, None).unwrap();
        prop_assert_eq!(used2, wire.len());
        prop_assert_eq!(f2.sent_at_micros, sent_at);
        prop_assert_eq!(f2.seq, seq);
        prop_assert_eq!(&f2.messages, &messages);

        // Blocking stream reader.
        let mut cursor = std::io::Cursor::new(&wire);
        let f3 = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(f3.sent_at_micros, sent_at);
        prop_assert_eq!(f3.seq, seq);
        prop_assert_eq!(&f3.messages, &messages);

        // No extensions -> byte-identical to the legacy encoder.
        if !with_stamp && !with_seq {
            prop_assert_eq!(wire, encode_frame(
                link_id, base_seq, &messages, &SelectiveCompressor::disabled()));
        }
    }

    /// Poison-packet robustness (ISSUE 5): no input — arbitrary garbage,
    /// truncation, or single-bit corruption of a valid frame — may make
    /// the decoder *panic*. Errors are fine (that is what quarantine and
    /// the `seq_violations` counter are for); unwinding out of the TCP
    /// reader loop is not.
    #[test]
    fn decode_frame_never_panics_on_arbitrary_bytes(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_frame(&garbage);
        let shared = Bytes::from(garbage.clone());
        let _ = decode_frame_shared(&shared, None);
        let mut cursor = std::io::Cursor::new(&garbage);
        let _ = read_frame(&mut cursor);
    }

    #[test]
    fn decode_frame_never_panics_on_truncated_or_bitflipped_frames(
        link_id in any::<u64>(),
        base_seq in any::<u64>(),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..6),
        with_stamp in any::<bool>(),
        stamp in 1u64..u64::MAX,
        with_seq in any::<bool>(),
        frame_seq in any::<u64>(),
        cut in any::<usize>(),
        flip_bit in 0usize..8,
        flip_at in any::<usize>(),
    ) {
        let raw = prefixed(&messages);
        let sent_at = if with_stamp { stamp } else { 0 };
        let seq = if with_seq { Some(frame_seq) } else { None };
        let wire = encode_frame_raw_ext(
            link_id, base_seq, messages.len() as u32, &raw,
            &SelectiveCompressor::disabled(), sent_at, seq,
        );

        // Truncation at every possible boundary: decode must error or
        // report "need more", never unwind.
        let truncated = &wire[..cut % (wire.len() + 1)];
        let _ = decode_frame(truncated);
        let shared = Bytes::from(truncated.to_vec());
        let _ = decode_frame_shared(&shared, None);
        let mut cursor = std::io::Cursor::new(truncated);
        let _ = read_frame(&mut cursor);

        // Single-bit corruption anywhere in the frame (header, extension
        // words, length prefixes, payload): decode may error or succeed
        // with different contents, but must not panic.
        if !wire.is_empty() {
            let mut flipped = wire.clone();
            let at = flip_at % flipped.len();
            flipped[at] ^= 1 << flip_bit;
            let _ = decode_frame(&flipped);
            let shared = Bytes::from(flipped.clone());
            let _ = decode_frame_shared(&shared, None);
            let mut cursor = std::io::Cursor::new(&flipped);
            let _ = read_frame(&mut cursor);
        }
    }

    #[test]
    fn reserved_extension_words_are_skipped_not_misparsed(
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..60), 0..8),
        with_stamp in any::<bool>(),
        stamp in 1u64..u64::MAX,
        with_seq in any::<bool>(),
        frame_seq in any::<u64>(),
        unknown_word in any::<u64>(),
    ) {
        // Encode with the known extensions, then forge reserved bit 3:
        // its 8-byte word sits after the known words (ascending bit
        // order), immediately before the body.
        let raw = prefixed(&messages);
        let sent_at = if with_stamp { stamp } else { 0 };
        let seq = if with_seq { Some(frame_seq) } else { None };
        let known = encode_frame_raw_ext(
            9, 100, messages.len() as u32, &raw,
            &SelectiveCompressor::disabled(), sent_at, seq,
        );
        let known_ext = 8 * (wire_flag_count(known[4]) as usize);
        let mut wire = Vec::with_capacity(known.len() + 8);
        wire.extend_from_slice(&known[..FRAME_HEADER_LEN + known_ext]);
        wire[4] |= 0b0000_1000; // reserved extension bit
        wire.extend_from_slice(&unknown_word.to_le_bytes());
        wire.extend_from_slice(&known[FRAME_HEADER_LEN + known_ext..]);

        let (f, used) = decode_frame(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(f.sent_at_micros, sent_at);
        prop_assert_eq!(f.seq, seq);
        prop_assert_eq!(&f.messages, &messages);

        let shared = Bytes::from(wire.clone());
        let (f2, _) = decode_frame_shared(&shared, None).unwrap();
        prop_assert_eq!(&f2.messages, &messages);

        let mut cursor = std::io::Cursor::new(&wire);
        let f3 = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(f3.seq, seq);
        prop_assert_eq!(&f3.messages, &messages);
    }

    /// The incremental decoder is equivalent to the blocking reader under
    /// *any* chunking: a stream of frames split at an arbitrary byte
    /// boundary (including 1-byte feeds) decodes to the identical frame
    /// sequence.
    #[test]
    fn incremental_decoder_matches_blocking_reader_under_any_chunking(
        specs in proptest::collection::vec(
            (
                any::<u64>(),                                   // link_id
                any::<u64>(),                                   // base_seq
                proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..40), 0..5),
                any::<bool>(),                                  // with_stamp
                1u64..u64::MAX,                                 // stamp
                proptest::option::of(any::<u64>()),             // seq
                any::<bool>(),                                  // control?
            ),
            1..5),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for (link_id, base_seq, messages, with_stamp, stamp, seq, control) in &specs {
            if *control {
                let kind =
                    if *with_stamp { ControlKind::Heartbeat } else { ControlKind::Ack };
                stream.extend_from_slice(&encode_control_frame(*link_id, kind, *base_seq));
            } else {
                let raw = prefixed(messages);
                stream.extend_from_slice(&encode_frame_raw_ext(
                    *link_id, *base_seq, messages.len() as u32, &raw,
                    &SelectiveCompressor::disabled(),
                    if *with_stamp { *stamp } else { 0 }, *seq,
                ));
            }
        }

        // Reference: the blocking reader over the whole stream.
        let mut cursor = std::io::Cursor::new(&stream);
        let mut blocking: Vec<Frame> = Vec::new();
        while (cursor.position() as usize) < stream.len() {
            blocking.push(read_frame(&mut cursor).unwrap());
        }

        // Incremental: arbitrary fixed-size chunks.
        let mut dec = FrameDecoder::new();
        let mut incremental: Vec<Frame> = Vec::new();
        for piece in stream.chunks(chunk) {
            let mut off = 0;
            while off < piece.len() {
                let (used, frame) = dec.feed(&piece[off..], None).unwrap();
                prop_assert!(used > 0 || frame.is_some());
                off += used;
                if let Some(f) = frame {
                    incremental.push(f);
                }
            }
        }
        prop_assert!(dec.is_idle(), "no partial frame may remain");

        prop_assert_eq!(incremental.len(), blocking.len());
        for (a, b) in incremental.iter().zip(&blocking) {
            prop_assert_eq!(a.link_id, b.link_id);
            prop_assert_eq!(a.base_seq, b.base_seq);
            prop_assert_eq!(a.sent_at_micros, b.sent_at_micros);
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(a.control, b.control);
            prop_assert_eq!(&a.messages, &b.messages);
        }
    }

    /// The incremental decoder never panics: arbitrary garbage, truncation
    /// at any boundary, and single-bit corruption must surface as errors
    /// (or quiet partial state), never unwinds — it runs inside IO-pool
    /// tasks where a panic would poison an IO thread.
    #[test]
    fn incremental_decoder_never_panics_on_hostile_input(
        garbage in proptest::collection::vec(any::<u8>(), 0..192),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..5),
        cut in any::<usize>(),
        flip_bit in 0usize..8,
        flip_at in any::<usize>(),
        chunk in 1usize..32,
    ) {
        // Arbitrary garbage, in chunks; on error the decoder resets itself
        // and keeps accepting input.
        let mut dec = FrameDecoder::new();
        for piece in garbage.chunks(chunk) {
            let mut off = 0;
            while off < piece.len() {
                match dec.feed(&piece[off..], None) {
                    Ok((used, _)) if used == 0 => break,
                    Ok((used, _)) => off += used,
                    Err(_) => break,
                }
            }
        }

        let wire = encode_frame_raw_ext(
            7, 3, messages.len() as u32, &prefixed(&messages),
            &SelectiveCompressor::disabled(), 0, Some(11),
        );

        // Truncation at every boundary.
        let truncated = &wire[..cut % (wire.len() + 1)];
        let mut dec = FrameDecoder::new();
        let _ = dec.feed(truncated, None);

        // Single-bit corruption anywhere.
        let mut flipped = wire.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        let mut dec = FrameDecoder::new();
        let mut off = 0;
        while off < flipped.len() {
            match dec.feed(&flipped[off..], None) {
                Ok((used, _)) if used == 0 => break,
                Ok((used, _)) => off += used,
                Err(_) => break,
            }
        }
    }
}

fn wire_flag_count(flags: u8) -> u32 {
    flags.count_ones()
}
