//! Property-based tests for the networking substrate.
//!
//! Invariants:
//! * Output buffers never lose, duplicate, reorder, or corrupt messages:
//!   the concatenation of all flushed batches equals the input sequence,
//!   with contiguous sequence numbers.
//! * A buffer never holds more than `capacity + max_message` bytes after
//!   a push (the flush threshold is honored).
//! * Watermark queues conserve items and weight under arbitrary
//!   interleavings of pushes and pops, and the gate is exactly the
//!   high/low hysteresis.

use neptune_net::buffer::{split_encoded, OutputBuffer, PushOutcome};
use neptune_net::watermark::{Pushed, WatermarkConfig, WatermarkQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn output_buffer_preserves_message_sequence(
        capacity in 1usize..4096,
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..100),
    ) {
        let mut buffer = OutputBuffer::new(capacity, None);
        let mut batches: Vec<(u64, Vec<Vec<u8>>)> = Vec::new();
        for m in &messages {
            if let PushOutcome::Flush(batch) = buffer.push(m) {
                let msgs = split_encoded(&batch.encoded).unwrap();
                prop_assert_eq!(msgs.len(), batch.count as usize);
                batches.push((batch.base_seq, msgs));
            }
        }
        if let Some(batch) = buffer.force_flush() {
            let msgs = split_encoded(&batch.encoded).unwrap();
            batches.push((batch.base_seq, msgs));
        }
        // Contiguous sequence numbers and exact reassembly.
        let mut expected_seq = 0u64;
        let mut reassembled: Vec<Vec<u8>> = Vec::new();
        for (base, msgs) in batches {
            prop_assert_eq!(base, expected_seq, "batch seq must be contiguous");
            expected_seq += msgs.len() as u64;
            reassembled.extend(msgs);
        }
        prop_assert_eq!(reassembled, messages);
    }

    #[test]
    fn output_buffer_flushes_at_capacity(
        capacity in 16usize..2048,
        sizes in proptest::collection::vec(1usize..300, 1..200),
    ) {
        let mut buffer = OutputBuffer::new(capacity, None);
        for &s in &sizes {
            let before = buffer.buffered_bytes();
            // The capacity threshold means a buffer never *retains* a
            // full load: after any push it either flushed or sits below
            // capacity.
            match buffer.push(&vec![0u8; s]) {
                PushOutcome::Flush(_) => {
                    prop_assert_eq!(buffer.buffered_bytes(), 0);
                    prop_assert!(before + s + 4 >= capacity,
                        "flushed below threshold: {} + {}", before, s);
                }
                PushOutcome::Buffered => {
                    prop_assert!(buffer.buffered_bytes() < capacity);
                }
            }
        }
    }

    #[test]
    fn watermark_queue_conserves_items_and_weight(
        high in 64usize..4096,
        gap in 1usize..64,
        ops in proptest::collection::vec((any::<bool>(), 1usize..128), 0..300),
    ) {
        let low = high - gap.min(high - 1);
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(high, low));
        let mut model: std::collections::VecDeque<usize> = Default::default();
        for (is_push, size) in ops {
            if is_push {
                // Model the non-blocking path only.
                match q.try_push(vec![0u8; size]) {
                    // Default ShedPolicy::None: an accepted push is always
                    // a plain enqueue, never a shed or eviction.
                    Ok(pushed) => {
                        prop_assert!(matches!(pushed, Pushed::Enqueued));
                        model.push_back(size);
                    }
                    Err(_) => {
                        // try_push refuses exactly when gated or closed;
                        // the model's level must be in the gated band.
                        prop_assert!(q.is_gated());
                    }
                }
            } else {
                match (q.pop(), model.pop_front()) {
                    (Some(item), Some(expected)) => {
                        prop_assert_eq!(item.len(), expected, "FIFO order violated");
                    }
                    (None, None) => {}
                    (got, expected) => {
                        prop_assert!(false, "divergence: queue {:?} vs model {:?}",
                            got.map(|v| v.len()), expected);
                    }
                }
            }
            let model_level: usize = model.iter().sum();
            prop_assert_eq!(q.level(), model_level, "weight accounting diverged");
            prop_assert_eq!(q.len(), model.len());
        }
        // Drain completely: every remaining item comes back in order.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(q.pop().map(|v| v.len()), Some(expected));
        }
        prop_assert_eq!(q.level(), 0);
    }

    #[test]
    fn watermark_gate_hysteresis_is_exact(
        sizes in proptest::collection::vec(1usize..128, 1..200),
    ) {
        const HIGH: usize = 1024;
        const LOW: usize = 256;
        let q: WatermarkQueue<Vec<u8>> = WatermarkQueue::new(WatermarkConfig::new(HIGH, LOW));
        let mut gated_model = false;
        let mut level = 0usize;
        for (i, &s) in sizes.iter().enumerate() {
            if i % 3 == 2 {
                if let Some(item) = q.pop() {
                    level -= item.len();
                    if gated_model && level <= LOW {
                        gated_model = false;
                    }
                }
            } else if q.try_push(vec![0u8; s]).is_ok() {
                level += s;
                if level >= HIGH {
                    gated_model = true;
                }
            }
            prop_assert_eq!(q.is_gated(), gated_model,
                "gate state diverged at op {} (level {})", i, level);
        }
    }
}
