//! Property and lifetime tests for the zero-copy frame path.
//!
//! Invariants:
//! * Encoding any message sequence and decoding it back — through the
//!   copying decoder, the shared (`Bytes`-aliasing) decoder, or the pooled
//!   streaming reader, compressed or not — reproduces the sequence exactly.
//! * A [`Frame`] parked in a [`WatermarkQueue`] stays valid even after the
//!   sender tries to recycle the batch buffer it shares: the pool's
//!   refcount gate refuses the recycle until the frame is dropped.

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_net::frame::{
    decode_frame, decode_frame_shared, encode_frame, read_frame_pooled, Frame, FrameMessages,
};
use neptune_net::pool::BytesPool;
use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn frame_round_trip_is_lossless(
        link_id in any::<u64>(),
        base_seq in any::<u64>(),
        mode in 0u8..3,
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 0..64),
    ) {
        let compressor = match mode {
            0 => SelectiveCompressor::disabled(),
            1 => SelectiveCompressor::always(),
            _ => SelectiveCompressor::new(4.0),
        };
        let wire = encode_frame(link_id, base_seq, &messages, &compressor);

        // Copying decode from a plain slice.
        let (frame, consumed) = decode_frame(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(frame.link_id, link_id);
        prop_assert_eq!(frame.base_seq, base_seq);
        prop_assert_eq!(&frame.messages, &messages);

        // Zero-copy decode sharing the wire buffer, with and without a
        // pool for compressed bodies; both must agree with the copying
        // decoder bit for bit.
        let shared = Bytes::from(wire);
        let (f2, consumed2) = decode_frame_shared(&shared, None).unwrap();
        prop_assert_eq!(consumed2, shared.len());
        prop_assert_eq!(&f2, &frame);
        let pool = BytesPool::new(8);
        let (f3, _) = decode_frame_shared(&shared, Some(&pool)).unwrap();
        prop_assert_eq!(&f3, &frame);
    }

    #[test]
    fn pooled_streaming_reads_round_trip(
        frames in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..120), 1..16), 1..8),
    ) {
        // Several frames back to back on one "connection", read with a
        // small pool and recycled after each — the receive loop the TCP
        // reader runs.
        let compressor = SelectiveCompressor::new(4.0);
        let pool = BytesPool::new(4);
        let mut wire = Vec::new();
        let mut base = 0u64;
        for msgs in &frames {
            wire.extend_from_slice(&encode_frame(9, base, msgs, &compressor));
            base += msgs.len() as u64;
        }
        let mut cursor = std::io::Cursor::new(wire);
        for msgs in &frames {
            let f = read_frame_pooled(&mut cursor, &pool).unwrap();
            prop_assert_eq!(&f.messages, msgs);
            pool.recycle(f.messages.into_batch());
        }
    }
}

#[test]
fn queued_frame_survives_source_buffer_recycle_attempt() {
    let pool = BytesPool::new(4);
    let q: WatermarkQueue<Frame> = WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10));

    let mut buf = pool.checkout(64);
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(b"hello");
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(b"world");
    let batch = buf.freeze();

    let messages = FrameMessages::parse_prefixed(batch.clone(), Some(2)).unwrap();
    let wire_len = batch.len();
    q.try_push(Frame {
        link_id: 1,
        base_seq: 0,
        messages,
        wire_len,
        sent_at_micros: 0,
        received_at: None,
        seq: None,
        control: None,
        trace: None,
    })
    .unwrap();

    // The sender still holds `batch`, the queue holds the frame: recycling
    // now must be refused, and the queued data must stay intact.
    assert!(!pool.recycle(batch), "shared batch must not be reclaimed");
    assert_eq!(pool.idle(), 0);

    let frame = q.pop().unwrap();
    assert_eq!(frame.messages.len(), 2);
    assert_eq!(frame.messages[0], *b"hello");
    assert_eq!(frame.messages[1], *b"world");

    // The frame now holds the only handle; recycling succeeds and the
    // storage round-trips through the pool.
    assert!(pool.recycle(frame.messages.into_batch()));
    assert_eq!(pool.idle(), 1);
    assert_eq!(pool.stats().discards, 1);
}
