//! Cluster-scale deployments: Figs. 5, 6, 9, 10 of the paper.
//!
//! The experimental cluster (§IV-A): *"50 physical machines connected over
//! a 1 Gbps LAN. There were 46 HP DL160 servers (Xeon E5620, 12 GB RAM)
//! and 4 HP DL320e servers (Xeon E3-1220 V2, 8 GB RAM)."* We reproduce the
//! heterogeneity: roughly one node in twelve is a "small" node with half
//! the cores and two-thirds of the RAM.
//!
//! Jobs are chains of stages; each stage instance is placed round-robin
//! over the nodes, so with enough jobs there is data flow between every
//! pair of nodes (the paper's scaling setup). Per-job steady-state rates
//! are solved by **progressive filling (max-min fairness)** over the
//! shared node resources — each iteration raises all unfixed job rates
//! until some CPU or NIC saturates, then freezes the jobs crossing it.
//! This fluid solution is the steady state of the same cost model the
//! relay DES integrates over time.
//!
//! Over-provisioning (more instances on a node than its job slots) charges
//! an efficiency penalty on that node's resources, modeling the context
//! switching and TCP contention the paper observes past 50 concurrent
//! jobs (Fig. 5's decline).

use crate::ethernet::wire_bytes;
use crate::profile::EngineProfile;
use neptune_ha::FaultPlan;

/// One stage-to-stage hop description.
#[derive(Debug, Clone, Copy)]
pub struct StageSpec {
    /// Domain-logic CPU µs per packet at the *receiving* stage of this
    /// hop.
    pub process_us: f64,
    /// Serialized message size on this hop, bytes.
    pub msg_size: usize,
}

/// Cluster experiment parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Engine cost model.
    pub profile: EngineProfile,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of concurrent jobs.
    pub jobs: usize,
    /// The job's hops: a J-stage job has J-1 entries.
    pub hops: Vec<StageSpec>,
    /// Application-level buffer capacity (batched engines).
    pub buffer_bytes: usize,
    /// Per-node link bandwidth, bits/s.
    pub bandwidth_bps: f64,
    /// Cores on a regular node (paper: 8 virtual cores).
    pub big_cores: usize,
    /// Efficiency penalty per surplus resident instance (see module docs).
    pub overload_alpha: f64,
}

impl ClusterParams {
    /// The paper's two-stage scaling job: small messages relayed from a
    /// source stage to a sink stage.
    pub fn scaling_job(profile: EngineProfile, nodes: usize, jobs: usize) -> Self {
        ClusterParams {
            profile,
            nodes,
            jobs,
            hops: vec![StageSpec { process_us: 0.1, msg_size: 50 }],
            buffer_bytes: 1 << 20,
            bandwidth_bps: 1e9,
            big_cores: 8,
            overload_alpha: 0.05,
        }
    }

    /// The four-stage manufacturing-equipment monitoring job (Fig. 8):
    /// ingest full readings, extract the six monitored fields, detect
    /// sensor/valve state changes, aggregate delays over a 24 h window.
    /// The per-stage domain costs are sized so NEPTUNE's 50-job cumulative
    /// lands near the paper's 15 M messages/s headline.
    pub fn manufacturing_job(profile: EngineProfile, nodes: usize, jobs: usize) -> Self {
        ClusterParams {
            profile,
            nodes,
            jobs,
            hops: vec![
                StageSpec { process_us: 3.0, msg_size: 120 }, // ingest -> extract
                StageSpec { process_us: 2.5, msg_size: 60 },  // extract -> detect
                StageSpec { process_us: 2.5, msg_size: 60 },  // detect -> aggregate
            ],
            buffer_bytes: 1 << 20,
            bandwidth_bps: 1e9,
            big_cores: 8,
            overload_alpha: 0.05,
        }
    }
}

/// Cluster experiment results.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Sum of per-job source rates, messages/s.
    pub cumulative_throughput: f64,
    /// Sum of all node transmit rates, Gbps.
    pub cumulative_bandwidth_gbps: f64,
    /// Each job's steady-state rate.
    pub per_job_throughput: Vec<f64>,
    /// Per-node CPU utilization (0..1), all virtual cores pooled.
    pub per_node_cpu: Vec<f64>,
    /// Per-node memory utilization (0..1).
    pub per_node_mem: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    /// A node's pooled CPU (all cores).
    Cpu(usize),
    /// A node's transmit link direction.
    NicTx(usize),
    /// A node's receive link direction.
    NicRx(usize),
    /// One stage instance's worker core: a single operator instance
    /// (parallelism 1 per stage, like the paper's jobs) cannot exceed one
    /// core no matter how idle its node is. Keyed by (job, stage).
    InstanceCore(usize, usize),
}

/// Deterministic per-node jitter in `[-spread, +spread]` (machines differ
/// slightly in practice; the paper's t-tests need that variance).
fn node_jitter(node: usize, spread: f64) -> f64 {
    let mut h = node as u64 ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let unit = (h % 10_000) as f64 / 10_000.0; // [0, 1)
    (unit * 2.0 - 1.0) * spread
}

fn is_small_node(node: usize, nodes: usize) -> bool {
    // Roughly one node in twelve is a DL320e-class small node (4 of 50).
    nodes >= 12 && node >= nodes - nodes / 12
}

/// Solve the cluster's steady state.
pub fn simulate_cluster(params: &ClusterParams) -> ClusterResult {
    simulate_with_dead(params, &[])
}

/// Solve the cluster's steady state under a [`FaultPlan`]: every node the
/// plan has killed by `step` contributes no capacity, and the stage
/// instances it hosted are restarted round-robin over the surviving nodes,
/// mirroring the runtime's dead-resource restart-from-replay-point. The
/// surviving cluster re-solves max-min fairness over the reduced capacity,
/// so throughput degrades gracefully instead of collapsing.
pub fn simulate_cluster_with_faults(
    params: &ClusterParams,
    plan: &FaultPlan,
    step: u64,
) -> ClusterResult {
    simulate_with_dead(params, &plan.dead_nodes_at(step))
}

fn simulate_with_dead(params: &ClusterParams, dead_nodes: &[usize]) -> ClusterResult {
    assert!(params.nodes > 0 && params.jobs > 0);
    assert!(!params.hops.is_empty(), "a job needs at least one hop");
    let p = params.profile;
    let n_nodes = params.nodes;
    let stages = params.hops.len() + 1;

    let mut dead = vec![false; n_nodes];
    for &m in dead_nodes {
        if m < n_nodes {
            dead[m] = true;
        }
    }
    assert!(dead.iter().any(|&d| !d), "fault plan killed every node");

    // ---- Placement: stage s of job j on node (j + s) % nodes. ----
    // Consecutive stages land on consecutive nodes, so node m's transmit
    // link and receive link serve *different* jobs — with jobs ≈ nodes
    // every full-duplex direction of every link is engaged, the paper's
    // "data flow between every pair of nodes" saturation point.
    // Under faults the same round-robin runs over the ring of *alive*
    // nodes: dead nodes drop out and displaced instances restart on the
    // survivors while consecutive stages stay on distinct (consecutive)
    // survivors, so hops keep paying their network cost.
    //
    // The ring rule itself lives in `neptune_cluster::placement` — the
    // coordinator partitions real multi-process jobs with the same
    // function, so the fluid model and the runtime agree on who hosts
    // what (see the cross-crate parity tests in both crates).
    let alive: Vec<usize> = (0..n_nodes).filter(|&m| !dead[m]).collect();
    let place = {
        let alive = &alive;
        move |job: usize, stage: usize| neptune_cluster::placement::ring_place(job, stage, alive)
    };
    let mut instances_per_node = vec![0usize; n_nodes];
    for j in 0..params.jobs {
        for s in 0..stages {
            instances_per_node[place(j, s)] += 1;
        }
    }

    // ---- Per-hop unit costs. ----
    // Batch size per hop (packets per unit).
    let unit_n: Vec<u64> = params
        .hops
        .iter()
        .map(|h| if p.batched { (params.buffer_bytes / h.msg_size).max(1) as u64 } else { 1 })
        .collect();
    // CPU µs per *message* on the send and receive side of each hop.
    let send_us: Vec<f64> =
        params.hops.iter().zip(&unit_n).map(|(_, &n)| p.send_cpu_us(n) / n as f64).collect();
    let recv_us: Vec<f64> = params
        .hops
        .iter()
        .zip(&unit_n)
        .map(|(h, &n)| p.recv_cpu_us(n) / n as f64 + h.process_us)
        .collect();
    // Wire bytes per message on each hop (Ethernet framing amortized over
    // the unit).
    let hop_wire: Vec<f64> = params
        .hops
        .iter()
        .zip(&unit_n)
        .map(|(h, &n)| wire_bytes(p.unit_payload_bytes(n, h.msg_size)) as f64 / n as f64)
        .collect();

    // ---- Resource capacities. ----
    let cpu_capacity: Vec<f64> = (0..n_nodes)
        .map(|m| {
            let cores =
                if is_small_node(m, n_nodes) { params.big_cores / 2 } else { params.big_cores };
            // Over-provisioning penalty: surplus instances beyond one
            // job's worth of stages cost efficiency.
            let surplus = instances_per_node[m].saturating_sub(stages) as f64;
            let eff = 1.0 / (1.0 + params.overload_alpha * surplus);
            let jitter = 1.0 + node_jitter(m, 0.03);
            cores as f64 * 1e6 * eff * jitter // µs of CPU per second
        })
        .collect();
    let nic_capacity: Vec<f64> = (0..n_nodes)
        .map(|m| {
            let surplus = instances_per_node[m].saturating_sub(stages) as f64;
            let eff = 1.0 / (1.0 + params.overload_alpha * surplus);
            params.bandwidth_bps / 8.0 * eff // bytes per second, each direction
        })
        .collect();

    // ---- Per-job unit demand on every resource. ----
    // demand[j] -> Vec<(Resource, units_per_message)>
    let mut demands: Vec<Vec<(Resource, f64)>> = Vec::with_capacity(params.jobs);
    for j in 0..params.jobs {
        let mut d: Vec<(Resource, f64)> = Vec::new();
        for h in 0..params.hops.len() {
            let src = place(j, h);
            let dst = place(j, h + 1);
            d.push((Resource::Cpu(src), send_us[h]));
            d.push((Resource::Cpu(dst), recv_us[h]));
            // Per-instance single-core ceilings: the sending work of hop h
            // runs on stage h's instance; the receiving+processing work on
            // stage h+1's instance.
            d.push((Resource::InstanceCore(j, h), send_us[h]));
            d.push((Resource::InstanceCore(j, h + 1), recv_us[h]));
            if src != dst {
                d.push((Resource::NicTx(src), hop_wire[h]));
                d.push((Resource::NicRx(dst), hop_wire[h]));
            }
        }
        demands.push(d);
    }

    let capacity_of = |r: &Resource| -> f64 {
        match r {
            Resource::Cpu(m) => cpu_capacity[*m],
            Resource::NicTx(m) | Resource::NicRx(m) => nic_capacity[*m],
            // One worker core, with the host node's jitter.
            Resource::InstanceCore(j, s) => {
                let m = place(*j, *s);
                1e6 * (1.0 + node_jitter(m, 0.03))
            }
        }
    };

    // ---- Progressive filling (max-min fairness). ----
    let mut rate = vec![0.0f64; params.jobs];
    let mut fixed = vec![false; params.jobs];
    let mut remaining: std::collections::HashMap<Resource, f64> = std::collections::HashMap::new();
    for d in &demands {
        for (r, _) in d {
            remaining.entry(*r).or_insert_with(|| capacity_of(r));
        }
    }
    for _round in 0..params.jobs + 2 {
        if fixed.iter().all(|&f| f) {
            break;
        }
        // Aggregate unfixed demand per resource.
        let mut unfixed_demand: std::collections::HashMap<Resource, f64> =
            std::collections::HashMap::new();
        for (j, d) in demands.iter().enumerate() {
            if fixed[j] {
                continue;
            }
            for (r, c) in d {
                *unfixed_demand.entry(*r).or_insert(0.0) += c;
            }
        }
        // Smallest uniform increment that saturates some resource.
        let mut delta = f64::INFINITY;
        for (r, demand) in &unfixed_demand {
            if *demand > 0.0 {
                delta = delta.min(remaining[r] / demand);
            }
        }
        if !delta.is_finite() {
            break;
        }
        // Apply the increment.
        for (j, d) in demands.iter().enumerate() {
            if fixed[j] {
                continue;
            }
            rate[j] += delta;
            for (r, c) in d {
                *remaining.get_mut(r).expect("seeded") -= c * delta;
            }
        }
        // Freeze jobs touching saturated resources.
        let saturated: Vec<Resource> = remaining
            .iter()
            .filter(|(r, &left)| {
                left <= capacity_of(r) * 1e-9 && unfixed_demand.get(r).copied().unwrap_or(0.0) > 0.0
            })
            .map(|(r, _)| *r)
            .collect();
        for (j, d) in demands.iter().enumerate() {
            if !fixed[j] && d.iter().any(|(r, _)| saturated.contains(r)) {
                fixed[j] = true;
            }
        }
    }

    // ---- Reporting. ----
    let cumulative: f64 = rate.iter().sum();
    let mut node_cpu_used = vec![0.0f64; n_nodes];
    let mut node_tx_bytes = vec![0.0f64; n_nodes];
    for (j, d) in demands.iter().enumerate() {
        for (r, c) in d {
            match r {
                Resource::Cpu(m) => node_cpu_used[*m] += c * rate[j],
                Resource::NicTx(m) => node_tx_bytes[*m] += c * rate[j],
                Resource::NicRx(_) | Resource::InstanceCore(..) => {}
            }
        }
    }
    let per_node_cpu: Vec<f64> =
        (0..n_nodes).map(|m| (node_cpu_used[m] / cpu_capacity[m]).min(1.0)).collect();
    let cumulative_bandwidth_gbps: f64 = node_tx_bytes.iter().map(|b| b * 8.0 / 1e9).sum();

    // Memory: a base OS/runtime share, plus per-instance heap and queue
    // bytes. Bounded engines hold at most the watermark budget per
    // instance; the unbounded engine's steady-state queues hover around a
    // couple of batches when it is not overloaded (the Fig. 10 regime).
    let per_node_mem: Vec<f64> = (0..n_nodes)
        .map(|m| {
            if dead[m] {
                return 0.0;
            }
            let ram = if is_small_node(m, n_nodes) { 8.0e9 } else { 12.0e9 };
            let per_instance_heap = 96.0e6;
            let queue = if p.bounded_queues { 8.0e6 } else { 24.0e6 };
            let used = 0.12 * ram
                + instances_per_node[m] as f64 * (per_instance_heap + queue)
                + node_jitter(m ^ 0xABCD, 0.02) * ram;
            (used / ram).clamp(0.0, 1.0)
        })
        .collect();

    ClusterResult {
        cumulative_throughput: cumulative,
        cumulative_bandwidth_gbps,
        per_job_throughput: rate,
        per_node_cpu,
        per_node_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{neptune_profile, storm_profile};

    #[test]
    fn throughput_rises_with_jobs_then_declines() {
        // Fig. 5's shape: rise to a peak around jobs == nodes, then drop.
        let at = |jobs| {
            simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 50, jobs))
                .cumulative_throughput
        };
        let t10 = at(10);
        let t25 = at(25);
        let t50 = at(50);
        let t100 = at(100);
        assert!(t25 > t10 * 1.5, "rise: {t10:.2e} -> {t25:.2e}");
        assert!(t50 > t25, "still rising to the peak: {t25:.2e} -> {t50:.2e}");
        assert!(t100 < t50, "over-provisioned decline: {t50:.2e} -> {t100:.2e}");
    }

    #[test]
    fn cumulative_throughput_near_paper_headline() {
        // §VI: ~100M packets/s cumulative on the 50-node cluster.
        let r = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 50, 50));
        assert!(
            (5e7..2e8).contains(&r.cumulative_throughput),
            "cumulative {:.3e} outside the ~100M regime",
            r.cumulative_throughput
        );
    }

    #[test]
    fn scaling_linear_in_cluster_size() {
        // Fig. 6: fixed 50 jobs, growing cluster -> linear-ish scaling.
        let at = |nodes| {
            simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), nodes, 50))
                .cumulative_throughput
        };
        let t10 = at(10);
        let t20 = at(20);
        let t40 = at(40);
        assert!((t20 / t10 - 2.0).abs() < 0.5, "10->20 nodes ratio {}", t20 / t10);
        assert!((t40 / t20 - 2.0).abs() < 0.5, "20->40 nodes ratio {}", t40 / t20);
    }

    #[test]
    fn neptune_beats_storm_on_manufacturing() {
        // Fig. 9's shape: NEPTUNE several-fold above Storm.
        let np = simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), 50, 32));
        let st = simulate_cluster(&ClusterParams::manufacturing_job(storm_profile(), 50, 32));
        let ratio = np.cumulative_throughput / st.cumulative_throughput;
        assert!(
            ratio > 3.0,
            "neptune {:.3e} vs storm {:.3e} (ratio {ratio:.1})",
            np.cumulative_throughput,
            st.cumulative_throughput
        );
    }

    #[test]
    fn manufacturing_scales_linearly_in_jobs() {
        let at = |jobs| {
            simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), 50, jobs))
                .cumulative_throughput
        };
        let t8 = at(8);
        let t16 = at(16);
        let t32 = at(32);
        assert!((t16 / t8 - 2.0).abs() < 0.4);
        assert!((t32 / t16 - 2.0).abs() < 0.4);
    }

    #[test]
    fn storm_cpu_exceeds_neptune_cpu() {
        // Fig. 10: Storm's cluster-wide CPU is consistently higher for the
        // same offered work. Compare at Storm's achievable rate: give both
        // engines the same job count and compare mean utilization per
        // delivered message.
        let np = simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), 50, 50));
        let st = simulate_cluster(&ClusterParams::manufacturing_job(storm_profile(), 50, 50));
        let np_cpu_per_msg = np.per_node_cpu.iter().sum::<f64>() / np.cumulative_throughput;
        let st_cpu_per_msg = st.per_node_cpu.iter().sum::<f64>() / st.cumulative_throughput;
        assert!(
            st_cpu_per_msg > np_cpu_per_msg * 2.0,
            "storm per-msg cpu {st_cpu_per_msg:.3e} vs neptune {np_cpu_per_msg:.3e}"
        );
    }

    #[test]
    fn memory_not_significantly_different() {
        // Fig. 10's memory result: no noticeable difference.
        let np = simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), 50, 50));
        let st = simulate_cluster(&ClusterParams::manufacturing_job(storm_profile(), 50, 50));
        let np_mean = np.per_node_mem.iter().sum::<f64>() / 50.0;
        let st_mean = st.per_node_mem.iter().sum::<f64>() / 50.0;
        assert!(
            (np_mean - st_mean).abs() / np_mean < 0.2,
            "memory means diverge: {np_mean} vs {st_mean}"
        );
    }

    #[test]
    fn heterogeneous_nodes_present() {
        let r = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 50, 50));
        assert_eq!(r.per_node_cpu.len(), 50);
        assert_eq!(r.per_node_mem.len(), 50);
        // Small nodes exist and have higher memory fraction (less RAM).
        assert!(is_small_node(49, 50));
        assert!(!is_small_node(0, 50));
    }

    #[test]
    fn max_min_rates_are_balanced_for_identical_jobs() {
        let r = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 50, 25));
        let min = r.per_job_throughput.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.per_job_throughput.iter().cloned().fold(0.0, f64::max);
        // Identical jobs on near-identical nodes: rates within ~4x
        // (heterogeneous small nodes create the spread).
        assert!(max / min < 4.0, "rates wildly unbalanced: {min:.2e}..{max:.2e}");
    }

    #[test]
    fn deterministic() {
        let a = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 20, 20));
        let b = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 20, 20));
        assert_eq!(a.cumulative_throughput, b.cumulative_throughput);
        assert_eq!(a.per_node_cpu, b.per_node_cpu);
    }

    #[test]
    fn empty_fault_plan_matches_baseline() {
        let params = ClusterParams::scaling_job(neptune_profile(), 20, 20);
        let base = simulate_cluster(&params);
        let faulted = simulate_cluster_with_faults(&params, &neptune_ha::FaultPlan::new(7), 100);
        assert_eq!(base.cumulative_throughput, faulted.cumulative_throughput);
        assert_eq!(base.per_node_cpu, faulted.per_node_cpu);
        assert_eq!(base.per_node_mem, faulted.per_node_mem);
    }

    #[test]
    fn killed_nodes_degrade_but_do_not_zero_throughput() {
        use neptune_ha::FaultEvent;
        // Saturated regime (jobs >> nodes) so pooled node CPU — not the
        // per-instance core cap — is the binding resource; losing nodes
        // then visibly shrinks cluster capacity.
        let params = ClusterParams::scaling_job(neptune_profile(), 20, 50);
        let mut plan = neptune_ha::FaultPlan::new(42);
        for node in [0usize, 5, 11, 17] {
            plan = plan.with_event(FaultEvent::KillNode { node, at_step: 10 });
        }
        let before = simulate_cluster_with_faults(&params, &plan, 9);
        let after = simulate_cluster_with_faults(&params, &plan, 10);
        let base = simulate_cluster(&params);
        // Before the kill step the plan is inert.
        assert_eq!(before.cumulative_throughput, base.cumulative_throughput);
        // After it, the survivors absorb the displaced instances: lower
        // cumulative rate, but every job still makes progress.
        assert!(
            after.cumulative_throughput < base.cumulative_throughput,
            "after {:.4e} vs base {:.4e}",
            after.cumulative_throughput,
            base.cumulative_throughput
        );
        assert!(after.per_job_throughput.iter().all(|&r| r > 0.0));
        // Dead nodes are idle in the report.
        for m in [0usize, 5, 11, 17] {
            assert_eq!(after.per_node_cpu[m], 0.0, "node {m} should be dead");
            assert_eq!(after.per_node_mem[m], 0.0, "node {m} should be dead");
        }
    }

    #[test]
    fn faulted_simulation_is_deterministic() {
        use neptune_ha::FaultEvent;
        let params = ClusterParams::scaling_job(neptune_profile(), 16, 16);
        let plan = neptune_ha::FaultPlan::new(3)
            .with_event(FaultEvent::KillNode { node: 2, at_step: 0 })
            .with_event(FaultEvent::KillNode { node: 9, at_step: 0 });
        let a = simulate_cluster_with_faults(&params, &plan, 0);
        let b = simulate_cluster_with_faults(&params, &plan, 0);
        assert_eq!(a.cumulative_throughput, b.cumulative_throughput);
        assert_eq!(a.per_job_throughput, b.per_job_throughput);
        assert_eq!(a.per_node_cpu, b.per_node_cpu);
    }
}
