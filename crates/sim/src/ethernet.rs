//! Ethernet/IP/TCP framing model.
//!
//! §I-A of the paper: *"Since these packets are processed in Ethernet-based
//! clusters, the small payload sizes results in a significant portion of
//! each Ethernet packet frame (with an MTU of 1500 bytes) being unused.
//! This contributes to lower throughputs due to network bandwidth
//! underutilization."*
//!
//! A payload handed to the kernel as one send is segmented into TCP
//! segments of at most `MTU - 40` bytes; every segment additionally pays
//! 38 bytes of Ethernet overhead (preamble 8, header 14, FCS 4, interframe
//! gap 12). A 50-byte message sent alone therefore occupies 128 wire bytes
//! — 39% efficiency — while a 1 MB batch reaches ~94.7%, which is how
//! buffering recovers the paper's 0.937 Gbps on a 1 Gbps link.

/// Ethernet MTU in bytes.
pub const MTU: usize = 1500;
/// TCP + IP header bytes per segment.
pub const TCP_IP_HEADER: usize = 40;
/// Per-frame Ethernet overhead: preamble(8) + header(14) + FCS(4) + IFG(12).
pub const ETHERNET_OVERHEAD: usize = 38;
/// Maximum TCP payload per segment.
pub const MSS: usize = MTU - TCP_IP_HEADER;

/// Number of TCP segments needed for a payload sent as one unit.
/// A zero-byte send still costs one segment (pure header).
pub fn frames_for_payload(payload: usize) -> usize {
    if payload == 0 {
        1
    } else {
        payload.div_ceil(MSS)
    }
}

/// Total wire bytes (including all framing) for a payload sent as one
/// kernel send.
pub fn wire_bytes(payload: usize) -> usize {
    let frames = frames_for_payload(payload);
    payload + frames * (TCP_IP_HEADER + ETHERNET_OVERHEAD)
}

/// Wire efficiency: useful payload / wire bytes.
pub fn efficiency(payload: usize) -> f64 {
    payload as f64 / wire_bytes(payload) as f64
}

/// Transmission time in seconds on a link of `bandwidth_bps` bits/s.
pub fn transmit_seconds(payload: usize, bandwidth_bps: f64) -> f64 {
    assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
    wire_bytes(payload) as f64 * 8.0 / bandwidth_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_message_wastes_most_of_the_frame() {
        // 50 B payload: one segment, 50 + 78 = 128 wire bytes.
        assert_eq!(frames_for_payload(50), 1);
        assert_eq!(wire_bytes(50), 128);
        assert!(efficiency(50) < 0.40);
    }

    #[test]
    fn full_segments_are_efficient() {
        let batch = 1 << 20; // 1 MB
        let frames = frames_for_payload(batch);
        assert_eq!(frames, batch.div_ceil(MSS));
        let eff = efficiency(batch);
        assert!(eff > 0.94 && eff < 0.96, "1 MB batch efficiency {eff}");
    }

    #[test]
    fn zero_payload_costs_one_header_frame() {
        assert_eq!(frames_for_payload(0), 1);
        assert_eq!(wire_bytes(0), TCP_IP_HEADER + ETHERNET_OVERHEAD);
    }

    #[test]
    fn boundary_at_mss() {
        assert_eq!(frames_for_payload(MSS), 1);
        assert_eq!(frames_for_payload(MSS + 1), 2);
        assert_eq!(wire_bytes(MSS), MSS + 78);
        assert_eq!(wire_bytes(MSS + 1), MSS + 1 + 2 * 78);
    }

    #[test]
    fn transmit_time_scales_with_bandwidth() {
        let t_1g = transmit_seconds(1 << 20, 1e9);
        let t_10g = transmit_seconds(1 << 20, 1e10);
        assert!((t_1g / t_10g - 10.0).abs() < 1e-9);
        // ~1 MB at 1 Gbps: a bit under 9 ms including framing.
        assert!(t_1g > 0.008 && t_1g < 0.010, "t = {t_1g}");
    }

    #[test]
    fn batching_amortizes_headers() {
        // 1000 x 50 B sent individually vs as one 50 KB batch.
        let individual: usize = (0..1000).map(|_| wire_bytes(50)).sum();
        let batched = wire_bytes(50 * 1000);
        assert!(
            individual as f64 / batched as f64 > 2.0,
            "batching should at least halve wire bytes: {individual} vs {batched}"
        );
    }
}
