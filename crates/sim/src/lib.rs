//! # neptune-sim
//!
//! Cluster simulator substrate for the NEPTUNE reproduction.
//!
//! The paper's evaluation (§IV) ran on *"an in-house cluster comprising 50
//! physical machines connected over a 1 Gbps LAN"*. That hardware is not
//! available, so the cluster-scale figures (5, 6, 9, 10) and the relay
//! comparisons at cluster scale are regenerated on this simulator, per the
//! substitution policy in DESIGN.md.
//!
//! ## What is modeled
//!
//! * **[`server::Server`]** — a FIFO resource with a service rate. Every
//!   node owns three: a CPU, a NIC transmit side, and a NIC receive side
//!   (full-duplex 1 Gbps, as in the paper's LAN). Batches arriving at a
//!   server queue behind its `next_free` time; utilization is accumulated
//!   busy time. This calendar-based service discipline *is* the
//!   discrete-event core: each `serve` call is one event in virtual time.
//! * **[`ethernet`]** — Ethernet/IP/TCP framing: MTU 1500, 40 B of
//!   TCP/IP headers per segment, 38 B of Ethernet overhead per frame
//!   (preamble, header, FCS, interframe gap). Small unbatched messages
//!   waste most of each frame — the §I-A "small packets" problem — while
//!   1 MB batches approach wire speed.
//! * **[`profile::EngineProfile`]** — the per-engine cost model: CPU cost
//!   per packet and per batch, thread hops per unit (NEPTUNE: 2 per
//!   *batch*, two-tier model; Storm: 4 per *tuple*, §IV-C), context-switch
//!   cost, bounded (watermark) vs unbounded queues, and per-send header
//!   overhead. Constants are calibrated so the single-node NEPTUNE relay
//!   reaches the paper's ~2 M packets/s (§VI) — see `profile.rs` for the
//!   derivation.
//! * **[`relay`]** — the three-stage message-relay pipeline of Fig. 1,
//!   used by Fig. 2 (buffer sweep) and Fig. 7 (engine comparison).
//! * **[`cluster`]** — N-node, K-job deployments for Fig. 5/6 (two-stage
//!   all-to-all jobs) and Fig. 9/10 (the four-stage manufacturing job).

pub mod cluster;
pub mod ethernet;
pub mod profile;
pub mod relay;
pub mod server;

pub use cluster::{simulate_cluster, ClusterParams, ClusterResult};
pub use ethernet::{frames_for_payload, wire_bytes, ETHERNET_OVERHEAD, MTU, TCP_IP_HEADER};
pub use profile::{neptune_profile, storm_profile, EngineProfile};
pub use relay::{simulate_relay, RelayParams, RelayResult};
pub use server::Server;
