//! Engine cost profiles and their calibration.
//!
//! The simulator does not re-run the engines; it charges virtual CPU and
//! NIC time according to a per-engine cost model. The constants below are
//! calibrated against the paper's anchor numbers:
//!
//! * **NEPTUNE single-node relay ≈ 2 M packets/s** (§VI). In the relay,
//!   the middle node pays one receive + one send per packet:
//!   `2 × 0.25 µs = 0.5 µs` → 2 M packets/s on one saturated worker core.
//! * **Bandwidth 0.937 Gbps with 1 MB buffers** — comes from the Ethernet
//!   framing model, not the profile.
//! * **Storm ≈ 8× slower on the manufacturing job** (Fig. 9). Storm's
//!   per-tuple path costs `per_packet + hops × ctx_switch` with four
//!   thread hops per tuple (§IV-C); NEPTUNE pays its two hops per
//!   *batch*. At 50 B messages this puts the Storm relay node at
//!   ~4.1 µs/packet vs NEPTUNE's 0.5 µs — the order-of-magnitude gap the
//!   paper measures.
//!
//! All constants are in microseconds of CPU per unit, or bytes.

/// Cost model for one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineProfile {
    /// Human-readable engine name.
    pub name: &'static str,
    /// CPU µs to serialize + emit one packet (sender side).
    pub per_packet_send_us: f64,
    /// CPU µs to deserialize + dispatch one packet (receiver side).
    pub per_packet_recv_us: f64,
    /// CPU µs charged once per network send (syscall + stack traversal).
    pub per_send_cpu_us: f64,
    /// Thread handoffs per *unit* (batch for NEPTUNE, tuple for Storm).
    pub thread_hops_per_unit: u32,
    /// CPU µs per thread handoff (context switch + cache refill).
    pub ctx_switch_us: f64,
    /// True when the unit of transfer is a batch (application-level
    /// buffering); false when every packet travels alone.
    pub batched: bool,
    /// Inbound queues are watermark-bounded (backpressure) when true;
    /// unbounded (Storm) when false.
    pub bounded_queues: bool,
    /// Extra CPU µs per packet for object allocation/GC work avoided by
    /// NEPTUNE's object reuse (§III-B3). Charged on every packet touch.
    pub alloc_overhead_us: f64,
    /// Framing bytes the engine itself adds per send (NEPTUNE frame
    /// header per batch; Storm tuple header per tuple).
    pub header_per_send: usize,
}

impl EngineProfile {
    /// CPU µs on the *sending* half for a unit of `n` packets.
    pub fn send_cpu_us(&self, n: u64) -> f64 {
        let per_packet = self.per_packet_send_us + self.alloc_overhead_us;
        let hops = if self.batched {
            self.thread_hops_per_unit as f64
        } else {
            self.thread_hops_per_unit as f64 * n as f64
        };
        n as f64 * per_packet + self.per_send_cpu_us + hops * self.ctx_switch_us / 2.0
    }

    /// CPU µs on the *receiving* half for a unit of `n` packets.
    pub fn recv_cpu_us(&self, n: u64) -> f64 {
        let per_packet = self.per_packet_recv_us + self.alloc_overhead_us;
        let hops = if self.batched {
            self.thread_hops_per_unit as f64
        } else {
            self.thread_hops_per_unit as f64 * n as f64
        };
        n as f64 * per_packet + self.per_send_cpu_us + hops * self.ctx_switch_us / 2.0
    }

    /// Engine-level bytes on the wire for a unit of `n` packets of
    /// `msg_size` serialized bytes (before Ethernet framing).
    pub fn unit_payload_bytes(&self, n: u64, msg_size: usize) -> usize {
        n as usize * msg_size + self.header_per_send
    }
}

/// NEPTUNE's calibrated profile.
pub fn neptune_profile() -> EngineProfile {
    EngineProfile {
        name: "NEPTUNE",
        per_packet_send_us: 0.25,
        per_packet_recv_us: 0.25,
        per_send_cpu_us: 15.0,   // one syscall + frame assembly per batch
        thread_hops_per_unit: 2, // two-tier model: worker -> IO (per batch)
        ctx_switch_us: 3.0,
        batched: true,
        bounded_queues: true,
        alloc_overhead_us: 0.0, // object reuse: no per-packet allocation
        header_per_send: 34,    // NEPTUNE frame header
    }
}

/// NEPTUNE with object reuse disabled (the §III-B3 ablation): every packet
/// pays allocation + reclamation work. The paper measured the reclamation
/// share dropping from 8.63 % to 0.79 % of processing time with reuse on —
/// 0.04 µs per packet on a 0.5 µs budget reproduces that ratio.
pub fn neptune_no_reuse_profile() -> EngineProfile {
    EngineProfile { alloc_overhead_us: 0.045, name: "NEPTUNE-noreuse", ..neptune_profile() }
}

/// NEPTUNE with batching disabled (Table I ablation): every packet is its
/// own unit, paying the per-send syscall and both thread hops.
pub fn neptune_unbatched_profile() -> EngineProfile {
    EngineProfile { batched: false, name: "NEPTUNE-unbatched", ..neptune_profile() }
}

/// Storm 0.9.x's calibrated profile. The context-switch charge is higher
/// than NEPTUNE's because Storm's per-tuple hops land on cold caches (a
/// different tuple every switch), where NEPTUNE's per-batch hops switch
/// once and then stream a warm batch (§III-B2's instruction-cache point).
pub fn storm_profile() -> EngineProfile {
    EngineProfile {
        name: "Storm",
        per_packet_send_us: 0.8,
        per_packet_recv_us: 0.8,
        per_send_cpu_us: 1.2,    // per-tuple send path (no batch to amortize)
        thread_hops_per_unit: 4, // §IV-C: four threads touch every tuple
        ctx_switch_us: 5.0,
        batched: false,
        bounded_queues: false,
        alloc_overhead_us: 0.35, // per-tuple object churn
        header_per_send: 34,     // per-tuple header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neptune_relay_node_budget_is_half_microsecond() {
        // The Fig. 1 relay's middle node: recv + send per packet. For a
        // 20k-packet batch the fixed costs amortize away and the paper's
        // ~2M packets/s budget (0.5 us/packet) must emerge.
        let p = neptune_profile();
        let n = 20_000u64;
        let per_packet = (p.send_cpu_us(n) + p.recv_cpu_us(n)) / n as f64;
        assert!((per_packet - 0.5).abs() < 0.01, "relay cost {per_packet} us/packet");
    }

    #[test]
    fn storm_per_tuple_cost_is_order_of_magnitude_higher() {
        let s = storm_profile();
        let n = neptune_profile();
        // One tuple through a relay node, each engine.
        let storm_cost = s.send_cpu_us(1) + s.recv_cpu_us(1);
        let neptune_cost = (n.send_cpu_us(20_000) + n.recv_cpu_us(20_000)) / 20_000.0;
        let ratio = storm_cost / neptune_cost;
        assert!(
            (10.0..60.0).contains(&ratio),
            "storm/neptune per-packet ratio {ratio} outside the paper's regime"
        );
    }

    #[test]
    fn unbatched_profile_pays_per_packet_hops() {
        let batched = neptune_profile();
        let unbatched = neptune_unbatched_profile();
        let n = 1000u64;
        assert!(
            unbatched.send_cpu_us(n) > batched.send_cpu_us(n) * 5.0,
            "per-packet hops must dominate"
        );
    }

    #[test]
    fn no_reuse_overhead_matches_gc_share() {
        // Paper §III-B3: reclamation share drops 8.63% -> 0.79% with reuse.
        let with = neptune_profile();
        let without = neptune_no_reuse_profile();
        let n = 20_000u64;
        let busy_with = with.send_cpu_us(n) + with.recv_cpu_us(n);
        let busy_without = without.send_cpu_us(n) + without.recv_cpu_us(n);
        let share = (busy_without - busy_with) / busy_without;
        assert!((0.05..0.20).contains(&share), "alloc share {share}");
    }

    #[test]
    fn payload_bytes_accounts_headers() {
        let p = neptune_profile();
        assert_eq!(p.unit_payload_bytes(100, 50), 5034);
        let s = storm_profile();
        assert_eq!(s.unit_payload_bytes(1, 50), 84);
    }

    #[test]
    fn storm_tuple_path_dominated_by_thread_hops() {
        // §IV-C attributes Storm's CPU cost to its threading model; the
        // profile must reflect that: hop cost > half the total per-tuple
        // cost.
        let s = storm_profile();
        let hop_cost = s.thread_hops_per_unit as f64 * s.ctx_switch_us;
        let total = s.send_cpu_us(1) + s.recv_cpu_us(1);
        assert!(hop_cost / total > 0.5, "hops {hop_cost} of total {total}");
    }
}
