//! The three-stage message relay of Fig. 1, simulated.
//!
//! *"A three-stage stream processing job ... simulates a message relay
//! where a stream processor in the second stage relays messages that it
//! receives from the stream source at stage 1 to a stream processor at
//! stage 3. The sender and receiver are deployed in the same Granules
//! resource whereas the message relay was deployed in a different resource
//! running on a separate physical machine."*
//!
//! Node 1 hosts the sender (stage A) and receiver (stage C), each on its
//! own worker core; node 2 hosts the relay (stage B). Each *unit* (a batch
//! for NEPTUNE, a tuple for Storm) flows A-cpu → node1-tx → node2-rx →
//! B-cpu → node2-tx → node1-rx → C-cpu, with every hop an event on the
//! corresponding [`Server`]. Distinct servers per stage let units pipeline:
//! unit `b+1` serializes while unit `b` is in flight, exactly like the
//! real engine's source pump running concurrently with the sink worker.
//!
//! Backpressure: with bounded queues, unit `b` may not leave the source
//! before unit `b - W` completed (`W` in-flight units, the watermark
//! budget). Without backpressure (Storm), the source free-runs at its own
//! CPU speed and queues build at the relay — latency then grows with run
//! length, which is exactly the Fig. 7 Storm behaviour.

use crate::ethernet::transmit_seconds;
use crate::profile::EngineProfile;
use crate::server::Server;

/// Relay experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct RelayParams {
    /// Engine cost model.
    pub profile: EngineProfile,
    /// Serialized message size in bytes.
    pub msg_size: usize,
    /// Application-level buffer capacity (bytes). Ignored by unbatched
    /// engines.
    pub buffer_bytes: usize,
    /// Flush-timer bound on batch fill time, seconds.
    pub flush_timer_s: f64,
    /// Watermark budget in bytes (bounds in-flight data when the engine
    /// has bounded queues).
    pub watermark_bytes: usize,
    /// Link bandwidth, bits/s (the paper's LAN: 1 Gbps).
    pub bandwidth_bps: f64,
    /// Virtual duration to simulate, seconds.
    pub duration_s: f64,
}

impl RelayParams {
    /// Paper-default parameters for the given engine and message size.
    pub fn new(profile: EngineProfile, msg_size: usize) -> Self {
        RelayParams {
            profile,
            msg_size,
            buffer_bytes: 1 << 20, // the paper's 1 MB default
            flush_timer_s: 0.010,
            watermark_bytes: 8 << 20,
            bandwidth_bps: 1e9,
            duration_s: 2.0,
        }
    }
}

/// Relay experiment results.
#[derive(Debug, Clone)]
pub struct RelayResult {
    /// Messages delivered to stage C per second.
    pub throughput_msgs_per_s: f64,
    /// Mean end-to-end latency, milliseconds.
    pub mean_latency_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Application-level bandwidth on the node1→node2 link (serialized
    /// payload incl. engine headers, excl. TCP/Ethernet framing), Gbps.
    /// This matches the paper's app-measured "bandwidth usage" whose
    /// ceiling at 1 MB buffers is 0.937 Gbps.
    pub bandwidth_gbps: f64,
    /// CPU utilization of node 1 (sender core + receiver core, averaged).
    pub cpu_node1: f64,
    /// CPU utilization of node 2 (relay core).
    pub cpu_node2: f64,
    /// Average packets per transfer unit (batching effectiveness).
    pub packets_per_unit: f64,
    /// Transfer units queued (arrived, unprocessed) at the relay at the
    /// nominal end of the run — growth here is the no-backpressure
    /// signature.
    pub final_relay_backlog: u64,
    /// Total messages delivered.
    pub messages: u64,
}

/// Simulate the relay pipeline.
pub fn simulate_relay(params: RelayParams) -> RelayResult {
    let p = params.profile;
    assert!(params.msg_size > 0, "message size must be positive");
    assert!(params.duration_s > 0.0);

    // Unit size: how many packets travel together.
    let n = if p.batched {
        let by_buffer = (params.buffer_bytes / params.msg_size).max(1) as u64;
        // The flush timer caps fill time: the source fills at its own CPU
        // speed, so n * per_packet_send must fit in the timer.
        let by_timer = ((params.flush_timer_s * 1e6) / p.per_packet_send_us).max(1.0) as u64;
        by_buffer.min(by_timer)
    } else {
        1
    };
    let unit_payload = p.unit_payload_bytes(n, params.msg_size);
    let tx_time = transmit_seconds(unit_payload, params.bandwidth_bps);

    // Per-unit CPU work in seconds.
    let src_work = p.send_cpu_us(n) * 1e-6;
    let relay_work = (p.recv_cpu_us(n) + p.send_cpu_us(n)) * 1e-6;
    let sink_work = p.recv_cpu_us(n) * 1e-6;

    // In-flight unit budget: bounded by the watermark *bytes* for large
    // units and by the bounded sender IO queue *depth* for small ones (the
    // engine's two flow-control points, §III-B4 — TCP watermarks plus the
    // "shared bounded buffers at IO threads").
    const IO_QUEUE_DEPTH: u64 = 32;
    let window = if p.bounded_queues {
        ((params.watermark_bytes / unit_payload.max(1)) as u64).clamp(2, IO_QUEUE_DEPTH)
    } else {
        u64::MAX
    };

    // One worker core per stage instance (sender and receiver share node 1
    // but run on distinct cores, like the real engine's pump thread and
    // sink worker).
    let mut cpu_src = Server::new("node1-cpu-sender");
    let mut cpu_sink = Server::new("node1-cpu-receiver");
    let mut cpu_relay = Server::new("node2-cpu-relay");
    let mut nic1_tx = Server::new("node1-tx");
    let mut nic1_rx = Server::new("node1-rx");
    let mut nic2_tx = Server::new("node2-tx");
    let mut nic2_rx = Server::new("node2-rx");

    let mut completions: Vec<f64> = Vec::new();
    let mut relay_arrivals: Vec<f64> = Vec::new();
    let mut relay_departures: Vec<f64> = Vec::new();
    let mut lat_first: Vec<f64> = Vec::new(); // oldest packet in the unit
    let mut lat_last: Vec<f64> = Vec::new(); // newest packet in the unit
    let mut payload_bytes_total = 0u64;

    let mut gen_cursor = 0.0f64; // source free to start the next unit
    let mut unit_index = 0u64;
    let max_units = 2_000_000u64; // hard cap against pathological params

    loop {
        // Backpressure gate.
        let gate = if window != u64::MAX && unit_index >= window {
            completions[(unit_index - window) as usize]
        } else {
            0.0
        };
        let t0 = gen_cursor.max(gate);
        if t0 >= params.duration_s || unit_index >= max_units {
            break;
        }
        // Source serializes the unit (fills the buffer).
        let t1 = cpu_src.serve(t0, src_work);
        gen_cursor = t1;
        // node1 -> node2.
        let t2 = nic1_tx.serve(t1, tx_time);
        let t3 = nic2_rx.serve(t2, tx_time);
        relay_arrivals.push(t3);
        // Relay processes and re-emits.
        let t4 = cpu_relay.serve(t3, relay_work);
        relay_departures.push(t4);
        // node2 -> node1.
        let t5 = nic2_tx.serve(t4, tx_time);
        let t6 = nic1_rx.serve(t5, tx_time);
        // Receiver consumes.
        let t7 = cpu_sink.serve(t6, sink_work);

        completions.push(t7);
        lat_first.push(t7 - t0);
        lat_last.push(t7 - t1);
        payload_bytes_total += unit_payload as u64;
        unit_index += 1;
    }

    assert!(unit_index > 0, "simulated zero units; duration too small");
    let horizon = completions.last().copied().expect("at least one unit");
    let messages = unit_index * n;
    let throughput = messages as f64 / horizon;

    // Latency: packets within a unit are generated uniformly over
    // [t0, t1]; mean latency of the unit = completion - midpoint.
    let mut mean_acc = 0.0;
    for i in 0..lat_first.len() {
        mean_acc += (lat_first[i] + lat_last[i]) / 2.0;
    }
    let mean_latency = mean_acc / lat_first.len() as f64;
    let mut worst: Vec<f64> = lat_first.clone();
    worst.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p99 = worst[((worst.len() as f64 * 0.99) as usize).min(worst.len() - 1)];

    // Backlog at the relay at the nominal end of the run (arrived but not
    // yet processed at t = duration).
    let arrived = relay_arrivals.iter().filter(|&&t| t <= params.duration_s).count() as u64;
    let processed = relay_departures.iter().filter(|&&t| t <= params.duration_s).count() as u64;
    let backlog = arrived.saturating_sub(processed);

    RelayResult {
        throughput_msgs_per_s: throughput,
        mean_latency_ms: mean_latency * 1e3,
        p99_latency_ms: p99 * 1e3,
        bandwidth_gbps: payload_bytes_total as f64 * 8.0 / horizon / 1e9,
        cpu_node1: (cpu_src.busy_time() + cpu_sink.busy_time()) / (2.0 * horizon),
        cpu_node2: cpu_relay.utilization(horizon),
        packets_per_unit: n as f64,
        final_relay_backlog: backlog,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{neptune_profile, neptune_unbatched_profile, storm_profile};

    #[test]
    fn neptune_small_messages_hit_paper_throughput() {
        // The paper's headline: ~2M packets/s for the single-node relay.
        let r = simulate_relay(RelayParams::new(neptune_profile(), 50));
        assert!(
            (1.5e6..3.0e6).contains(&r.throughput_msgs_per_s),
            "throughput {:.2e} outside the ~2M regime",
            r.throughput_msgs_per_s
        );
        // Backpressure keeps the relay backlog bounded by the watermark
        // window.
        assert!(r.final_relay_backlog < 16, "backlog {}", r.final_relay_backlog);
    }

    #[test]
    fn neptune_large_messages_saturate_the_link() {
        // >= 200 KB messages: the paper reports 0.937 Gbps of app-level
        // bandwidth on the 1 Gbps link.
        let r = simulate_relay(RelayParams::new(neptune_profile(), 200 * 1024));
        assert!(
            (0.90..0.96).contains(&r.bandwidth_gbps),
            "bandwidth {} Gbps, expected ~0.937",
            r.bandwidth_gbps
        );
    }

    #[test]
    fn storm_is_slower_and_builds_backlog() {
        let np = simulate_relay(RelayParams::new(neptune_profile(), 50));
        let st = simulate_relay(RelayParams::new(storm_profile(), 50));
        assert!(
            np.throughput_msgs_per_s / st.throughput_msgs_per_s > 4.0,
            "neptune {:.2e} vs storm {:.2e}",
            np.throughput_msgs_per_s,
            st.throughput_msgs_per_s
        );
        assert!(
            st.final_relay_backlog > 1_000,
            "no-backpressure must build a large backlog, got {}",
            st.final_relay_backlog
        );
        assert!(
            st.mean_latency_ms > 10.0 * np.mean_latency_ms,
            "storm latency must explode: {} vs {}",
            st.mean_latency_ms,
            np.mean_latency_ms
        );
    }

    #[test]
    fn bigger_buffers_raise_throughput_and_latency() {
        let mut small = RelayParams::new(neptune_profile(), 50);
        small.buffer_bytes = 1024;
        let mut large = RelayParams::new(neptune_profile(), 50);
        large.buffer_bytes = 1 << 20;
        let rs = simulate_relay(small);
        let rl = simulate_relay(large);
        assert!(
            rl.throughput_msgs_per_s > rs.throughput_msgs_per_s * 1.5,
            "1MB {:.2e} vs 1KB {:.2e}",
            rl.throughput_msgs_per_s,
            rs.throughput_msgs_per_s
        );
        assert!(
            rl.mean_latency_ms > rs.mean_latency_ms,
            "queueing delay grows with buffer size: {} vs {}",
            rl.mean_latency_ms,
            rs.mean_latency_ms
        );
    }

    #[test]
    fn unbatched_neptune_collapses() {
        // Table I / Fig 2: without batching, per-message fixed costs and
        // context switches dominate.
        let b = simulate_relay(RelayParams::new(neptune_profile(), 50));
        let u = simulate_relay(RelayParams::new(neptune_unbatched_profile(), 50));
        assert!(
            b.throughput_msgs_per_s / u.throughput_msgs_per_s > 10.0,
            "batched {:.2e} vs unbatched {:.2e}",
            b.throughput_msgs_per_s,
            u.throughput_msgs_per_s
        );
        assert_eq!(u.packets_per_unit, 1.0);
    }

    #[test]
    fn flush_timer_caps_batch_fill() {
        let mut p = RelayParams::new(neptune_profile(), 50);
        p.flush_timer_s = 0.001; // 1 ms
        let r = simulate_relay(p);
        // Fill time of a unit = n * 0.25us must be <= 1 ms -> n <= 4000.
        assert!(r.packets_per_unit <= 4000.0);
    }

    #[test]
    fn latency_has_sane_floor_and_ordering() {
        let r = simulate_relay(RelayParams::new(neptune_profile(), 400));
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.p99_latency_ms >= r.mean_latency_ms);
        // With the high-throughput 1 MB configuration the paper sees tens
        // of ms (p99 < 87.8 ms at 10 KB). Sanity: below 200 ms here.
        assert!(r.p99_latency_ms < 200.0, "p99 {}", r.p99_latency_ms);
    }

    #[test]
    fn midrange_buffer_keeps_latency_under_10ms() {
        // Fig. 2's observation: "with a lower, middle-range buffer sizes
        // like 16 KB, the observed latency is less than 10 ms for all
        // message sizes."
        for &size in &[50usize, 200, 400, 1024, 10 * 1024] {
            let mut p = RelayParams::new(neptune_profile(), size);
            p.buffer_bytes = 16 * 1024;
            let r = simulate_relay(p);
            assert!(
                r.mean_latency_ms < 10.0,
                "16KB buffer, {size}B msgs: mean latency {} ms",
                r.mean_latency_ms
            );
        }
    }

    #[test]
    fn cpu_utilization_reported() {
        let r = simulate_relay(RelayParams::new(neptune_profile(), 50));
        // The relay node is the CPU bottleneck at small messages.
        assert!(r.cpu_node2 > 0.8, "relay cpu {}", r.cpu_node2);
        assert!(r.cpu_node1 > 0.0 && r.cpu_node1 <= 1.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_relay(RelayParams::new(neptune_profile(), 200));
        let b = simulate_relay(RelayParams::new(neptune_profile(), 200));
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.throughput_msgs_per_s, b.throughput_msgs_per_s);
    }
}
