//! The discrete-event service primitive.
//!
//! A [`Server`] models any serially-shared resource — a CPU, a NIC
//! direction, a disk — by tracking when it next becomes free in virtual
//! time. `serve(arrival, work)` is one simulation event: the request waits
//! until the server frees up, occupies it for `work` seconds, and the
//! completion time comes back. Busy time accumulates for utilization
//! reporting (the paper's Fig. 10 CPU% is exactly busy/elapsed).

/// Virtual time in seconds.
pub type SimTime = f64;

/// A FIFO resource in virtual time.
#[derive(Debug, Clone)]
pub struct Server {
    name: String,
    next_free: SimTime,
    busy: f64,
    served: u64,
}

impl Server {
    /// New idle server.
    pub fn new(name: impl Into<String>) -> Self {
        Server { name: name.into(), next_free: 0.0, busy: 0.0, served: 0 }
    }

    /// The server's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serve a request arriving at `arrival` needing `work` seconds of
    /// exclusive service. Returns the completion time.
    pub fn serve(&mut self, arrival: SimTime, work: f64) -> SimTime {
        assert!(work >= 0.0, "work must be non-negative");
        assert!(arrival >= 0.0, "arrival must be non-negative");
        let start = self.next_free.max(arrival);
        self.next_free = start + work;
        self.busy += work;
        self.served += 1;
        self.next_free
    }

    /// When the server next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        (self.busy / horizon).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = Server::new("cpu");
        let done = s.serve(5.0, 2.0);
        assert_eq!(done, 7.0);
        assert_eq!(s.busy_time(), 2.0);
        assert_eq!(s.served(), 1);
    }

    #[test]
    fn busy_server_queues_requests() {
        let mut s = Server::new("nic");
        assert_eq!(s.serve(0.0, 3.0), 3.0);
        // Arrives at 1.0 but must wait until 3.0.
        assert_eq!(s.serve(1.0, 2.0), 5.0);
        // Arrives after the server freed: starts immediately.
        assert_eq!(s.serve(10.0, 1.0), 11.0);
        assert_eq!(s.busy_time(), 6.0);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut s = Server::new("cpu");
        s.serve(0.0, 2.5);
        s.serve(5.0, 2.5);
        assert!((s.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(1.0), 1.0, "clamped at 100%");
    }

    #[test]
    fn zero_work_requests_pass_through() {
        let mut s = Server::new("x");
        assert_eq!(s.serve(4.0, 0.0), 4.0);
        assert_eq!(s.busy_time(), 0.0);
    }

    #[test]
    fn throughput_matches_service_rate() {
        // A saturated server completes work at exactly 1/service_time.
        let mut s = Server::new("cpu");
        let per_item = 1e-6;
        let mut t = 0.0;
        for _ in 0..100_000 {
            t = s.serve(0.0, per_item);
        }
        let rate = 100_000.0 / t;
        assert!((rate - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_rejected() {
        Server::new("x").serve(0.0, -1.0);
    }
}
