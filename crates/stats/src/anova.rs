//! One-way analysis of variance (ANOVA).
//!
//! Tukey's HSD (used by the paper's compression study, §III-B5) is a
//! post-hoc procedure on top of a one-way ANOVA: the HSD statistic uses the
//! ANOVA's pooled within-group mean square error and its error degrees of
//! freedom. This module computes the full ANOVA table.

use crate::descriptive::Summary;
use crate::special::regularized_incomplete_beta;

/// The classic one-way ANOVA decomposition.
#[derive(Debug, Clone, Copy)]
pub struct AnovaResult {
    /// Number of groups `k`.
    pub groups: usize,
    /// Total number of observations `N`.
    pub total_n: usize,
    /// Between-group sum of squares.
    pub ss_between: f64,
    /// Within-group (error) sum of squares.
    pub ss_within: f64,
    /// Between-group degrees of freedom (`k - 1`).
    pub df_between: f64,
    /// Within-group degrees of freedom (`N - k`).
    pub df_within: f64,
    /// Mean square between (`ss_between / df_between`).
    pub ms_between: f64,
    /// Mean square within / pooled error variance (`ss_within / df_within`).
    pub ms_within: f64,
    /// F statistic.
    pub f: f64,
    /// p-value of the F statistic (upper tail).
    pub p_value: f64,
}

/// Upper-tail probability of the F distribution via the incomplete beta
/// function: `P(F > f) = I_{d2/(d2 + d1 f)}(d2/2, d1/2)`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    regularized_incomplete_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)).clamp(0.0, 1.0)
}

/// Perform a one-way ANOVA over `groups`, each a sample of observations.
///
/// Panics unless there are at least two groups, every group has at least
/// one observation, and the error degrees of freedom are positive.
pub fn one_way_anova(groups: &[&[f64]]) -> AnovaResult {
    assert!(groups.len() >= 2, "ANOVA needs at least two groups");
    assert!(groups.iter().all(|g| !g.is_empty()), "ANOVA groups must be nonempty");
    let k = groups.len();
    let total_n: usize = groups.iter().map(|g| g.len()).sum();
    assert!(total_n > k, "ANOVA needs N > k for positive error degrees of freedom");

    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / total_n as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let s = Summary::from_slice(g);
        ss_between += g.len() as f64 * (s.mean - grand_mean).powi(2);
        ss_within += s.variance * (g.len() as f64 - 1.0);
    }
    let df_between = (k - 1) as f64;
    let df_within = (total_n - k) as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    let f = if ms_within > 0.0 { ms_between / ms_within } else { f64::INFINITY };
    let p_value = if ms_within > 0.0 { f_sf(f, df_between, df_within) } else { 0.0 };
    AnovaResult {
        groups: k,
        total_n,
        ss_between,
        ss_within,
        df_between,
        df_within,
        ms_between,
        ms_within,
        f,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anova_matches_hand_computation() {
        // Classic textbook example with equal group sizes.
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way_anova(&[&g1, &g2, &g3]);
        assert_eq!(r.groups, 3);
        assert_eq!(r.total_n, 18);
        // Hand computation: grand mean = 8, SSB = 84, SSW = 68,
        // F = (84/2)/(68/15) = 9.264...
        assert!((r.ss_between - 84.0).abs() < 1e-9, "ssb {}", r.ss_between);
        assert!((r.ss_within - 68.0).abs() < 1e-9, "ssw {}", r.ss_within);
        assert!((r.f - 9.2647).abs() < 1e-3, "f {}", r.f);
        // R: p = 0.00238
        assert!((r.p_value - 0.00238).abs() < 2e-4, "p {}", r.p_value);
    }

    #[test]
    fn identical_groups_give_f_near_zero() {
        let g = [5.0, 5.2, 4.8, 5.1, 4.9];
        let r = one_way_anova(&[&g, &g, &g]);
        assert!(r.f < 1e-20);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn separated_groups_are_significant() {
        let g1 = [1.0, 1.1, 0.9, 1.0];
        let g2 = [5.0, 5.1, 4.9, 5.0];
        let g3 = [9.0, 9.1, 8.9, 9.0];
        let r = one_way_anova(&[&g1, &g2, &g3]);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn f_sf_reference_points() {
        // F table: P(F(2,15) > 3.68) ≈ 0.05, P(F(1,10) > 4.96) ≈ 0.05.
        assert!((f_sf(3.68, 2.0, 15.0) - 0.05).abs() < 2e-3);
        assert!((f_sf(4.96, 1.0, 10.0) - 0.05).abs() < 2e-3);
        assert_eq!(f_sf(0.0, 3.0, 7.0), 1.0);
    }

    #[test]
    fn unbalanced_groups_supported() {
        let g1 = [2.0, 3.0];
        let g2 = [2.5, 3.5, 2.8, 3.1, 2.9];
        let g3 = [10.0, 11.0, 9.5];
        let r = one_way_anova(&[&g1, &g2, &g3]);
        assert_eq!(r.total_n, 10);
        assert!(r.p_value < 0.001);
        // Sum of squares decomposition must match the total SS.
        let all: Vec<f64> =
            [&g1[..], &g2[..], &g3[..]].iter().flat_map(|g| g.iter().copied()).collect();
        let s = Summary::from_slice(&all);
        let ss_total = s.variance * (s.n as f64 - 1.0);
        assert!((r.ss_between + r.ss_within - ss_total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two groups")]
    fn rejects_single_group() {
        one_way_anova(&[&[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_group() {
        one_way_anova(&[&[1.0, 2.0], &[]]);
    }
}
