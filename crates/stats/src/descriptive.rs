//! Descriptive statistics: batch summaries, single-pass online accumulation
//! (Welford), percentiles, and fixed-bin histograms.
//!
//! Every number reported in the paper's tables is a mean ± standard
//! deviation over repeated windows (e.g. Table I reports context switches
//! per 5 s as mean and std-dev); the latency claims are percentiles (p99 <
//! 87.8 ms). These helpers are shared by the benchmark harness and by the
//! runtime's metrics module.

/// Batch summary of a sample: count, mean, variance (sample, n-1), etc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (divides by n-1; 0 when n < 2).
    pub variance: f64,
    /// Smallest observation (`NaN` when empty).
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    pub max: f64,
}

impl Summary {
    /// Compute a summary over a slice. Empty slices yield `n = 0` and NaN
    /// extrema.
    pub fn from_slice(data: &[f64]) -> Self {
        let n = data.len();
        if n == 0 {
            return Summary { n: 0, mean: 0.0, variance: 0.0, min: f64::NAN, max: f64::NAN };
        }
        let mut acc = OnlineStats::new();
        for &x in data {
            acc.push(x);
        }
        Summary {
            n,
            mean: acc.mean(),
            variance: acc.sample_variance(),
            min: acc.min(),
            max: acc.max(),
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`; 0 when n == 0).
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Single-pass accumulator using Welford's algorithm — numerically stable
/// mean/variance without storing the sample. Used by the runtime's metric
/// counters where retaining every observation would defeat the paper's
/// frugal-memory goals.
#[derive(Debug, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile with linear interpolation between closest ranks (the "type 7"
/// estimator used by R and NumPy). `p` is in `[0, 100]`.
///
/// Sorts a copy of the data; for repeated queries over the same sample sort
/// once and use [`percentile_of_sorted`].
pub fn percentile(data: &[f64], p: f64) -> f64 {
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&v, p)
}

/// Percentile over data that is already sorted ascending.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100], got {p}");
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = rank - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        }
    }
}

/// Fixed-width-bin histogram over a closed range, with under/overflow bins.
///
/// Used by the latency harness: end-to-end latencies are accumulated into a
/// histogram whose quantiles feed the paper's p99 claims without retaining
/// millions of raw samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be nonempty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against floating point landing exactly on `hi`.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q` in `[0,1]`) assuming uniform density within
    /// each bin. Returns `lo`/`hi` boundary values when the quantile falls
    /// in the underflow/overflow mass.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return f64::NAN;
        }
        let target = q * self.count as f64;
        let mut seen = self.underflow as f64;
        if target <= seen {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if target <= next && c > 0 {
                let frac = (target - seen) / c as f64;
                return self.lo + (i as f64 + frac) * width;
            }
            seen = next;
        }
        self.hi
    }

    /// Iterate over `(bin_lower_edge, count)` pairs.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::from_slice(&[]);
        assert_eq!(e.n, 0);
        assert!(e.min.is_nan());
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let data = [1.0, -2.5, 3.7, 0.0, 9.9, -8.1, 4.4];
        let mut o = OnlineStats::new();
        for &x in &data {
            o.push(x);
        }
        let s = Summary::from_slice(&data);
        assert!((o.mean() - s.mean).abs() < 1e-12);
        assert!((o.sample_variance() - s.variance).abs() < 1e-12);
        assert_eq!(o.min(), s.min);
        assert_eq!(o.max(), s.max);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut left = OnlineStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = OnlineStats::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut all = OnlineStats::new();
        for &x in a.iter().chain(b.iter()) {
            all.push(x);
        }
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        a.push(7.0);
        let before = (a.mean(), a.sample_variance(), a.count());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.mean(), a.sample_variance(), a.count()));

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 0.0), 15.0);
        assert_eq!(percentile(&data, 100.0), 50.0);
        assert_eq!(percentile(&data, 50.0), 35.0);
        // Type-7: rank = 0.25 * 4 = 1 exactly -> 20.0
        assert_eq!(percentile(&data, 25.0), 20.0);
        // rank = 0.4 * 4 = 1.6 -> 20 + 0.6*(35-20) = 29
        assert!((percentile(&data, 40.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_and_empty() {
        assert_eq!(percentile(&[42.0], 73.0), 42.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn histogram_counts_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0); // at hi -> overflow
        h.record(99.0);
        assert_eq!(h.count(), 13);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let bins: Vec<_> = h.iter_bins().collect();
        assert_eq!(bins.len(), 10);
        assert!(bins.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn histogram_quantile_tracks_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..10_000 {
            h.record((i % 100) as f64 + 0.5);
        }
        let median = h.quantile(0.5);
        assert!((median - 50.0).abs() < 1.5, "median {median}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 99.0).abs() < 1.5, "p99 {p99}");
    }

    #[test]
    fn histogram_quantile_empty_is_nan() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_nan());
    }
}
