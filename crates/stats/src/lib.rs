//! # neptune-stats
//!
//! Statistics substrate for the NEPTUNE reproduction.
//!
//! The NEPTUNE paper validates several of its experimental claims with
//! classical statistics:
//!
//! * the compression study (§III-B5) uses **Tukey's HSD** multiple
//!   comparison procedure over throughput/latency/bandwidth samples,
//! * the cluster-wide resource consumption study (Fig. 10) uses **one- and
//!   two-tailed t-tests** over per-node CPU and memory utilization,
//! * every reported number is a mean with a standard deviation (Table I).
//!
//! This crate implements those procedures from scratch — descriptive
//! statistics, Student/Welch t-tests with exact p-values via the regularized
//! incomplete beta function, one-way ANOVA, and the Tukey HSD procedure with
//! a studentized-range CDF evaluated by numerical integration — so the
//! benchmark harness can print the same statistical verdicts the paper
//! reports.
//!
//! ## Quick example
//!
//! ```
//! use neptune_stats::{Summary, welch_t_test, Tail};
//!
//! let a = [10.1, 9.8, 10.3, 10.0, 9.9];
//! let b = [12.0, 12.2, 11.9, 12.1, 12.3];
//! let t = welch_t_test(&a, &b, Tail::TwoSided);
//! assert!(t.p_value < 0.001);
//! let s = Summary::from_slice(&a);
//! assert!((s.mean - 10.02).abs() < 1e-9);
//! ```

pub mod anova;
pub mod descriptive;
pub mod rate;
pub mod special;
pub mod ttest;
pub mod tukey;

pub use anova::{one_way_anova, AnovaResult};
pub use descriptive::{percentile, Histogram, OnlineStats, Summary};
pub use rate::{Ewma, RateMeter};
pub use special::{ln_gamma, regularized_incomplete_beta, student_t_cdf};
pub use ttest::{one_sample_t_test, student_t_test, welch_t_test, TTestResult, Tail};
pub use tukey::{tukey_hsd, PairwiseComparison, TukeyResult};

/// Conventional significance level used throughout the paper's analysis.
pub const ALPHA: f64 = 0.05;
