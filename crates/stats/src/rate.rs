//! Rate estimation: sliding-window throughput meters and exponential
//! moving averages.
//!
//! Throughput is the paper's primary metric; these meters turn raw event
//! counts into the rates the harness reports. The sliding-window meter
//! gives the exact mean rate over the trailing window (what the paper's
//! per-interval plots show); the EWMA smooths jittery series like the
//! Fig. 4 staircase samples.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Sliding-window event-rate meter over wall-clock time.
#[derive(Debug)]
pub struct RateMeter {
    window: Duration,
    /// (timestamp, count) increments inside the window.
    events: VecDeque<(Instant, u64)>,
    total_in_window: u64,
}

impl RateMeter {
    /// Meter over the trailing `window`.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "rate window must be non-zero");
        RateMeter { window, events: VecDeque::new(), total_in_window: 0 }
    }

    /// Record `count` events now.
    pub fn record(&mut self, count: u64) {
        self.record_at(Instant::now(), count);
    }

    /// Record `count` events at an explicit instant (testing, replay).
    pub fn record_at(&mut self, at: Instant, count: u64) {
        self.events.push_back((at, count));
        self.total_in_window += count;
        self.evict(at);
    }

    fn evict(&mut self, now: Instant) {
        while let Some(&(t, c)) = self.events.front() {
            if now.duration_since(t) > self.window {
                self.events.pop_front();
                self.total_in_window -= c;
            } else {
                break;
            }
        }
    }

    /// Events per second over the trailing window, as of `now`.
    pub fn rate_at(&mut self, now: Instant) -> f64 {
        self.evict(now);
        if self.events.is_empty() {
            return 0.0;
        }
        self.total_in_window as f64 / self.window.as_secs_f64()
    }

    /// Events per second over the trailing window.
    pub fn rate(&mut self) -> f64 {
        self.rate_at(Instant::now())
    }

    /// Events currently inside the window.
    pub fn count_in_window(&self) -> u64 {
        self.total_in_window
    }
}

/// Exponentially weighted moving average with a configurable smoothing
/// factor `alpha` in `(0, 1]` (1 = no smoothing).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// EWMA with smoothing factor `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold in one observation; returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_measures_its_rate() {
        let mut meter = RateMeter::new(Duration::from_secs(1));
        let t0 = Instant::now();
        // 1000 events spread over exactly one window.
        for i in 0..1000 {
            meter.record_at(t0 + Duration::from_micros(i * 1000), 1);
        }
        let rate = meter.rate_at(t0 + Duration::from_millis(999));
        assert!((rate - 1000.0).abs() < 50.0, "rate {rate}");
    }

    #[test]
    fn old_events_leave_the_window() {
        let mut meter = RateMeter::new(Duration::from_millis(100));
        let t0 = Instant::now();
        meter.record_at(t0, 500);
        assert_eq!(meter.count_in_window(), 500);
        // 200 ms later the burst has aged out.
        let rate = meter.rate_at(t0 + Duration::from_millis(200));
        assert_eq!(rate, 0.0);
        assert_eq!(meter.count_in_window(), 0);
    }

    #[test]
    fn batch_counts_accumulate() {
        let mut meter = RateMeter::new(Duration::from_secs(1));
        let t0 = Instant::now();
        meter.record_at(t0, 300);
        meter.record_at(t0 + Duration::from_millis(10), 700);
        let rate = meter.rate_at(t0 + Duration::from_millis(20));
        assert!((rate - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        RateMeter::new(Duration::ZERO);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        assert!(e.value().is_none());
        for _ in 0..50 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_seeds() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn ewma_smooths_steps() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        let after_one = e.update(100.0);
        assert_eq!(after_one, 50.0);
        let after_two = e.update(100.0);
        assert_eq!(after_two, 75.0);
        e.reset();
        assert!(e.value().is_none());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
