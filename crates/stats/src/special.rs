//! Special functions needed by the statistical tests.
//!
//! Everything here is implemented from scratch: the Lanczos approximation of
//! `ln Γ(x)`, the continued-fraction evaluation of the regularized
//! incomplete beta function `I_x(a, b)` (Lentz's method, as in *Numerical
//! Recipes*), the Student-t CDF expressed through `I_x`, and the standard
//! normal CDF via a rational-polynomial erf approximation.

/// Natural log of the gamma function, via the Lanczos approximation (g=7,
/// n=9 coefficients). Accurate to ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, kept digit-for-digit as published
    // (a few carry more digits than f64 resolves).
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `0 <= x <= 1`,
/// `a, b > 0`. Continued fraction per Numerical Recipes §6.4.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly when x < (a+1)/(a+b+2), otherwise
    // use the symmetry relation for faster convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz's method for the incomplete-beta continued fraction.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// `P(T <= t)` computed through the incomplete beta function:
/// for t >= 0, `P = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p_tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p_tail
    } else {
        p_tail
    }
}

/// Standard normal CDF `Φ(z)` via the Abramowitz & Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7), refined by one Newton step on the
/// complementary error function for ~1e-10 accuracy in the central region.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Probability density of the standard normal distribution.
pub fn standard_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// CDF of the studentized range distribution `q(k, df)` evaluated by
/// numerical integration (Gauss–Legendre over the outer integral, with the
/// inner integral expressed through Φ). This is the distribution underlying
/// Tukey's HSD procedure.
///
/// The implementation follows the classical double-integral formulation:
///
/// ```text
/// P(Q <= q) = ∫ f_s(s) [ k ∫ φ(z) (Φ(z) - Φ(z - q·s))^{k-1} dz ] ds
/// ```
///
/// where `f_s` is the density of `S = sqrt(χ²_df / df)`. For `df = ∞` the
/// outer integral collapses to the inner one at `s = 1`.
pub fn studentized_range_cdf(q: f64, k: usize, df: f64) -> f64 {
    assert!(k >= 2, "studentized range needs at least 2 groups");
    if q <= 0.0 {
        return 0.0;
    }
    if df.is_infinite() || df > 5_000.0 {
        return srange_inner(q, k);
    }
    // Density of S = sqrt(V/df), V ~ chi^2_df:
    //   f(s) = 2 (df/2)^{df/2} / Γ(df/2) * s^{df-1} e^{-df s^2 / 2}
    let half_df = df / 2.0;
    let ln_const = (2.0f64).ln() + half_df * half_df.ln() - ln_gamma(half_df);
    // Integrate s over (0, s_max). The density is concentrated near 1 with
    // std ~ 1/sqrt(2 df); 0..=4 covers all practical df >= 1.
    let (lo, hi) = (1e-8, 4.0);
    let n = 160usize;
    let h = (hi - lo) / n as f64;
    let mut total = 0.0;
    // Composite Simpson's rule.
    for i in 0..=n {
        let s = lo + i as f64 * h;
        let w = if i == 0 || i == n {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        let ln_density = ln_const + (df - 1.0) * s.ln() - half_df * s * s;
        let fs = ln_density.exp();
        if fs > 0.0 {
            total += w * fs * srange_inner(q * s, k);
        }
    }
    (total * h / 3.0).clamp(0.0, 1.0)
}

/// Inner integral of the studentized range CDF:
/// `k ∫ φ(z) (Φ(z) - Φ(z - w))^{k-1} dz`.
fn srange_inner(w: f64, k: usize) -> f64 {
    // Integrand decays like φ(z); [-8, 8+w_cap] covers the mass.
    let lo = -8.0f64;
    let hi = 8.0f64;
    let n = 256usize;
    let h = (hi - lo) / n as f64;
    let mut total = 0.0;
    for i in 0..=n {
        let z = lo + i as f64 * h;
        let weight = if i == 0 || i == n {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        let inner = standard_normal_cdf(z) - standard_normal_cdf(z - w);
        total += weight * standard_normal_pdf(z) * inner.powi(k as i32 - 1);
    }
    (k as f64 * total * h / 3.0).clamp(0.0, 1.0)
}

/// Upper-tail p-value for an observed studentized range statistic.
pub fn studentized_range_sf(q: f64, k: usize, df: f64) -> f64 {
    (1.0 - studentized_range_cdf(q, k, df)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-10);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.3, 1.7, 4.2, 10.9, 57.0] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 3.0, 0.9)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x (Beta(1,1) is uniform).
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.99] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_symmetry_and_median() {
        assert_close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        for &(t, df) in &[(1.3, 4.0), (2.7, 11.0), (0.4, 1.0)] {
            let upper = student_t_cdf(t, df);
            let lower = student_t_cdf(-t, df);
            assert_close(upper + lower, 1.0, 1e-10);
        }
    }

    #[test]
    fn student_t_cdf_known_quantiles() {
        // Classical t-table: P(T_10 <= 2.228) = 0.975, P(T_1 <= 6.314) = 0.95.
        assert_close(student_t_cdf(2.228, 10.0), 0.975, 5e-4);
        assert_close(student_t_cdf(6.314, 1.0), 0.95, 5e-4);
        assert_close(student_t_cdf(1.96, 1e9), 0.975, 1e-3); // approaches normal
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert_close(standard_normal_cdf(0.0), 0.5, 1e-9);
        assert_close(standard_normal_cdf(1.959_963_985), 0.975, 1e-6);
        assert_close(standard_normal_cdf(-1.959_963_985), 0.025, 1e-6);
        assert_close(standard_normal_cdf(3.0), 0.998_650_1, 1e-6);
    }

    #[test]
    fn erf_odd_function() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert_close(erf(-x), -erf(x), 1e-12);
        }
    }

    #[test]
    fn studentized_range_matches_table_values() {
        // Critical values from standard q-tables: q_{0.05}(k=3, df=10) = 3.88,
        // q_{0.05}(k=5, df=20) = 4.23, q_{0.05}(k=2, df=inf) = 2.77.
        assert_close(studentized_range_cdf(3.88, 3, 10.0), 0.95, 0.01);
        assert_close(studentized_range_cdf(4.23, 5, 20.0), 0.95, 0.01);
        assert_close(studentized_range_cdf(2.77, 2, f64::INFINITY), 0.95, 0.01);
    }

    #[test]
    fn studentized_range_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in 1..40 {
            let q = i as f64 * 0.25;
            let p = studentized_range_cdf(q, 4, 12.0);
            assert!(p >= prev - 1e-12, "CDF must be nondecreasing");
            prev = p;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn studentized_range_sf_complements_cdf() {
        let q = 3.1;
        let cdf = studentized_range_cdf(q, 3, 15.0);
        let sf = studentized_range_sf(q, 3, 15.0);
        assert_close(cdf + sf, 1.0, 1e-12);
    }
}
