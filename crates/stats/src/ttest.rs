//! Student's and Welch's t-tests with exact p-values.
//!
//! Fig. 10 of the paper compares cluster-wide CPU consumption of NEPTUNE and
//! Storm with a *one-tailed* t-test (p < 0.0001) and memory consumption with
//! a *two-tailed* t-test (p = 0.0863). The benchmark harness reruns the same
//! procedure over the simulated cluster's per-node samples.

use crate::descriptive::Summary;
use crate::special::student_t_cdf;

/// Which tail(s) of the t distribution contribute to the p-value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// H1: mean(a) < mean(b) (or mean < mu0 for one-sample).
    Less,
    /// H1: mean(a) > mean(b) (or mean > mu0 for one-sample).
    Greater,
    /// H1: means differ.
    TwoSided,
}

/// Result of a t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (possibly fractional for Welch).
    pub df: f64,
    /// The p-value under the requested alternative.
    pub p_value: f64,
    /// Difference of means `mean(a) - mean(b)` (or `mean - mu0`).
    pub mean_difference: f64,
    /// Which alternative was tested.
    pub tail: Tail,
}

impl TTestResult {
    /// True when the p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn p_from_t(t: f64, df: f64, tail: Tail) -> f64 {
    match tail {
        Tail::Less => student_t_cdf(t, df),
        Tail::Greater => 1.0 - student_t_cdf(t, df),
        Tail::TwoSided => 2.0 * (1.0 - student_t_cdf(t.abs(), df)),
    }
    .clamp(0.0, 1.0)
}

/// Welch's unequal-variance t-test between two independent samples.
///
/// Panics if either sample has fewer than two observations or both have
/// zero variance (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64], tail: Tail) -> TTestResult {
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    assert!(sa.n >= 2 && sb.n >= 2, "welch_t_test needs >= 2 observations per group");
    let va_n = sa.variance / sa.n as f64;
    let vb_n = sb.variance / sb.n as f64;
    let se2 = va_n + vb_n;
    assert!(se2 > 0.0, "both samples have zero variance; t statistic undefined");
    let t = (sa.mean - sb.mean) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / (va_n * va_n / (sa.n as f64 - 1.0) + vb_n * vb_n / (sb.n as f64 - 1.0));
    TTestResult { t, df, p_value: p_from_t(t, df, tail), mean_difference: sa.mean - sb.mean, tail }
}

/// Student's pooled-variance t-test between two independent samples
/// (assumes equal variances).
pub fn student_t_test(a: &[f64], b: &[f64], tail: Tail) -> TTestResult {
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    assert!(sa.n >= 2 && sb.n >= 2, "student_t_test needs >= 2 observations per group");
    let df = (sa.n + sb.n - 2) as f64;
    let pooled = ((sa.n as f64 - 1.0) * sa.variance + (sb.n as f64 - 1.0) * sb.variance) / df;
    assert!(pooled > 0.0, "pooled variance is zero; t statistic undefined");
    let se = (pooled * (1.0 / sa.n as f64 + 1.0 / sb.n as f64)).sqrt();
    let t = (sa.mean - sb.mean) / se;
    TTestResult { t, df, p_value: p_from_t(t, df, tail), mean_difference: sa.mean - sb.mean, tail }
}

/// One-sample t-test of `mean(sample) == mu0`.
pub fn one_sample_t_test(sample: &[f64], mu0: f64, tail: Tail) -> TTestResult {
    let s = Summary::from_slice(sample);
    assert!(s.n >= 2, "one_sample_t_test needs >= 2 observations");
    assert!(s.variance > 0.0, "sample has zero variance; t statistic undefined");
    let df = (s.n - 1) as f64;
    let t = (s.mean - mu0) / (s.variance / s.n as f64).sqrt();
    TTestResult { t, df, p_value: p_from_t(t, df, tail), mean_difference: s.mean - mu0, tail }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values computed with R's t.test for the fixed samples below.
    const A: [f64; 6] = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
    const B: [f64; 6] = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];

    #[test]
    fn welch_matches_r_reference() {
        let r = welch_t_test(&A, &B, Tail::TwoSided);
        // R: t = 1.959, df = 7.03, p-value = 0.0907
        assert!((r.t - 1.959).abs() < 0.01, "t = {}", r.t);
        assert!((r.df - 7.03).abs() < 0.05, "df = {}", r.df);
        assert!((r.p_value - 0.0907).abs() < 0.003, "p = {}", r.p_value);
    }

    #[test]
    fn student_matches_r_reference() {
        let r = student_t_test(&A, &B, Tail::TwoSided);
        // R: t = 1.959, df = 10, p-value = 0.0786
        assert!((r.t - 1.959).abs() < 0.01);
        assert_eq!(r.df, 10.0);
        assert!((r.p_value - 0.0786).abs() < 0.003, "p = {}", r.p_value);
    }

    #[test]
    fn one_tailed_halves_two_tailed_for_positive_t() {
        let two = welch_t_test(&A, &B, Tail::TwoSided);
        let one = welch_t_test(&A, &B, Tail::Greater);
        assert!((one.p_value * 2.0 - two.p_value).abs() < 1e-10);
        let less = welch_t_test(&A, &B, Tail::Less);
        assert!((less.p_value + one.p_value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn clearly_separated_groups_are_significant() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b = [5.0, 5.1, 4.9, 5.05, 4.95];
        let r = welch_t_test(&a, &b, Tail::TwoSided);
        assert!(r.p_value < 1e-6);
        assert!(r.significant_at(0.05));
        assert!(r.mean_difference < 0.0);
    }

    #[test]
    fn identical_distributions_not_significant() {
        let a = [3.0, 3.1, 2.9, 3.05, 2.95, 3.02];
        let b = [3.01, 3.09, 2.91, 3.04, 2.96, 3.0];
        let r = welch_t_test(&a, &b, Tail::TwoSided);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn one_sample_against_true_mean() {
        let sample = [9.9, 10.1, 10.0, 9.95, 10.05, 10.02, 9.98];
        let r = one_sample_t_test(&sample, 10.0, Tail::TwoSided);
        assert!(r.p_value > 0.5);
        let r2 = one_sample_t_test(&sample, 9.0, Tail::Greater);
        assert!(r2.p_value < 1e-6);
    }

    #[test]
    #[should_panic(expected = ">= 2 observations")]
    fn rejects_tiny_samples() {
        welch_t_test(&[1.0], &[2.0, 3.0], Tail::TwoSided);
    }

    #[test]
    #[should_panic(expected = "zero variance")]
    fn rejects_degenerate_variance() {
        welch_t_test(&[2.0, 2.0, 2.0], &[2.0, 2.0, 2.0], Tail::TwoSided);
    }
}
