//! Tukey's Honest Significant Difference (HSD) multiple-comparison
//! procedure.
//!
//! The compression study in §III-B5 of the paper reports: *"The results were
//! statistically validated using a Tukey's HSD multiple comparison
//! procedure. There is a clear improvement in performance when the
//! compression is completely disabled for random data (p-values for
//! individual comparisons < 0.0001) whereas there is no strong evidence to
//! support any negative or positive impact of the compression for the sensor
//! readings dataset (p-values for individual comparisons > 0.1561)."*
//!
//! [`tukey_hsd`] runs the same procedure: a one-way ANOVA to obtain the
//! pooled error variance, then a studentized-range p-value for every pair of
//! groups (with the Tukey–Kramer adjustment for unbalanced designs).

use crate::anova::{one_way_anova, AnovaResult};
use crate::descriptive::Summary;
use crate::special::studentized_range_sf;

/// One pairwise comparison from the HSD procedure.
#[derive(Debug, Clone)]
pub struct PairwiseComparison {
    /// Index of the first group.
    pub group_a: usize,
    /// Index of the second group.
    pub group_b: usize,
    /// `mean(a) - mean(b)`.
    pub mean_difference: f64,
    /// The studentized-range statistic for this pair.
    pub q: f64,
    /// Adjusted p-value from the studentized range distribution.
    pub p_value: f64,
}

impl PairwiseComparison {
    /// True when the adjusted p-value is below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Full result of Tukey's HSD.
#[derive(Debug, Clone)]
pub struct TukeyResult {
    /// The underlying one-way ANOVA.
    pub anova: AnovaResult,
    /// Per-group means, in input order.
    pub group_means: Vec<f64>,
    /// All `k(k-1)/2` pairwise comparisons.
    pub comparisons: Vec<PairwiseComparison>,
}

impl TukeyResult {
    /// Comparisons whose adjusted p-value is below `alpha`.
    pub fn significant_pairs(&self, alpha: f64) -> Vec<&PairwiseComparison> {
        self.comparisons.iter().filter(|c| c.significant_at(alpha)).collect()
    }

    /// The smallest adjusted p-value across all pairs.
    pub fn min_p_value(&self) -> f64 {
        self.comparisons.iter().map(|c| c.p_value).fold(f64::INFINITY, f64::min)
    }

    /// The largest adjusted p-value across all pairs.
    pub fn max_p_value(&self) -> f64 {
        self.comparisons.iter().map(|c| c.p_value).fold(0.0, f64::max)
    }
}

/// Run Tukey's HSD over `groups` (each a sample of observations).
///
/// Uses the Tukey–Kramer standard error `sqrt(MSE/2 · (1/n_a + 1/n_b))` so
/// unbalanced group sizes are handled correctly.
pub fn tukey_hsd(groups: &[&[f64]]) -> TukeyResult {
    let anova = one_way_anova(groups);
    let k = groups.len();
    let means: Vec<f64> = groups.iter().map(|g| Summary::from_slice(g).mean).collect();
    let mut comparisons = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            let na = groups[a].len() as f64;
            let nb = groups[b].len() as f64;
            let se = (anova.ms_within / 2.0 * (1.0 / na + 1.0 / nb)).sqrt();
            let diff = means[a] - means[b];
            let q = if se > 0.0 { diff.abs() / se } else { f64::INFINITY };
            let p_value = if se > 0.0 {
                studentized_range_sf(q, k, anova.df_within)
            } else if diff.abs() > 0.0 {
                0.0
            } else {
                1.0
            };
            comparisons.push(PairwiseComparison {
                group_a: a,
                group_b: b,
                mean_difference: diff,
                q,
                p_value,
            });
        }
    }
    TukeyResult { anova, group_means: means, comparisons }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_count_is_k_choose_2() {
        let g1 = [1.0, 2.0, 3.0];
        let g2 = [2.0, 3.0, 4.0];
        let g3 = [3.0, 4.0, 5.0];
        let g4 = [4.0, 5.0, 6.0];
        let r = tukey_hsd(&[&g1, &g2, &g3, &g4]);
        assert_eq!(r.comparisons.len(), 6);
        assert_eq!(r.group_means.len(), 4);
    }

    #[test]
    fn well_separated_groups_all_significant() {
        let g1 = [1.0, 1.1, 0.9, 1.0, 1.05];
        let g2 = [5.0, 5.1, 4.9, 5.0, 5.05];
        let g3 = [9.0, 9.1, 8.9, 9.0, 9.05];
        let r = tukey_hsd(&[&g1, &g2, &g3]);
        assert_eq!(r.significant_pairs(0.05).len(), 3);
        assert!(r.max_p_value() < 1e-4);
    }

    #[test]
    fn overlapping_groups_not_significant() {
        let g1 = [3.0, 3.4, 2.6, 3.1, 2.9, 3.0];
        let g2 = [3.1, 3.3, 2.7, 3.0, 3.0, 2.95];
        let g3 = [2.9, 3.5, 2.65, 3.05, 2.95, 3.02];
        let r = tukey_hsd(&[&g1, &g2, &g3]);
        assert!(r.significant_pairs(0.05).is_empty());
        assert!(r.min_p_value() > 0.15, "min p {}", r.min_p_value());
    }

    #[test]
    fn hand_computed_q_statistics() {
        // Hand computation: MSE = 1/3 with df = 9; the Tukey-Kramer SE for
        // equal n=4 groups is sqrt(MSE/2 * (1/4 + 1/4)) = sqrt(1/12).
        // Pair (0,1): |diff| = 3.5 -> q = 3.5 * sqrt(12) = 12.12 (p ~ 1e-5)
        // Pair (0,2): |diff| = 0.5 -> q = sqrt(3) = 1.732 (clearly not sig.)
        let g1 = [4.0, 5.0, 6.0, 5.0];
        let g2 = [8.0, 9.0, 8.5, 8.5];
        let g3 = [5.5, 6.0, 5.0, 5.5];
        let r = tukey_hsd(&[&g1, &g2, &g3]);
        let c12 = &r.comparisons[0];
        assert!((c12.mean_difference + 3.5).abs() < 1e-9);
        assert!((c12.q - 12.124).abs() < 1e-3, "q12 {}", c12.q);
        assert!(c12.p_value < 1e-3, "p12 {}", c12.p_value);
        let c13 = &r.comparisons[1];
        assert!((c13.q - 1.732).abs() < 1e-3, "q13 {}", c13.q);
        assert!(c13.p_value > 0.3 && c13.p_value < 0.7, "p13 {}", c13.p_value);
        let c23 = &r.comparisons[2];
        assert!(c23.p_value < 1e-3, "p23 {}", c23.p_value);
    }

    #[test]
    fn mixed_significance_detected() {
        let low1 = [1.0, 1.2, 0.8, 1.1, 0.9];
        let low2 = [1.05, 1.15, 0.85, 1.0, 0.95];
        let high = [4.0, 4.2, 3.8, 4.1, 3.9];
        let r = tukey_hsd(&[&low1, &low2, &high]);
        let sig = r.significant_pairs(0.05);
        assert_eq!(sig.len(), 2);
        // The non-significant pair must be (0, 1).
        let not_sig: Vec<_> = r.comparisons.iter().filter(|c| !c.significant_at(0.05)).collect();
        assert_eq!(not_sig.len(), 1);
        assert_eq!((not_sig[0].group_a, not_sig[0].group_b), (0, 1));
    }

    #[test]
    fn unbalanced_design_uses_kramer_adjustment() {
        let g1 = [10.0, 10.5, 9.5];
        let g2 = [10.2, 10.1, 9.9, 10.0, 10.3, 9.8, 10.1];
        let r = tukey_hsd(&[&g1, &g2]);
        assert_eq!(r.comparisons.len(), 1);
        assert!(r.comparisons[0].p_value > 0.5);
    }
}
