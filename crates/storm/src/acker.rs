//! Storm's acking mechanism (at-least-once tracking).
//!
//! Storm tracks each spout tuple's processing tree with an XOR trick: every
//! tuple in the tree is tagged with a random 64-bit id; the acker XORs ids
//! as tuples are anchored and acked, and when the accumulated value returns
//! to zero the root tuple is fully processed. §IV-A of the paper disables
//! this feature for throughput — *"reliable message processing feature
//! disabled to ensure that the throughput of Storm is not adversely
//! affected"* — so the runtime leaves it off by default, but it is
//! implemented here for completeness and for the ablation that measures
//! acking overhead.

use std::collections::HashMap;

/// Errors from the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckError {
    /// The root tuple id is not being tracked.
    UnknownRoot(u64),
}

impl std::fmt::Display for AckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AckError::UnknownRoot(id) => write!(f, "unknown root tuple {id:#x}"),
        }
    }
}

impl std::error::Error for AckError {}

/// XOR-based completion tracker for spout tuples.
#[derive(Debug, Default)]
pub struct AckTracker {
    /// root id -> accumulated XOR of anchored/acked tuple ids.
    pending: HashMap<u64, u64>,
    completed: u64,
    failed: u64,
}

impl AckTracker {
    /// New tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin tracking a spout tuple; `tuple_id` is its random id.
    pub fn track(&mut self, root: u64, tuple_id: u64) {
        *self.pending.entry(root).or_insert(0) ^= tuple_id;
    }

    /// Anchor a downstream tuple to the tree (XOR in its id).
    pub fn anchor(&mut self, root: u64, child_id: u64) -> Result<(), AckError> {
        match self.pending.get_mut(&root) {
            Some(v) => {
                *v ^= child_id;
                Ok(())
            }
            None => Err(AckError::UnknownRoot(root)),
        }
    }

    /// Ack a tuple (XOR out its id). Returns true when the whole tree
    /// completed.
    pub fn ack(&mut self, root: u64, tuple_id: u64) -> Result<bool, AckError> {
        match self.pending.get_mut(&root) {
            Some(v) => {
                *v ^= tuple_id;
                if *v == 0 {
                    self.pending.remove(&root);
                    self.completed += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            None => Err(AckError::UnknownRoot(root)),
        }
    }

    /// Fail a tree explicitly (e.g. timeout): stop tracking it.
    pub fn fail(&mut self, root: u64) -> Result<(), AckError> {
        if self.pending.remove(&root).is_some() {
            self.failed += 1;
            Ok(())
        } else {
            Err(AckError::UnknownRoot(root))
        }
    }

    /// Trees still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Fully processed trees.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Failed trees.
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tuple_tree_completes() {
        let mut t = AckTracker::new();
        t.track(1, 0xAB);
        assert_eq!(t.in_flight(), 1);
        assert!(t.ack(1, 0xAB).unwrap());
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.completed(), 1);
    }

    #[test]
    fn fan_out_tree_completes_only_when_all_acked() {
        let mut t = AckTracker::new();
        t.track(7, 0x11);
        // The root tuple fans out into two children before being acked.
        t.anchor(7, 0x22).unwrap();
        t.anchor(7, 0x33).unwrap();
        assert!(!t.ack(7, 0x11).unwrap());
        assert!(!t.ack(7, 0x22).unwrap());
        assert!(t.ack(7, 0x33).unwrap());
        assert_eq!(t.completed(), 1);
    }

    #[test]
    fn deep_chain_completes() {
        let mut t = AckTracker::new();
        t.track(9, 1);
        let mut prev = 1u64;
        for id in 2..20u64 {
            t.anchor(9, id).unwrap();
            assert!(!t.ack(9, prev).unwrap());
            prev = id;
        }
        assert!(t.ack(9, prev).unwrap());
    }

    #[test]
    fn fail_discards_tree() {
        let mut t = AckTracker::new();
        t.track(3, 0x5);
        t.fail(3).unwrap();
        assert_eq!(t.failed(), 1);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.ack(3, 0x5), Err(AckError::UnknownRoot(3)));
    }

    #[test]
    fn unknown_root_errors() {
        let mut t = AckTracker::new();
        assert_eq!(t.anchor(42, 1), Err(AckError::UnknownRoot(42)));
        assert_eq!(t.fail(42), Err(AckError::UnknownRoot(42)));
    }

    #[test]
    fn independent_roots_do_not_interfere() {
        let mut t = AckTracker::new();
        t.track(1, 0xA);
        t.track(2, 0xB);
        assert!(t.ack(2, 0xB).unwrap());
        assert_eq!(t.in_flight(), 1);
        assert!(t.ack(1, 0xA).unwrap());
    }
}
