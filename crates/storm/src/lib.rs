//! # neptune-storm
//!
//! A baseline stream-processing engine reproducing the **execution model of
//! Apache Storm 0.9.x**, the system the NEPTUNE paper compares against
//! (§IV-C, Fig. 7/9/10). This is not a Storm port — it is a faithful model
//! of the *design properties* the paper attributes Storm's performance to:
//!
//! 1. **Per-tuple transfer** — every emitted tuple is serialized and moved
//!    individually; there is no application-level batching, so each tuple
//!    pays the full per-message overhead (frame header, queue hop, wakeup).
//! 2. **Four-thread message path** — §IV-C: *"The high CPU consumption in
//!    Storm is due to its threading model which requires every message to
//!    go through four different threads from the point of entry to exit
//!    from a stream processor."* Here a tuple traverses: the worker's
//!    **receive/router thread** → the executor's **input queue** → the
//!    **executor thread** → the executor's **send thread** → back to the
//!    router. Four distinct threads touch every tuple.
//! 3. **No backpressure** — queues are unbounded; a spout that outruns a
//!    bolt builds queue depth and latency without ever being throttled
//!    (the behaviour behind Fig. 7's exploding Storm latency).
//! 4. **Optional acking** — Storm's at-least-once tracking; the paper
//!    disables it for throughput (*"reliable message processing feature
//!    disabled"*), so it is off by default but implemented for
//!    completeness ([`acker`]).
//!
//! Tuples are [`neptune_core::StreamPacket`]s so both engines run identical
//! workload generators in the comparison benchmarks.

pub mod acker;
pub mod runtime;
pub mod topology;

pub use acker::{AckError, AckTracker};
pub use runtime::{StormConfig, StormJob, StormMetrics, StormRuntime};
pub use topology::{
    Bolt, BoltCollector, Grouping, SpoutCollector, SpoutStatus, StormSpout, Topology,
    TopologyBuilder, TopologyError,
};
