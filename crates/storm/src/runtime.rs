//! The Storm-like execution engine.
//!
//! Faithful to the execution model the paper measures against (see the
//! crate docs): per-tuple serialization and transfer, a four-thread
//! message path, and unbounded queues with no flow control.
//!
//! ## Thread layout
//!
//! ```text
//! spout thread ──► spout send thread ──► transfer (router) thread ──► bolt input queue
//!                                                                        │
//! bolt executor thread ◄─────────────────────────────────────────────────┘
//!        │
//!        └──► bolt send thread ──► transfer thread ──► next bolt ...
//! ```
//!
//! Every tuple is individually serialized, individually routed, and
//! individually enqueued at each hop — which is precisely the behaviour
//! NEPTUNE's application-level batching removes (Fig. 7, Table I).

use crate::acker::AckTracker;
use crate::topology::{BoltCollector, SpoutCollector, SpoutStatus, Topology};
use crossbeam::channel::{unbounded, Receiver, Sender};
use neptune_core::metrics::{JobMetrics, MetricsRegistry};
use neptune_core::partition::{Partitioner, Route};
use neptune_core::{PacketCodec, StreamPacket};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-tuple wire overhead modeled for bandwidth accounting: the same
/// header NEPTUNE pays **per batch**, Storm pays **per tuple**.
pub const TUPLE_OVERHEAD: usize = neptune_net::frame::FRAME_HEADER_LEN + 1;

/// Runtime configuration.
#[derive(Debug, Clone, Default)]
pub struct StormConfig {
    /// Delay inserted between spout `next_tuple` calls. The paper notes
    /// Storm needed such a wait to keep latency sane, at great throughput
    /// cost; `None` reproduces the paper's high-throughput setting.
    pub spout_wait: Option<Duration>,
    /// Enable the XOR acker (at-least-once tracking). The paper ran with
    /// the *"reliable message processing feature disabled"* for
    /// throughput, so this defaults to off; enabling it adds two acker
    /// messages per tuple hop — the overhead the paper avoided.
    pub acking: bool,
}

/// Mix a counter into a well-distributed 64-bit tuple id (splitmix64) —
/// the XOR acker needs ids that do not cancel by accident.
fn tuple_id(counter: u64) -> u64 {
    let mut z = counter.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum AckMsg {
    /// A spout emitted a root tuple.
    Track {
        root: u64,
    },
    /// A bolt emitted a child anchored to `root`.
    Anchor {
        root: u64,
        child: u64,
    },
    /// A tuple in the tree finished processing.
    Ack {
        root: u64,
        id: u64,
    },
    Stop,
}

/// Snapshot alias — the same metric shapes as NEPTUNE jobs, so benches
/// print both engines uniformly.
pub type StormMetrics = JobMetrics;

enum ExecMsg {
    Tuple {
        bytes: Vec<u8>,
        /// Root tuple id of the processing tree (0 when acking is off).
        root: u64,
        /// This tuple's id within the tree (0 when acking is off).
        id: u64,
    },
    Stop,
}

struct RoutedTuple {
    dst_bolt: usize,
    dst_task: usize,
    bytes: Vec<u8>,
    root: u64,
    id: u64,
}

enum RouterMsg {
    Tuple(RoutedTuple),
    Stop,
}

/// Deploys topologies.
pub struct StormRuntime {
    config: StormConfig,
}

impl StormRuntime {
    /// Runtime with the given configuration.
    pub fn new(config: StormConfig) -> Self {
        StormRuntime { config }
    }

    /// Launch a topology.
    pub fn submit(&self, topology: Topology) -> StormJob {
        deploy(topology, self.config.clone())
    }
}

/// A running Storm-like job.
pub struct StormJob {
    registry: MetricsRegistry,
    stop_flag: Arc<AtomicBool>,
    active_spouts: Arc<AtomicUsize>,
    in_flight: Arc<AtomicI64>,
    spout_threads: Vec<std::thread::JoinHandle<()>>,
    router_tx: Sender<RouterMsg>,
    ack_tx: Option<Sender<AckMsg>>,
    other_threads: Vec<std::thread::JoinHandle<()>>,
    /// Depth gauge across all bolt input queues (no-backpressure witness).
    queue_depth: Arc<AtomicI64>,
    /// Fully-processed spout tuple trees (acking mode only).
    acked_trees: Arc<AtomicU64>,
}

impl StormJob {
    /// Live metrics snapshot.
    pub fn metrics(&self) -> StormMetrics {
        self.registry.snapshot()
    }

    /// Spout threads still running.
    pub fn active_spouts(&self) -> usize {
        self.active_spouts.load(Ordering::Acquire)
    }

    /// Tuples currently queued or executing anywhere in the topology.
    /// Unbounded growth here is Storm's missing-backpressure signature.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Current total depth of all bolt input queues.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Acquire)
    }

    /// Spout tuple trees fully acked (0 unless acking was enabled).
    pub fn acked_trees(&self) -> u64 {
        self.acked_trees.load(Ordering::Acquire)
    }

    /// Wait until the spouts exhausted and the topology drained.
    pub fn await_quiescent(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active_spouts() > 0 || self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        true
    }

    /// Stop the topology and return the final metrics.
    pub fn stop(mut self) -> StormMetrics {
        self.stop_flag.store(true, Ordering::Release);
        for t in self.spout_threads.drain(..) {
            let _ = t.join();
        }
        // Drain whatever remains, then cascade Stop through the router.
        self.await_quiescent(Duration::from_secs(30));
        let _ = self.router_tx.send(RouterMsg::Stop);
        if let Some(ack_tx) = self.ack_tx.take() {
            let _ = ack_tx.send(AckMsg::Stop);
        }
        for t in self.other_threads.drain(..) {
            let _ = t.join();
        }
        self.registry.snapshot()
    }
}

fn deploy(topology: Topology, config: StormConfig) -> StormJob {
    let registry = MetricsRegistry::new();
    let stop_flag = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicI64::new(0));
    let queue_depth = Arc::new(AtomicI64::new(0));
    let mut other_threads = Vec::new();

    // Subscriptions inverted: component name -> [(bolt index, scheme)].
    let mut downstream: HashMap<String, Vec<(usize, neptune_core::PartitioningScheme)>> =
        HashMap::new();
    for (bi, bolt) in topology.bolts.iter().enumerate() {
        for (up, grouping) in &bolt.subscriptions {
            downstream.entry(up.clone()).or_default().push((bi, grouping.to_scheme()));
        }
    }
    let bolt_parallelism: Vec<usize> = topology.bolts.iter().map(|b| b.parallelism).collect();

    // Router (transfer) thread and bolt input channels.
    let (router_tx, router_rx) = unbounded::<RouterMsg>();
    let mut bolt_inputs: Vec<Vec<Sender<ExecMsg>>> = Vec::new();
    let mut bolt_input_rx: Vec<Vec<Receiver<ExecMsg>>> = Vec::new();
    for bolt in &topology.bolts {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..bolt.parallelism {
            let (tx, rx) = unbounded::<ExecMsg>();
            txs.push(tx);
            rxs.push(rx);
        }
        bolt_inputs.push(txs);
        bolt_input_rx.push(rxs);
    }

    {
        let inputs = bolt_inputs.clone();
        let depth = queue_depth.clone();
        let router = std::thread::Builder::new()
            .name(format!("{}-transfer", topology.name))
            .spawn(move || {
                while let Ok(msg) = router_rx.recv() {
                    match msg {
                        RouterMsg::Tuple(t) => {
                            depth.fetch_add(1, Ordering::Relaxed);
                            let _ = inputs[t.dst_bolt][t.dst_task].send(ExecMsg::Tuple {
                                bytes: t.bytes,
                                root: t.root,
                                id: t.id,
                            });
                        }
                        RouterMsg::Stop => {
                            for bolt in &inputs {
                                for task in bolt {
                                    let _ = task.send(ExecMsg::Stop);
                                }
                            }
                            return;
                        }
                    }
                }
            })
            .expect("spawn transfer thread");
        other_threads.push(router);
    }

    // Acker executor (only when acking is enabled): the XOR tracker runs
    // on its own thread fed by Track/Anchor/Ack messages — Storm's acker
    // bolt.
    let acked_trees = Arc::new(AtomicU64::new(0));
    let ack_tx: Option<Sender<AckMsg>> = if config.acking {
        let (tx, rx) = unbounded::<AckMsg>();
        let acked = acked_trees.clone();
        let t = std::thread::Builder::new()
            .name(format!("{}-acker", topology.name))
            .spawn(move || {
                let mut tracker = AckTracker::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        AckMsg::Track { root } => tracker.track(root, root),
                        AckMsg::Anchor { root, child } => {
                            let _ = tracker.anchor(root, child);
                        }
                        AckMsg::Ack { root, id } => {
                            if let Ok(true) = tracker.ack(root, id) {
                                acked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        AckMsg::Stop => break,
                    }
                }
            })
            .expect("spawn acker thread");
        other_threads.push(t);
        Some(tx)
    } else {
        None
    };

    // Shared emit path: encode + route + hand to the send thread.
    struct EmitPath {
        partitioners: Vec<(usize, Partitioner)>,
        codec: PacketCodec,
        to_send: Sender<RoutedTuple>,
        counters: Arc<neptune_core::metrics::OperatorCounters>,
        in_flight: Arc<AtomicI64>,
        bolt_parallelism: Arc<Vec<usize>>,
        ack_tx: Option<Sender<AckMsg>>,
        id_counter: u64,
    }

    impl EmitPath {
        /// Emit one tuple. `root == 0` means this is a spout emission
        /// (each routed copy becomes its own tracked root); otherwise the
        /// copies are anchored to the given tree.
        fn emit(&mut self, tuple: &StreamPacket, root: u64) {
            for pi in 0..self.partitioners.len() {
                let bolt_idx = self.partitioners[pi].0;
                let n = self.bolt_parallelism[bolt_idx];
                let bytes = self.codec.encode(tuple).expect("encode tuple");
                let route = self.partitioners[pi].1.route(tuple, n);
                match route {
                    Route::One(task) => {
                        let (r, id) = self.next_ids(root);
                        self.in_flight.fetch_add(1, Ordering::AcqRel);
                        self.counters.packets_out.fetch_add(1, Ordering::Relaxed);
                        let _ = self.to_send.send(RoutedTuple {
                            dst_bolt: bolt_idx,
                            dst_task: task,
                            bytes,
                            root: r,
                            id,
                        });
                    }
                    Route::All => {
                        for task in 0..n {
                            let (r, id) = self.next_ids(root);
                            self.in_flight.fetch_add(1, Ordering::AcqRel);
                            self.counters.packets_out.fetch_add(1, Ordering::Relaxed);
                            let _ = self.to_send.send(RoutedTuple {
                                dst_bolt: bolt_idx,
                                dst_task: task,
                                bytes: bytes.clone(),
                                root: r,
                                id,
                            });
                        }
                    }
                }
            }
        }

        /// Allocate ids and notify the acker, mirroring Storm's tracking:
        /// spout emissions start a tree; bolt emissions anchor to theirs.
        fn next_ids(&mut self, root: u64) -> (u64, u64) {
            let Some(ack_tx) = &self.ack_tx else {
                return (0, 0);
            };
            self.id_counter += 1;
            let id = tuple_id(self.id_counter);
            if root == 0 {
                let _ = ack_tx.send(AckMsg::Track { root: id });
                (id, id)
            } else {
                let _ = ack_tx.send(AckMsg::Anchor { root, child: id });
                (root, id)
            }
        }
    }

    let bolt_parallelism = Arc::new(bolt_parallelism);

    // Per-executor send thread: forwards routed tuples to the router one
    // at a time (Storm's executor send thread).
    let spawn_send_thread = |name: String,
                             rx: Receiver<RoutedTuple>,
                             router_tx: Sender<RouterMsg>,
                             counters: Arc<neptune_core::metrics::OperatorCounters>|
     -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                while let Ok(t) = rx.recv() {
                    counters
                        .bytes_out
                        .fetch_add((t.bytes.len() + TUPLE_OVERHEAD) as u64, Ordering::Relaxed);
                    counters.frames_out.fetch_add(1, Ordering::Relaxed);
                    let _ = router_tx.send(RouterMsg::Tuple(t));
                }
            })
            .expect("spawn send thread")
    };

    // ---- Spout threads. ----
    let active_spouts = Arc::new(AtomicUsize::new(0));
    let mut spout_threads = Vec::new();
    for spout_spec in &topology.spouts {
        let counters = registry.for_operator(&spout_spec.name);
        let subs = downstream.get(&spout_spec.name).cloned().unwrap_or_default();
        for task in 0..spout_spec.parallelism {
            let (send_tx, send_rx) = unbounded::<RoutedTuple>();
            other_threads.push(spawn_send_thread(
                format!("{}-{}-{}-send", topology.name, spout_spec.name, task),
                send_rx,
                router_tx.clone(),
                counters.clone(),
            ));
            let mut emit_path = EmitPath {
                partitioners: subs
                    .iter()
                    .map(|(bi, scheme)| (*bi, Partitioner::new(scheme)))
                    .collect(),
                codec: PacketCodec::new(),
                to_send: send_tx,
                counters: counters.clone(),
                in_flight: in_flight.clone(),
                bolt_parallelism: bolt_parallelism.clone(),
                ack_tx: ack_tx.clone(),
                id_counter: (task as u64) << 40,
            };
            let mut spout = (spout_spec.factory)();
            let stop = stop_flag.clone();
            let active = active_spouts.clone();
            let wait = config.spout_wait;
            let counters = counters.clone();
            active.fetch_add(1, Ordering::AcqRel);
            let t = std::thread::Builder::new()
                .name(format!("{}-{}-{}", topology.name, spout_spec.name, task))
                .spawn(move || {
                    spout.open();
                    let mut collector = SpoutCollector::default();
                    while !stop.load(Ordering::Acquire) {
                        match spout.next_tuple(&mut collector) {
                            SpoutStatus::Emitted(_) => {
                                counters.executions.fetch_add(1, Ordering::Relaxed);
                                for tuple in collector.emitted.drain(..) {
                                    emit_path.emit(&tuple, 0);
                                }
                                if let Some(w) = wait {
                                    std::thread::sleep(w);
                                }
                            }
                            SpoutStatus::Idle => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            SpoutStatus::Exhausted => break,
                        }
                    }
                    spout.close();
                    active.fetch_sub(1, Ordering::AcqRel);
                })
                .expect("spawn spout thread");
            spout_threads.push(t);
        }
    }

    // ---- Bolt executor threads. ----
    for (bi, bolt_spec) in topology.bolts.iter().enumerate() {
        let counters = registry.for_operator(&bolt_spec.name);
        let subs = downstream.get(&bolt_spec.name).cloned().unwrap_or_default();
        for (task, rx) in bolt_input_rx[bi].iter().enumerate() {
            let rx = rx.clone();
            let (send_tx, send_rx) = unbounded::<RoutedTuple>();
            other_threads.push(spawn_send_thread(
                format!("{}-{}-{}-send", topology.name, bolt_spec.name, task),
                send_rx,
                router_tx.clone(),
                counters.clone(),
            ));
            let mut emit_path = EmitPath {
                partitioners: subs
                    .iter()
                    .map(|(bj, scheme)| (*bj, Partitioner::new(scheme)))
                    .collect(),
                codec: PacketCodec::new(),
                to_send: send_tx,
                counters: counters.clone(),
                in_flight: in_flight.clone(),
                bolt_parallelism: bolt_parallelism.clone(),
                ack_tx: ack_tx.clone(),
                id_counter: ((bi as u64 + 1) << 50) | ((task as u64) << 40),
            };
            let mut bolt = (bolt_spec.factory)();
            let counters = counters.clone();
            let in_flight = in_flight.clone();
            let depth = queue_depth.clone();
            let t = std::thread::Builder::new()
                .name(format!("{}-{}-{}", topology.name, bolt_spec.name, task))
                .spawn(move || {
                    bolt.prepare();
                    let mut codec = PacketCodec::new();
                    let mut workhorse = StreamPacket::new();
                    let mut collector = BoltCollector::default();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ExecMsg::Tuple { bytes, root, id } => {
                                depth.fetch_sub(1, Ordering::Relaxed);
                                counters.executions.fetch_add(1, Ordering::Relaxed);
                                if codec.decode_into(&bytes, &mut workhorse).is_ok() {
                                    counters.packets_in.fetch_add(1, Ordering::Relaxed);
                                    counters.frames_in.fetch_add(1, Ordering::Relaxed);
                                    bolt.execute(&workhorse, &mut collector);
                                    for tuple in collector.emitted.drain(..) {
                                        emit_path.emit(&tuple, root);
                                    }
                                    collector.acked = 0;
                                    collector.failed = 0;
                                    // BasicBolt semantics: the input tuple
                                    // is acked once execute returns and its
                                    // children are anchored.
                                    if let Some(ack_tx) = &emit_path.ack_tx {
                                        let _ = ack_tx.send(AckMsg::Ack { root, id });
                                    }
                                } else {
                                    counters.seq_violations.fetch_add(1, Ordering::Relaxed);
                                }
                                in_flight.fetch_sub(1, Ordering::AcqRel);
                            }
                            ExecMsg::Stop => break,
                        }
                    }
                    bolt.cleanup();
                })
                .expect("spawn bolt thread");
            other_threads.push(t);
        }
    }

    StormJob {
        registry,
        stop_flag,
        active_spouts,
        in_flight,
        spout_threads,
        router_tx,
        ack_tx,
        other_threads,
        queue_depth,
        acked_trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Bolt, SpoutStatus, StormSpout, TopologyBuilder};
    use neptune_core::{FieldValue, StreamPacket};
    use std::sync::atomic::AtomicU64;

    struct CountSpout {
        left: u64,
        next: u64,
    }
    impl StormSpout for CountSpout {
        fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
            if self.left == 0 {
                return SpoutStatus::Exhausted;
            }
            self.left -= 1;
            let mut p = StreamPacket::new();
            p.push_field("n", FieldValue::U64(self.next));
            self.next += 1;
            c.emit(p);
            SpoutStatus::Emitted(1)
        }
    }

    struct ForwardBolt;
    impl Bolt for ForwardBolt {
        fn execute(&mut self, t: &StreamPacket, c: &mut BoltCollector) {
            c.emit(t.clone());
        }
    }

    struct SumBolt {
        seen: Arc<AtomicU64>,
        sum: Arc<AtomicU64>,
    }
    impl Bolt for SumBolt {
        fn execute(&mut self, t: &StreamPacket, _c: &mut BoltCollector) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(t.get("n").unwrap().as_u64().unwrap(), Ordering::Relaxed);
        }
    }

    #[test]
    fn relay_topology_delivers_all_tuples() {
        let n = 5_000u64;
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, m2) = (seen.clone(), sum.clone());
        let topo = TopologyBuilder::new("relay")
            .set_spout("spout", 1, move || CountSpout { left: n, next: 0 })
            .set_bolt("relay", 1, || ForwardBolt)
            .shuffle_grouping("spout")
            .set_bolt("sink", 1, move || SumBolt { seen: s2.clone(), sum: m2.clone() })
            .shuffle_grouping("relay")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        assert!(job.await_quiescent(Duration::from_secs(30)));
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert_eq!(metrics.operator("spout").packets_out, n);
        assert_eq!(metrics.operator("relay").packets_in, n);
        assert_eq!(metrics.operator("sink").packets_in, n);
    }

    #[test]
    fn per_tuple_transfer_no_batching() {
        // Storm's signature: frames == tuples (every tuple its own frame).
        let n = 1_000u64;
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, m2) = (seen.clone(), sum.clone());
        let topo = TopologyBuilder::new("t")
            .set_spout("spout", 1, move || CountSpout { left: n, next: 0 })
            .set_bolt("sink", 1, move || SumBolt { seen: s2.clone(), sum: m2.clone() })
            .shuffle_grouping("spout")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        job.await_quiescent(Duration::from_secs(30));
        let metrics = job.stop();
        let spout = metrics.operator("spout");
        assert_eq!(spout.frames_out, n, "per-tuple transfer means one frame per tuple");
        assert!(
            spout.bytes_out >= n * TUPLE_OVERHEAD as u64,
            "every tuple pays the header overhead"
        );
    }

    #[test]
    fn fields_grouping_colocates() {
        let seen_by = Arc::new(parking_lot::Mutex::new(HashMap::<u64, usize>::new()));
        let violations = Arc::new(AtomicU64::new(0));
        struct KeySink {
            id: usize,
            seen_by: Arc<parking_lot::Mutex<HashMap<u64, usize>>>,
            violations: Arc<AtomicU64>,
        }
        impl Bolt for KeySink {
            fn execute(&mut self, t: &StreamPacket, _c: &mut BoltCollector) {
                let key = t.get("n").unwrap().as_u64().unwrap() % 13;
                let mut map = self.seen_by.lock();
                match map.get(&key) {
                    Some(&prev) if prev != self.id => {
                        self.violations.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        map.insert(key, self.id);
                    }
                }
            }
        }
        let next_id = Arc::new(AtomicUsize::new(0));
        let (sb, v, ni) = (seen_by.clone(), violations.clone(), next_id.clone());
        struct ModSpout {
            left: u64,
        }
        impl StormSpout for ModSpout {
            fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
                if self.left == 0 {
                    return SpoutStatus::Exhausted;
                }
                self.left -= 1;
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.left % 13));
                c.emit(p);
                SpoutStatus::Emitted(1)
            }
        }
        let topo = TopologyBuilder::new("keyed")
            .set_spout("spout", 1, || ModSpout { left: 1000 })
            .set_bolt("sink", 4, move || KeySink {
                id: ni.fetch_add(1, Ordering::Relaxed),
                seen_by: sb.clone(),
                violations: v.clone(),
            })
            .fields_grouping("spout", vec!["n".into()])
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        job.await_quiescent(Duration::from_secs(30));
        job.stop();
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn slow_bolt_builds_unbounded_queues() {
        // No backpressure: a fast spout against a slow bolt must build
        // queue depth rather than throttle.
        struct SlowBolt;
        impl Bolt for SlowBolt {
            fn execute(&mut self, _t: &StreamPacket, _c: &mut BoltCollector) {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let topo = TopologyBuilder::new("slow")
            .set_spout("spout", 1, || CountSpout { left: 8_000, next: 0 })
            .set_bolt("slow", 1, || SlowBolt)
            .shuffle_grouping("spout")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        // Give the spout a moment to run ahead.
        std::thread::sleep(Duration::from_millis(200));
        let depth = job.in_flight();
        assert!(depth > 100, "expected a queue buildup without backpressure, in-flight = {depth}");
        job.stop();
    }

    #[test]
    fn spout_wait_throttles_emission() {
        let topo = TopologyBuilder::new("waited")
            .set_spout("spout", 1, || CountSpout { left: 1_000_000, next: 0 })
            .set_bolt("sink", 1, || ForwardBolt)
            .shuffle_grouping("spout")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig {
            spout_wait: Some(Duration::from_millis(1)),
            ..Default::default()
        })
        .submit(topo);
        std::thread::sleep(Duration::from_millis(200));
        let emitted = job.metrics().operator("spout").packets_out;
        job.stop_flag.store(true, Ordering::Release);
        job.stop();
        assert!(emitted < 1_000, "spout wait must throttle: emitted {emitted}");
    }

    #[test]
    fn acking_tracks_every_tree_to_completion() {
        let n = 2_000u64;
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, m2) = (seen.clone(), sum.clone());
        let topo = TopologyBuilder::new("acked")
            .set_spout("spout", 1, move || CountSpout { left: n, next: 0 })
            .set_bolt("relay", 1, || ForwardBolt)
            .shuffle_grouping("spout")
            .set_bolt("sink", 1, move || SumBolt { seen: s2.clone(), sum: m2.clone() })
            .shuffle_grouping("relay")
            .build()
            .unwrap();
        let job =
            StormRuntime::new(StormConfig { acking: true, ..Default::default() }).submit(topo);
        assert!(job.await_quiescent(Duration::from_secs(30)));
        // Let the acker drain its channel.
        let deadline = Instant::now() + Duration::from_secs(10);
        while job.acked_trees() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let acked = job.acked_trees();
        job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n);
        assert_eq!(acked, n, "every spout tuple tree must fully ack");
    }

    #[test]
    fn acking_disabled_reports_zero_trees() {
        let topo = TopologyBuilder::new("unacked")
            .set_spout("spout", 1, || CountSpout { left: 100, next: 0 })
            .set_bolt("sink", 1, || ForwardBolt)
            .shuffle_grouping("spout")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        job.await_quiescent(Duration::from_secs(30));
        assert_eq!(job.acked_trees(), 0);
        job.stop();
    }

    #[test]
    fn all_grouping_replicates() {
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct CountBolt(Arc<AtomicU64>);
        impl Bolt for CountBolt {
            fn execute(&mut self, _t: &StreamPacket, _c: &mut BoltCollector) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let topo = TopologyBuilder::new("bcast")
            .set_spout("spout", 1, || CountSpout { left: 100, next: 0 })
            .set_bolt("sink", 3, move || CountBolt(s2.clone()))
            .all_grouping("spout")
            .build()
            .unwrap();
        let job = StormRuntime::new(StormConfig::default()).submit(topo);
        job.await_quiescent(Duration::from_secs(30));
        job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), 300);
    }
}
