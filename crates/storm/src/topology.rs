//! Storm's programming model: spouts, bolts, topologies, groupings.
//!
//! §V of the NEPTUNE paper: *"Apache Storm uses two types of stream
//! processing elements, namely, Spouts and Bolts. Spouts are used to ingest
//! streams into the system whereas Bolts are used to process event streams
//! and generate intermediate streams if necessary. Spouts and Bolts form a
//! topology."*

use neptune_core::{PartitioningScheme, StreamPacket};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// What a spout's `next_tuple` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoutStatus {
    /// Emitted tuples; call again immediately.
    Emitted(usize),
    /// Nothing right now.
    Idle,
    /// Stream finished.
    Exhausted,
}

/// Collector handed to spouts: emitted tuples enter the topology.
#[derive(Default)]
pub struct SpoutCollector {
    pub(crate) emitted: Vec<StreamPacket>,
}

impl SpoutCollector {
    /// Emit one tuple into the topology.
    pub fn emit(&mut self, tuple: StreamPacket) {
        self.emitted.push(tuple);
    }
}

/// Collector handed to bolts.
#[derive(Default)]
pub struct BoltCollector {
    pub(crate) emitted: Vec<StreamPacket>,
    pub(crate) acked: u64,
    pub(crate) failed: u64,
}

impl BoltCollector {
    /// Emit a downstream tuple.
    pub fn emit(&mut self, tuple: StreamPacket) {
        self.emitted.push(tuple);
    }

    /// Acknowledge the input tuple (only meaningful with acking enabled).
    pub fn ack(&mut self) {
        self.acked += 1;
    }

    /// Fail the input tuple.
    pub fn fail(&mut self) {
        self.failed += 1;
    }
}

/// A Storm spout: pull-based stream ingestion.
pub trait StormSpout: Send {
    /// Called once at startup.
    fn open(&mut self) {}
    /// Produce the next tuple(s).
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> SpoutStatus;
    /// Called once at shutdown.
    fn close(&mut self) {}
}

/// A Storm bolt: per-tuple processing.
pub trait Bolt: Send {
    /// Called once at startup.
    fn prepare(&mut self) {}
    /// Process one input tuple.
    fn execute(&mut self, tuple: &StreamPacket, collector: &mut BoltCollector);
    /// Called once at shutdown.
    fn cleanup(&mut self) {}
}

/// Stream groupings — Storm's partitioning schemes.
#[derive(Clone, Debug)]
pub enum Grouping {
    /// Random/round-robin distribution.
    Shuffle,
    /// Key-hash grouping on named fields.
    Fields(Vec<String>),
    /// Everything to task 0.
    Global,
    /// Replicate to all tasks.
    All,
}

impl Grouping {
    pub(crate) fn to_scheme(&self) -> PartitioningScheme {
        match self {
            Grouping::Shuffle => PartitioningScheme::Shuffle,
            Grouping::Fields(k) => PartitioningScheme::Fields(k.clone()),
            Grouping::Global => PartitioningScheme::Global,
            Grouping::All => PartitioningScheme::Broadcast,
        }
    }
}

type SpoutFactory = Arc<dyn Fn() -> Box<dyn StormSpout> + Send + Sync>;
type BoltFactory = Arc<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// One spout declaration.
#[derive(Clone)]
pub struct SpoutSpec {
    /// Component name.
    pub name: String,
    /// Number of executor tasks.
    pub parallelism: usize,
    pub(crate) factory: SpoutFactory,
}

/// One bolt declaration with its subscriptions.
#[derive(Clone)]
pub struct BoltSpec {
    /// Component name.
    pub name: String,
    /// Number of executor tasks.
    pub parallelism: usize,
    pub(crate) factory: BoltFactory,
    /// Subscriptions: (upstream component, grouping).
    pub subscriptions: Vec<(String, Grouping)>,
}

/// Topology validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two components share a name.
    DuplicateComponent(String),
    /// A subscription references a missing component.
    UnknownComponent(String),
    /// A bolt has no subscriptions.
    UnsubscribedBolt(String),
    /// The subscription structure contains a cycle.
    Cycle,
    /// No spouts declared.
    NoSpouts,
    /// Zero parallelism.
    ZeroParallelism(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateComponent(n) => write!(f, "duplicate component '{n}'"),
            TopologyError::UnknownComponent(n) => write!(f, "unknown component '{n}'"),
            TopologyError::UnsubscribedBolt(n) => write!(f, "bolt '{n}' subscribes to nothing"),
            TopologyError::Cycle => write!(f, "topology contains a cycle"),
            TopologyError::NoSpouts => write!(f, "topology has no spouts"),
            TopologyError::ZeroParallelism(n) => write!(f, "component '{n}' has zero tasks"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated topology.
#[derive(Clone)]
pub struct Topology {
    pub(crate) name: String,
    pub(crate) spouts: Vec<SpoutSpec>,
    pub(crate) bolts: Vec<BoltSpec>,
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("name", &self.name)
            .field(
                "spouts",
                &self.spouts.iter().map(|s| (&s.name, s.parallelism)).collect::<Vec<_>>(),
            )
            .field(
                "bolts",
                &self.bolts.iter().map(|b| (&b.name, b.parallelism)).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Topology {
    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared spouts.
    pub fn spouts(&self) -> &[SpoutSpec] {
        &self.spouts
    }

    /// Declared bolts.
    pub fn bolts(&self) -> &[BoltSpec] {
        &self.bolts
    }
}

/// Storm's `TopologyBuilder` equivalent.
pub struct TopologyBuilder {
    name: String,
    spouts: Vec<SpoutSpec>,
    bolts: Vec<BoltSpec>,
    /// Name of the bolt currently being configured (grouping calls attach
    /// to it).
    current_bolt: Option<usize>,
}

impl TopologyBuilder {
    /// Start building.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            spouts: Vec::new(),
            bolts: Vec::new(),
            current_bolt: None,
        }
    }

    /// Declare a spout.
    pub fn set_spout<S, F>(
        mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: F,
    ) -> Self
    where
        S: StormSpout + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        self.spouts.push(SpoutSpec {
            name: name.into(),
            parallelism,
            factory: Arc::new(move || Box::new(factory())),
        });
        self.current_bolt = None;
        self
    }

    /// Declare a bolt; follow with grouping calls to subscribe it.
    pub fn set_bolt<B, F>(mut self, name: impl Into<String>, parallelism: usize, factory: F) -> Self
    where
        B: Bolt + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        self.bolts.push(BoltSpec {
            name: name.into(),
            parallelism,
            factory: Arc::new(move || Box::new(factory())),
            subscriptions: Vec::new(),
        });
        self.current_bolt = Some(self.bolts.len() - 1);
        self
    }

    fn subscribe(mut self, upstream: impl Into<String>, grouping: Grouping) -> Self {
        let idx = self.current_bolt.expect("grouping call must follow set_bolt");
        self.bolts[idx].subscriptions.push((upstream.into(), grouping));
        self
    }

    /// Subscribe the current bolt with shuffle grouping.
    pub fn shuffle_grouping(self, upstream: impl Into<String>) -> Self {
        self.subscribe(upstream, Grouping::Shuffle)
    }

    /// Subscribe with fields (key-hash) grouping.
    pub fn fields_grouping(self, upstream: impl Into<String>, keys: Vec<String>) -> Self {
        self.subscribe(upstream, Grouping::Fields(keys))
    }

    /// Subscribe with global grouping.
    pub fn global_grouping(self, upstream: impl Into<String>) -> Self {
        self.subscribe(upstream, Grouping::Global)
    }

    /// Subscribe with all (broadcast) grouping.
    pub fn all_grouping(self, upstream: impl Into<String>) -> Self {
        self.subscribe(upstream, Grouping::All)
    }

    /// Validate and produce the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let TopologyBuilder { name, spouts, bolts, .. } = self;
        if spouts.is_empty() {
            return Err(TopologyError::NoSpouts);
        }
        let mut names = HashSet::new();
        for n in spouts.iter().map(|s| &s.name).chain(bolts.iter().map(|b| &b.name)) {
            if !names.insert(n.clone()) {
                return Err(TopologyError::DuplicateComponent(n.clone()));
            }
        }
        for s in &spouts {
            if s.parallelism == 0 {
                return Err(TopologyError::ZeroParallelism(s.name.clone()));
            }
        }
        for b in &bolts {
            if b.parallelism == 0 {
                return Err(TopologyError::ZeroParallelism(b.name.clone()));
            }
            if b.subscriptions.is_empty() {
                return Err(TopologyError::UnsubscribedBolt(b.name.clone()));
            }
            for (up, _) in &b.subscriptions {
                if !names.contains(up) {
                    return Err(TopologyError::UnknownComponent(up.clone()));
                }
            }
        }
        // Kahn cycle check over components.
        let mut indegree: HashMap<&str, usize> = names.iter().map(|n| (n.as_str(), 0)).collect();
        for b in &bolts {
            for _ in &b.subscriptions {
                *indegree.get_mut(b.name.as_str()).expect("known") += 1;
            }
        }
        let mut queue: VecDeque<&str> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
        let mut visited = 0;
        while let Some(n) = queue.pop_front() {
            visited += 1;
            for b in &bolts {
                for (up, _) in &b.subscriptions {
                    if up == n {
                        let d = indegree.get_mut(b.name.as_str()).expect("known");
                        *d -= 1;
                        if *d == 0 {
                            queue.push_back(b.name.as_str());
                        }
                    }
                }
            }
        }
        if visited != names.len() {
            return Err(TopologyError::Cycle);
        }
        Ok(Topology { name, spouts, bolts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullSpout;
    impl StormSpout for NullSpout {
        fn next_tuple(&mut self, _c: &mut SpoutCollector) -> SpoutStatus {
            SpoutStatus::Exhausted
        }
    }
    struct NullBolt;
    impl Bolt for NullBolt {
        fn execute(&mut self, _t: &StreamPacket, _c: &mut BoltCollector) {}
    }

    #[test]
    fn relay_topology_builds() {
        let t = TopologyBuilder::new("relay")
            .set_spout("spout", 1, || NullSpout)
            .set_bolt("relay", 2, || NullBolt)
            .shuffle_grouping("spout")
            .set_bolt("sink", 1, || NullBolt)
            .shuffle_grouping("relay")
            .build()
            .unwrap();
        assert_eq!(t.name(), "relay");
        assert_eq!(t.spouts().len(), 1);
        assert_eq!(t.bolts().len(), 2);
        assert_eq!(t.bolts()[0].subscriptions.len(), 1);
    }

    #[test]
    fn multiple_subscriptions_allowed() {
        let t = TopologyBuilder::new("join")
            .set_spout("a", 1, || NullSpout)
            .set_spout("b", 1, || NullSpout)
            .set_bolt("join", 1, || NullBolt)
            .shuffle_grouping("a")
            .fields_grouping("b", vec!["k".into()])
            .build()
            .unwrap();
        assert_eq!(t.bolts()[0].subscriptions.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = TopologyBuilder::new("t")
            .set_spout("x", 1, || NullSpout)
            .set_bolt("x", 1, || NullBolt)
            .shuffle_grouping("x")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateComponent("x".into()));
    }

    #[test]
    fn unknown_upstream_rejected() {
        let err = TopologyBuilder::new("t")
            .set_spout("s", 1, || NullSpout)
            .set_bolt("b", 1, || NullBolt)
            .shuffle_grouping("ghost")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownComponent("ghost".into()));
    }

    #[test]
    fn unsubscribed_bolt_rejected() {
        let err = TopologyBuilder::new("t")
            .set_spout("s", 1, || NullSpout)
            .set_bolt("b", 1, || NullBolt)
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::UnsubscribedBolt("b".into()));
    }

    #[test]
    fn cycle_rejected() {
        let err = TopologyBuilder::new("t")
            .set_spout("s", 1, || NullSpout)
            .set_bolt("a", 1, || NullBolt)
            .shuffle_grouping("s")
            .shuffle_grouping("b")
            .set_bolt("b", 1, || NullBolt)
            .shuffle_grouping("a")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::Cycle);
    }

    #[test]
    fn no_spouts_rejected() {
        assert_eq!(TopologyBuilder::new("t").build().unwrap_err(), TopologyError::NoSpouts);
    }

    #[test]
    fn collectors_accumulate() {
        let mut sc = SpoutCollector::default();
        sc.emit(StreamPacket::new());
        sc.emit(StreamPacket::new());
        assert_eq!(sc.emitted.len(), 2);
        let mut bc = BoltCollector::default();
        bc.emit(StreamPacket::new());
        bc.ack();
        bc.ack();
        bc.fail();
        assert_eq!(bc.emitted.len(), 1);
        assert_eq!(bc.acked, 2);
        assert_eq!(bc.failed, 1);
    }
}
