//! Snapshot rendering: pretty text and Prometheus text-exposition format.
//!
//! This crate knows nothing about jobs, operators, or queues — the helpers
//! here render *histograms and scalars*, and `neptune-core` composes them
//! into full documents (per-operator sections, queue gauges, pool stats).
//! JSON export lives in `neptune-core` too, next to the repo's hand-rolled
//! JSON module.
//!
//! Prometheus mapping: a latency histogram exports as a `summary` (the
//! quantiles are precomputed server-side, which is exactly what a
//! log-bucketed histogram gives us), scalars as `gauge`s. Output follows
//! the text-exposition rules: `# TYPE` lines, label pairs, one sample per
//! line, terminated by `\n`.

use crate::histogram::HistogramSnapshot;

/// Escape a label value per the Prometheus text format (`\`, `"`, `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Append one bare sample line (`metric{labels} value`) with no `# TYPE`
/// header — callers that emit many label sets for the same metric write
/// the header once themselves, as the text format requires.
pub fn sample_line(out: &mut String, metric: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(&format!("{metric}{} {value}\n", render_labels(labels, None)));
}

/// Append the sample lines of a `summary` (three quantiles plus `_sum` and
/// `_count`) without any `# TYPE` header.
pub fn summary_samples(
    out: &mut String,
    metric: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    for (q, v) in [("0.5", snap.p50()), ("0.95", snap.p95()), ("0.99", snap.p99())] {
        out.push_str(&format!("{metric}{} {v}\n", render_labels(labels, Some(("quantile", q)))));
    }
    out.push_str(&format!("{metric}_sum{} {}\n", render_labels(labels, None), snap.sum()));
    out.push_str(&format!("{metric}_count{} {}\n", render_labels(labels, None), snap.count()));
}

/// Append a Prometheus `summary` for one histogram snapshot: quantile
/// samples plus `_sum`, `_count`, and `_max` companions.
pub fn prometheus_summary(
    out: &mut String,
    metric: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    out.push_str(&format!("# TYPE {metric} summary\n"));
    summary_samples(out, metric, labels, snap);
    out.push_str(&format!("# TYPE {metric}_max gauge\n"));
    sample_line(out, &format!("{metric}_max"), labels, snap.max());
}

/// Append a Prometheus `gauge` sample.
pub fn prometheus_gauge(out: &mut String, metric: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(&format!("# TYPE {metric} gauge\n"));
    sample_line(out, metric, labels, value);
}

/// Append a Prometheus `counter` sample.
pub fn prometheus_counter(out: &mut String, metric: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(&format!("# TYPE {metric} counter\n"));
    sample_line(out, metric, labels, value);
}

/// Render a microsecond duration for humans: `17µs`, `1.25ms`, `3.40s`.
pub fn format_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// One aligned pretty-text line for a histogram of microsecond latencies:
/// `name  count=1234  p50=1.2ms  p95=3.4ms  p99=5.6ms  max=7.8ms`.
pub fn pretty_line(name: &str, snap: &HistogramSnapshot) -> String {
    if snap.count() == 0 {
        return format!("{name:<16} (no samples)");
    }
    format!(
        "{name:<16} count={:<9} p50={:<9} p95={:<9} p99={:<9} max={}",
        snap.count(),
        format_micros(snap.p50()),
        format_micros(snap.p95()),
        format_micros(snap.p99()),
        format_micros(snap.max()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;

    fn sample_snapshot() -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        for v in [100u64, 200, 5_000, 1_000_000] {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn summary_has_quantiles_sum_count_max() {
        let mut out = String::new();
        prometheus_summary(
            &mut out,
            "neptune_e2e_latency_us",
            &[("operator", "relay")],
            &sample_snapshot(),
        );
        assert!(out.contains("# TYPE neptune_e2e_latency_us summary\n"));
        assert!(out.contains("neptune_e2e_latency_us{operator=\"relay\",quantile=\"0.5\"}"));
        assert!(out.contains("neptune_e2e_latency_us{operator=\"relay\",quantile=\"0.99\"}"));
        assert!(out.contains("neptune_e2e_latency_us_sum{operator=\"relay\"} 1005300\n"));
        assert!(out.contains("neptune_e2e_latency_us_count{operator=\"relay\"} 4\n"));
        assert!(out.contains("neptune_e2e_latency_us_max{operator=\"relay\"} 1000000\n"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn gauge_and_counter_render() {
        let mut out = String::new();
        prometheus_gauge(&mut out, "neptune_queue_depth", &[("queue", "0")], 17);
        prometheus_counter(&mut out, "neptune_gate_events_total", &[], 3);
        assert!(out.contains("neptune_queue_depth{queue=\"0\"} 17\n"));
        assert!(out.contains("neptune_gate_events_total 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn pretty_line_formats_durations() {
        let line = pretty_line("e2e", &sample_snapshot());
        assert!(line.contains("count=4"));
        assert!(line.contains("max=1.00s"));
        assert_eq!(
            pretty_line("empty", &HistogramSnapshot::empty()),
            "empty            (no samples)"
        );
    }

    #[test]
    fn format_micros_units() {
        assert_eq!(format_micros(17), "17µs");
        assert_eq!(format_micros(1_250), "1.25ms");
        assert_eq!(format_micros(3_400_000), "3.40s");
    }
}
