//! One schema, three renderers: the `Exporter` trait.
//!
//! The repo's scalar stats blocks (thread-model gauges, containment
//! counters, per-operator counters, ...) used to be rendered by three
//! hand-rolled walkers — pretty text, JSON, and Prometheus — that
//! drifted: every new gauge had to be added in three places. Now each
//! stats struct declares its fields **once** as a [`FieldDef`] table
//! and walks any [`Exporter`]; this module ships the text renderers
//! ([`PrettyExporter`], [`PrometheusExporter`]) and `neptune-core`
//! implements the JSON one over its own `JsonValue` type.
//!
//! A walk is a flat sequence of groups: `begin_group(...)`, `field(...)`
//! per field, `end_group()`. Groups with the same `json_key` merge into
//! one JSON object (e.g. the "io tier" and "net tier" pretty lines both
//! land in `thread_model`); Prometheus samples buffer per metric so the
//! `# TYPE` header appears exactly once even when many label sets share
//! a metric.

/// How a scalar exports to Prometheus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
}

impl FieldKind {
    /// The `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            FieldKind::Counter => "counter",
            FieldKind::Gauge => "gauge",
        }
    }
}

/// One scalar field's render schema, declared once per stats struct.
/// An empty string opts the field out of that format.
#[derive(Debug, Clone, Copy)]
pub struct FieldDef {
    /// Key in the JSON export (`""` = omit from JSON).
    pub json_key: &'static str,
    /// `key=value` label on the pretty line (`""` = omit from pretty).
    pub pretty_key: &'static str,
    /// Prometheus metric name (`""` = omit from Prometheus).
    pub prom_name: &'static str,
    /// Prometheus metric type.
    pub prom_kind: FieldKind,
}

/// A renderer fed by a stats struct's schema walk.
pub trait Exporter {
    /// Start a group of fields. `pretty_label` prefixes the pretty line
    /// (`""` = the whole group is invisible in pretty); `json_key`
    /// names the JSON object the fields land in (groups sharing a key
    /// merge); `labels` attach to every Prometheus sample the group
    /// emits.
    fn begin_group(&mut self, pretty_label: &str, json_key: &str, labels: &[(&str, &str)]);
    /// One scalar field of the current group.
    fn field(&mut self, def: &FieldDef, value: u64);
    /// End the current group.
    fn end_group(&mut self);
}

/// Renders each group as one `label: k=v k=v ...` line.
#[derive(Debug, Default)]
pub struct PrettyExporter {
    out: String,
    line: String,
    visible: bool,
}

impl PrettyExporter {
    /// Empty renderer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered lines (each `\n`-terminated).
    pub fn finish(self) -> String {
        self.out
    }
}

impl Exporter for PrettyExporter {
    fn begin_group(&mut self, pretty_label: &str, _json_key: &str, _labels: &[(&str, &str)]) {
        self.visible = !pretty_label.is_empty();
        if self.visible {
            self.line = format!("{pretty_label}:");
        }
    }

    fn field(&mut self, def: &FieldDef, value: u64) {
        if self.visible && !def.pretty_key.is_empty() {
            self.line.push_str(&format!(" {}={value}", def.pretty_key));
        }
    }

    fn end_group(&mut self) {
        if self.visible {
            self.out.push_str(&self.line);
            self.out.push('\n');
            self.line.clear();
        }
    }
}

/// Renders Prometheus text exposition. Samples buffer per metric (in
/// first-seen order) so each metric gets exactly one `# TYPE` header
/// with all its label sets grouped under it, as the format requires.
#[derive(Debug, Default)]
pub struct PrometheusExporter {
    /// `(metric name, kind, sample lines)` in first-seen order.
    metrics: Vec<(String, FieldKind, Vec<String>)>,
    labels: String,
}

impl PrometheusExporter {
    /// Empty renderer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered exposition block.
    pub fn finish(self) -> String {
        let mut out = String::new();
        for (name, kind, samples) in self.metrics {
            out.push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
            for s in samples {
                out.push_str(&s);
            }
        }
        out
    }
}

fn escape_prom_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl Exporter for PrometheusExporter {
    fn begin_group(&mut self, _pretty_label: &str, _json_key: &str, labels: &[(&str, &str)]) {
        self.labels = if labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_prom_label(v))).collect();
            format!("{{{}}}", pairs.join(","))
        };
    }

    fn field(&mut self, def: &FieldDef, value: u64) {
        if def.prom_name.is_empty() {
            return;
        }
        let line = format!("{}{} {value}\n", def.prom_name, self.labels);
        match self.metrics.iter_mut().find(|(name, _, _)| name == def.prom_name) {
            Some((_, _, samples)) => samples.push(line),
            None => self.metrics.push((def.prom_name.to_string(), def.prom_kind, vec![line])),
        }
    }

    fn end_group(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIELDS: [FieldDef; 3] = [
        FieldDef {
            json_key: "io_parks",
            pretty_key: "parks",
            prom_name: "neptune_io_parks_total",
            prom_kind: FieldKind::Counter,
        },
        FieldDef {
            json_key: "io_polls",
            pretty_key: "",
            prom_name: "neptune_io_polls_total",
            prom_kind: FieldKind::Counter,
        },
        FieldDef {
            json_key: "depth",
            pretty_key: "depth",
            prom_name: "neptune_queue_depth",
            prom_kind: FieldKind::Gauge,
        },
    ];

    fn walk(e: &mut dyn Exporter, label: &str, labels: &[(&str, &str)], values: [u64; 3]) {
        e.begin_group(label, "tier", labels);
        for (def, v) in FIELDS.iter().zip(values) {
            e.field(def, v);
        }
        e.end_group();
    }

    #[test]
    fn pretty_renders_one_line_per_group_skipping_hidden() {
        let mut e = PrettyExporter::new();
        walk(&mut e, "io tier", &[], [5, 6, 7]);
        walk(&mut e, "", &[], [1, 2, 3]); // invisible group
        assert_eq!(e.finish(), "io tier: parks=5 depth=7\n");
    }

    #[test]
    fn prometheus_groups_samples_under_one_type_header() {
        let mut e = PrometheusExporter::new();
        walk(&mut e, "q", &[("queue", "0")], [1, 2, 3]);
        walk(&mut e, "q", &[("queue", "1")], [4, 5, 6]);
        let out = e.finish();
        assert_eq!(out.matches("# TYPE neptune_queue_depth gauge").count(), 1);
        assert!(out.contains("neptune_queue_depth{queue=\"0\"} 3\n"));
        assert!(out.contains("neptune_queue_depth{queue=\"1\"} 6\n"));
        // All samples of a metric are contiguous under its header.
        let header = out.find("# TYPE neptune_queue_depth gauge").unwrap();
        let q0 = out.find("neptune_queue_depth{queue=\"0\"}").unwrap();
        let q1 = out.find("neptune_queue_depth{queue=\"1\"}").unwrap();
        assert!(header < q0 && q0 < q1);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut e = PrometheusExporter::new();
        walk(&mut e, "q", &[("op", "a\"b")], [1, 0, 0]);
        assert!(e.finish().contains("{op=\"a\\\"b\"}"));
    }
}
