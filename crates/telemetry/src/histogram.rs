//! Lock-free log-bucketed latency histogram (HDR-style).
//!
//! NEPTUNE's evaluation (§IV) reports end-to-end latency distributions, and
//! the flush-timer bound of §III-B1 (Fig. 2) is a claim about the *tail* of
//! that distribution — so the recorder must capture percentiles, not means,
//! and must do so without perturbing the hot path it measures.
//!
//! The design is the classic log-linear layout: values below 2^SUB_BITS are
//! counted exactly (one bucket per value); above that, each power-of-two
//! octave is split into 2^SUB_BITS linear sub-buckets, bounding relative
//! quantization error at 1/2^SUB_BITS (6.25% here) across the full `u64`
//! range. Recording is a single `fetch_add(1, Relaxed)` on a fixed-size
//! `[AtomicU64; N]` — no locks, no allocation, wait-free on x86/ARM.
//!
//! Snapshots are plain `Vec<u64>` copies that can be merged across shards
//! (one histogram per operator instance) and queried for quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear/sub-bucket resolution: 2^4 = 16 sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover `0..=u64::MAX` at this resolution:
/// index(u64::MAX) = ((63 - SUB_BITS + 1) << SUB_BITS) + (SUB - 1) = 975.
pub const N_BUCKETS: usize = (((63 - SUB_BITS as usize + 1) << SUB_BITS) | (SUB as usize - 1)) + 1;

/// Map a recorded value to its bucket index. Monotone non-decreasing and
/// continuous across the linear/log boundary (values `0..16` map to
/// indices `0..16`; `16..32` to `16..32`; then 16 buckets per octave).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let msb = 63 - (v | 1).leading_zeros();
    if msb < SUB_BITS {
        v as usize
    } else {
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Smallest value that lands in bucket `i` (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    let exp = (i >> SUB_BITS) as u32;
    let sub = (i as u64) & (SUB - 1);
    if exp == 0 {
        i as u64
    } else {
        (SUB + sub) << (exp - 1)
    }
}

/// Largest value that lands in bucket `i`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(i + 1) - 1
    }
}

/// A concurrent latency histogram. All recording is `Relaxed` atomic — the
/// per-bucket counts are independent monotonic counters and a snapshot is
/// allowed to be *slightly* torn across buckets (telemetry, not ledger).
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free; safe from any number of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into an inert, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; N_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram").field("count", &self.count()).finish_non_exhaustive()
    }
}

/// An inert copy of a histogram: mergeable across shards and queryable for
/// quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; N_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another shard's snapshot into this one. Merge-of-shards is
    /// exactly equivalent to having recorded every value into a single
    /// histogram (property-tested in `tests/histogram_props.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest recording, clamped to the
    /// observed max. Monotone non-decreasing in `q`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Per-bucket (lower_bound, count) pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }

    /// Sparse `(bucket_index, count)` pairs for non-empty buckets — the
    /// wire form `neptune-cluster` nodes ship in telemetry reports.
    /// Latency histograms are overwhelmingly sparse (a handful of octaves
    /// out of [`N_BUCKETS`]), so this is far smaller than the dense array
    /// and [`from_sparse`](Self::from_sparse) rebuilds it losslessly.
    pub fn sparse_counts(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuild a snapshot from [`sparse_counts`](Self::sparse_counts)
    /// output plus the scalar tallies. Out-of-range bucket indices (a
    /// newer peer with more buckets) are clamped into the last bucket so a
    /// merge never panics and totals stay consistent.
    pub fn from_sparse(buckets: &[(u32, u64)], count: u64, sum: u64, max: u64) -> Self {
        let mut counts = vec![0u64; N_BUCKETS];
        for &(i, c) in buckets {
            let i = (i as usize).min(N_BUCKETS - 1);
            counts[i] += c;
        }
        HistogramSnapshot { counts, count, sum, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_covers_u64_max() {
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(N_BUCKETS, 976);
    }

    #[test]
    fn index_is_monotone_and_continuous_at_boundaries() {
        // Exhaustive over the linear region and the first octaves.
        let mut prev = 0usize;
        for v in 0u64..4096 {
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone at v={v}");
            assert!(i - prev <= 1, "index must not skip buckets at v={v}");
            prev = i;
        }
        // Identity in the linear region.
        for v in 0u64..32 {
            assert_eq!(bucket_index(v), v as usize);
        }
    }

    #[test]
    fn bounds_invert_index() {
        for i in 0..N_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps back");
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i} maps back");
        }
    }

    #[test]
    fn records_extremes() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_respect_relative_error() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for (q, exact) in [(0.50, 5_000f64), (0.95, 9_500f64), (0.99, 9_900f64)] {
            let got = s.quantile(q) as f64;
            assert!(
                got >= exact && got <= exact * (1.0 + 1.0 / SUB as f64),
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(s.max(), 10_000);
    }

    #[test]
    fn empty_snapshot_is_zeroes() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), 1_000_000);
        assert_eq!(s.sum(), 1_000_030);
    }

    #[test]
    fn sparse_roundtrip_is_lossless() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 15, 16, 17, 1_000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt =
            HistogramSnapshot::from_sparse(&s.sparse_counts(), s.count(), s.sum(), s.max());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.p99(), s.p99());
        // Unknown future bucket indices clamp instead of panicking.
        let clamped = HistogramSnapshot::from_sparse(&[(u32::MAX, 3)], 3, 30, 10);
        assert_eq!(clamped.count(), 3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
