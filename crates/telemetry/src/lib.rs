//! # neptune-telemetry
//!
//! Observability primitives for the NEPTUNE reproduction: lock-free
//! log-bucketed latency histograms, per-operator stage timing, a bounded
//! background time-series sampler, and text/Prometheus exporters.
//!
//! The paper evaluates exactly three axes — throughput, end-to-end
//! latency, and bandwidth (§IV) — and its headline claims are about
//! latency *distributions* (the flush-timer bound of Fig. 2 caps the
//! tail) and queue dynamics over *time* (the backpressure oscillation of
//! Fig. 4). This crate provides the measurement substrate for both:
//!
//! * [`LatencyHistogram`] — a fixed `[AtomicU64; N]` HDR-style histogram;
//!   recording is one relaxed `fetch_add`, snapshots merge across shards
//!   and answer p50/p95/p99/max.
//! * [`OperatorTelemetry`] — one histogram per pipeline stage
//!   (buffer-wait, transport, schedule delay, execution) plus end-to-end.
//! * [`SampleRing`] — a thread-safe bounded `(elapsed_micros, sample)`
//!   time series any scheduler can record into (the runtime's IO-tier
//!   timer task does), with [`TelemetrySampler`] as the self-threaded
//!   driver for standalone use.
//! * [`SpanRing`] — causal per-packet tracing: deterministically sampled
//!   per-stage [`Span`]s in a lock-free thread-sharded seqlock ring,
//!   exportable as Chrome trace-event JSON (Perfetto-loadable).
//! * [`FlightRecorder`] — a bounded lock-free timeline of structured
//!   [`RuntimeEvent`]s (gate transitions, shedding, breaker trips,
//!   reconnects, dead-letter admits), dumped on failure and served live.
//! * [`export`] — Prometheus text-exposition and pretty-text rendering —
//!   and [`exporter`], the schema-driven [`Exporter`] trait that keeps
//!   the pretty/JSON/Prometheus walkers from drifting.
//!
//! This crate is deliberately dependency-free and job-agnostic: it knows
//! nothing about operators, queues, or configs. `neptune-core` owns the
//! wiring (what gets recorded where) and the job-level snapshot types.

mod histogram;
mod recorder;
mod ring;
mod sampler;
mod stages;
mod trace;

pub mod export;
pub mod exporter;

pub use exporter::{Exporter, FieldDef, FieldKind, PrettyExporter, PrometheusExporter};
pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    N_BUCKETS,
};
pub use recorder::{EventKind, FlightRecorder, RuntimeEvent};
pub use ring::{Packable, SeqRing};
pub use sampler::{SampleRing, TelemetrySampler};
pub use stages::{OperatorTelemetry, OperatorTelemetrySnapshot, STAGE_NAMES};
pub use trace::{
    chrome_trace_json, wall_micros, PendingTrace, Span, SpanRing, STAGE_BUFFER_WAIT,
    STAGE_EXECUTION, STAGE_REACTOR, STAGE_SCHEDULE, STAGE_SINK, STAGE_SOURCE, STAGE_TRANSPORT,
    TRACE_STAGE_NAMES,
};
