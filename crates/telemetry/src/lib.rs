//! # neptune-telemetry
//!
//! Observability primitives for the NEPTUNE reproduction: lock-free
//! log-bucketed latency histograms, per-operator stage timing, a bounded
//! background time-series sampler, and text/Prometheus exporters.
//!
//! The paper evaluates exactly three axes — throughput, end-to-end
//! latency, and bandwidth (§IV) — and its headline claims are about
//! latency *distributions* (the flush-timer bound of Fig. 2 caps the
//! tail) and queue dynamics over *time* (the backpressure oscillation of
//! Fig. 4). This crate provides the measurement substrate for both:
//!
//! * [`LatencyHistogram`] — a fixed `[AtomicU64; N]` HDR-style histogram;
//!   recording is one relaxed `fetch_add`, snapshots merge across shards
//!   and answer p50/p95/p99/max.
//! * [`OperatorTelemetry`] — one histogram per pipeline stage
//!   (buffer-wait, transport, schedule delay, execution) plus end-to-end.
//! * [`SampleRing`] — a thread-safe bounded `(elapsed_micros, sample)`
//!   time series any scheduler can record into (the runtime's IO-tier
//!   timer task does), with [`TelemetrySampler`] as the self-threaded
//!   driver for standalone use.
//! * [`export`] — Prometheus text-exposition and pretty-text rendering.
//!
//! This crate is deliberately dependency-free and job-agnostic: it knows
//! nothing about operators, queues, or configs. `neptune-core` owns the
//! wiring (what gets recorded where) and the job-level snapshot types.

mod histogram;
mod sampler;
mod stages;

pub mod export;

pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    N_BUCKETS,
};
pub use sampler::{SampleRing, TelemetrySampler};
pub use stages::{OperatorTelemetry, OperatorTelemetrySnapshot, STAGE_NAMES};
