//! Black-box flight recorder: a bounded, lock-free ring of structured
//! runtime events.
//!
//! Every subsystem already *counts* its rare transitions — gate
//! open/close, shedding, breaker trips, reconnects, dead-letter admits,
//! reactor stalls — but counters can't answer "in what order did these
//! happen before the job fell over?". The recorder timelines them: each
//! transition appends one fixed-size [`RuntimeEvent`] to a seqlock ring
//! (see [`crate::ring`]), overwriting oldest. Recording is wait-free
//! and cheap enough to leave on; the ring is dumped on panic or job
//! failure and queryable live via `JobHandle::flight_recorder()` and
//! the `/events` scrape route.
//!
//! Unlike the span ring the recorder is a single shard: the point is a
//! strict global order of transitions, which the ring's claim index
//! provides for free.

use crate::ring::{Packable, SeqRing};
use crate::trace::{json_escape, wall_micros};

/// What happened. Subjects and details are event-specific 64-bit
/// payloads (queue index, link id, replayed-frame count, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Backpressure gate engaged on a watermark queue (subject = queue
    /// id, detail = buffered bytes).
    GateClosed = 0,
    /// Backpressure gate released (subject = queue id, detail = gated
    /// microseconds).
    GateOpened = 1,
    /// Shed policy sacrificed items (subject = queue id, detail =
    /// bytes).
    Shed = 2,
    /// Circuit breaker tripped open (subject = breaker id, detail =
    /// consecutive failures).
    BreakerOpen = 3,
    /// Breaker allowing probes (subject = breaker id).
    BreakerHalfOpen = 4,
    /// Breaker closed after successful probes (subject = breaker id).
    BreakerClosed = 5,
    /// A supervised link lost its transport (subject = link id, detail
    /// = unacked frames at cut time).
    LinkCut = 6,
    /// Reconnect attempt starting (subject = link id, detail =
    /// attempt number).
    Reconnecting = 7,
    /// Reconnect succeeded (subject = link id, detail = attempt
    /// number).
    Reconnected = 8,
    /// Unacked frames replayed after reconnect (subject = link id,
    /// detail = frames replayed).
    Replay = 9,
    /// Supervised link gave up (subject = link id).
    LinkFailed = 10,
    /// Failure detector moved a peer to Suspect (subject = peer id).
    PeerSuspect = 11,
    /// Failure detector declared a peer Dead (subject = peer id).
    PeerDead = 12,
    /// A Suspect/Dead peer came back (subject = peer id).
    PeerAlive = 13,
    /// Poison batch admitted to the dead-letter queue (subject =
    /// link id, detail = base seq).
    DeadLetter = 14,
    /// Reactor dispatch pressure: an event-buffer-filling poll or a
    /// wake delivered to a retired task (subject = events in batch).
    ReactorStall = 15,
    /// Operator panic caught by the supervisor (subject = link id,
    /// detail = attempt).
    Panic = 16,
}

impl EventKind {
    /// Stable snake_case name used by exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::GateClosed => "gate_closed",
            EventKind::GateOpened => "gate_opened",
            EventKind::Shed => "shed",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerHalfOpen => "breaker_half_open",
            EventKind::BreakerClosed => "breaker_closed",
            EventKind::LinkCut => "link_cut",
            EventKind::Reconnecting => "reconnecting",
            EventKind::Reconnected => "reconnected",
            EventKind::Replay => "replay",
            EventKind::LinkFailed => "link_failed",
            EventKind::PeerSuspect => "peer_suspect",
            EventKind::PeerDead => "peer_dead",
            EventKind::PeerAlive => "peer_alive",
            EventKind::DeadLetter => "dead_letter",
            EventKind::ReactorStall => "reactor_stall",
            EventKind::Panic => "panic",
        }
    }

    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::GateClosed,
            1 => EventKind::GateOpened,
            2 => EventKind::Shed,
            3 => EventKind::BreakerOpen,
            4 => EventKind::BreakerHalfOpen,
            5 => EventKind::BreakerClosed,
            6 => EventKind::LinkCut,
            7 => EventKind::Reconnecting,
            8 => EventKind::Reconnected,
            9 => EventKind::Replay,
            10 => EventKind::LinkFailed,
            11 => EventKind::PeerSuspect,
            12 => EventKind::PeerDead,
            13 => EventKind::PeerAlive,
            14 => EventKind::DeadLetter,
            15 => EventKind::ReactorStall,
            _ => EventKind::Panic,
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// Wall clock, microseconds since the Unix epoch.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event-specific subject (queue id, link id, peer id, ...).
    pub subject: u64,
    /// Event-specific detail (bytes, counts, attempt numbers, ...).
    pub detail: u64,
}

impl Packable<4> for RuntimeEvent {
    fn pack(&self) -> [u64; 4] {
        [self.at_micros, self.kind as u64, self.subject, self.detail]
    }

    fn unpack(words: [u64; 4]) -> Self {
        RuntimeEvent {
            at_micros: words[0],
            kind: EventKind::from_u8((words[1] & 0xFF) as u8),
            subject: words[2],
            detail: words[3],
        }
    }
}

/// Bounded, lock-free timeline of runtime transitions.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: SeqRing<RuntimeEvent, 4>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent ~`capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: SeqRing::new(capacity) }
    }

    /// Append one event stamped with the current wall clock.
    #[inline]
    pub fn record(&self, kind: EventKind, subject: u64, detail: u64) {
        self.record_at(wall_micros(), kind, subject, detail);
    }

    /// Append one event with an explicit timestamp (tests, replays).
    #[inline]
    pub fn record_at(&self, at_micros: u64, kind: EventKind, subject: u64, detail: u64) {
        self.ring.push(RuntimeEvent { at_micros, kind, subject, detail });
    }

    /// Events recorded so far (including overwritten ones).
    pub fn events(&self) -> u64 {
        self.ring.recorded()
    }

    /// Events lost to slot-claim races (not ordinary ring overwrite).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Copy out the surviving timeline, oldest first, in strict record
    /// order.
    pub fn snapshot(&self) -> Vec<RuntimeEvent> {
        self.ring.snapshot()
    }

    /// True when the timeline contains `kinds` as a (not necessarily
    /// contiguous) subsequence, in order — the chaos harness's
    /// "link-cut → suspect → reconnect → replay" style assertion.
    pub fn contains_sequence(&self, kinds: &[EventKind]) -> bool {
        let mut want = kinds.iter();
        let mut next = want.next();
        for ev in self.snapshot() {
            match next {
                None => return true,
                Some(k) if *k == ev.kind => next = want.next(),
                Some(_) => {}
            }
        }
        next.is_none()
    }

    /// JSON document for the `/events` scrape route:
    /// `{"events":[{"seq":..,"at_micros":..,"kind":"..","subject":..,"detail":..}]}`.
    pub fn to_json(&self) -> String {
        let events = self.ring.snapshot_indexed();
        let mut out = String::with_capacity(32 + events.len() * 80);
        out.push_str("{\"events\":[");
        for (i, (seq, ev)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{seq},\"at_micros\":{},\"kind\":\"{}\",\"subject\":{},\
                 \"detail\":{}}}",
                ev.at_micros,
                json_escape(ev.kind.as_str()),
                ev.subject,
                ev.detail
            ));
        }
        out.push_str(&format!("],\"recorded\":{},\"dropped\":{}}}", self.events(), self.dropped()));
        out
    }

    /// Human-readable dump, one line per event — what lands in stderr
    /// when a job panics.
    pub fn render(&self) -> String {
        let events = self.ring.snapshot_indexed();
        let mut out = String::with_capacity(32 + events.len() * 64);
        out.push_str(&format!(
            "flight recorder: {} events ({} recorded, {} dropped)\n",
            events.len(),
            self.events(),
            self.dropped()
        ));
        for (seq, ev) in events {
            out.push_str(&format!(
                "  [{seq}] t={}us {} subject={} detail={}\n",
                ev.at_micros,
                ev.kind.as_str(),
                ev.subject,
                ev.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_round_trips() {
        for k in [
            EventKind::GateClosed,
            EventKind::Shed,
            EventKind::LinkCut,
            EventKind::Replay,
            EventKind::ReactorStall,
            EventKind::Panic,
        ] {
            assert_eq!(EventKind::from_u8(k as u8), k);
            let ev = RuntimeEvent { at_micros: 1, kind: k, subject: 2, detail: 3 };
            assert_eq!(RuntimeEvent::unpack(ev.pack()), ev);
        }
    }

    #[test]
    fn snapshot_preserves_record_order() {
        let r = FlightRecorder::new(64);
        r.record_at(10, EventKind::LinkCut, 1, 0);
        r.record_at(11, EventKind::PeerSuspect, 1, 0);
        r.record_at(12, EventKind::Reconnected, 1, 1);
        r.record_at(13, EventKind::Replay, 1, 5);
        let kinds: Vec<EventKind> = r.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::LinkCut,
                EventKind::PeerSuspect,
                EventKind::Reconnected,
                EventKind::Replay
            ]
        );
    }

    #[test]
    fn contains_sequence_is_subsequence_match() {
        let r = FlightRecorder::new(64);
        r.record(EventKind::GateClosed, 0, 0);
        r.record(EventKind::LinkCut, 1, 0);
        r.record(EventKind::Shed, 0, 100);
        r.record(EventKind::PeerSuspect, 1, 0);
        r.record(EventKind::Reconnected, 1, 2);
        r.record(EventKind::Replay, 1, 7);
        assert!(r.contains_sequence(&[
            EventKind::LinkCut,
            EventKind::PeerSuspect,
            EventKind::Reconnected,
            EventKind::Replay
        ]));
        assert!(!r.contains_sequence(&[EventKind::Replay, EventKind::LinkCut]));
        assert!(r.contains_sequence(&[]));
    }

    #[test]
    fn json_export_is_structured() {
        let r = FlightRecorder::new(8);
        r.record_at(99, EventKind::DeadLetter, 3, 40);
        let json = r.to_json();
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("\"kind\":\"dead_letter\""));
        assert!(json.contains("\"at_micros\":99"));
        assert!(json.contains("\"subject\":3"));
        assert!(json.contains("\"recorded\":1"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn render_lists_events() {
        let r = FlightRecorder::new(8);
        r.record_at(5, EventKind::BreakerOpen, 2, 4);
        let text = r.render();
        assert!(text.contains("flight recorder: 1 events"));
        assert!(text.contains("breaker_open subject=2 detail=4"));
    }

    #[test]
    fn ring_bounds_the_timeline() {
        let r = FlightRecorder::new(8);
        for i in 0..100 {
            r.record_at(i, EventKind::Shed, 0, i);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.last().unwrap().detail, 99);
        assert_eq!(r.events(), 100);
    }
}
