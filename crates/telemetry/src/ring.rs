//! Lock-free bounded ring of fixed-size records (seqlock slots).
//!
//! Shared storage for the tracing span ring and the flight recorder:
//! a power-of-two array of slots, each protected by its own version
//! word. Writers claim a slot by CAS-ing its version from even to odd,
//! store the payload as plain atomic words, and publish by storing the
//! next even version. Readers copy the words between two version loads
//! and discard the copy if the version moved — a per-slot seqlock.
//! Nothing ever blocks: a writer that loses the claim race (the ring
//! wrapped onto a slot that is mid-write) drops its record and bumps a
//! counter instead of spinning.
//!
//! Payloads are packed into `[u64; N]` words via [`Packable`] so every
//! access is a plain atomic load/store — no `unsafe`, no torn reads.

use std::sync::atomic::{AtomicU64, Ordering};

/// A record that round-trips through `N` machine words.
pub trait Packable<const N: usize>: Sized {
    /// Encode into words.
    fn pack(&self) -> [u64; N];
    /// Decode from words produced by [`Packable::pack`].
    fn unpack(words: [u64; N]) -> Self;
}

struct Slot<const N: usize> {
    /// Even = stable (0 = never written), odd = write in progress.
    version: AtomicU64,
    /// Claim index of the record currently stored, for global ordering.
    order: AtomicU64,
    words: [AtomicU64; N],
}

impl<const N: usize> Slot<N> {
    fn new() -> Self {
        Slot {
            version: AtomicU64::new(0),
            order: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bounded MPMC record ring; oldest records are overwritten when full.
pub struct SeqRing<T, const N: usize>
where
    T: Packable<N>,
{
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Slot<N>]>,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T, const N: usize> std::fmt::Debug for SeqRing<T, N>
where
    T: Packable<N>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl<T, const N: usize> SeqRing<T, N>
where
    T: Packable<N>,
{
    /// A ring holding at least `capacity` records (rounded up to a power
    /// of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        SeqRing {
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records successfully published (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records abandoned because the claimed slot was mid-write (claim
    /// race after a full wrap) — distinct from ordinary overwriting,
    /// which is the ring working as intended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish one record; returns `false` if it lost the slot-claim
    /// race and was dropped.
    pub fn push(&self, value: T) -> bool {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
        let ver = slot.version.load(Ordering::Acquire);
        if ver & 1 == 1
            || slot
                .version
                .compare_exchange(ver, ver + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let words = value.pack();
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        // Claim indices start at 0 but `order` uses 0 for "empty", so
        // store idx + 1.
        slot.order.store(idx + 1, Ordering::Relaxed);
        slot.version.store(ver + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Copy out every stable record with its claim index, oldest first.
    pub fn snapshot_indexed(&self) -> Vec<(u64, T)> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::SeqCst);
            if v1 == 0 || v1 & 1 == 1 {
                continue;
            }
            let words = std::array::from_fn(|i| slot.words[i].load(Ordering::SeqCst));
            let order = slot.order.load(Ordering::SeqCst);
            let v2 = slot.version.load(Ordering::SeqCst);
            if v1 == v2 && order > 0 {
                out.push((order - 1, T::unpack(words)));
            }
        }
        out.sort_by_key(|(order, _)| *order);
        out
    }

    /// Copy out every stable record, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.snapshot_indexed().into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Rec(u64, u64);

    impl Packable<2> for Rec {
        fn pack(&self) -> [u64; 2] {
            [self.0, self.1]
        }
        fn unpack(w: [u64; 2]) -> Self {
            Rec(w[0], w[1])
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SeqRing::<Rec, 2>::new(0).capacity(), 8);
        assert_eq!(SeqRing::<Rec, 2>::new(9).capacity(), 16);
        assert_eq!(SeqRing::<Rec, 2>::new(64).capacity(), 64);
    }

    #[test]
    fn snapshot_returns_records_in_claim_order() {
        let ring = SeqRing::<Rec, 2>::new(8);
        for i in 0..5u64 {
            assert!(ring.push(Rec(i, i * 10)));
        }
        let snap = ring.snapshot();
        assert_eq!(snap, vec![Rec(0, 0), Rec(1, 10), Rec(2, 20), Rec(3, 30), Rec(4, 40)]);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wrap_keeps_newest_records() {
        let ring = SeqRing::<Rec, 2>::new(8);
        for i in 0..20u64 {
            ring.push(Rec(i, 0));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.first().unwrap().0, 12);
        assert_eq!(snap.last().unwrap().0, 19);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let ring = std::sync::Arc::new(SeqRing::<Rec, 2>::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    r.push(Rec(t, i.wrapping_mul(t + 1)));
                }
            }));
        }
        let reader = {
            let r = ring.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for rec in r.snapshot() {
                        // A torn record would pair the wrong words.
                        assert!(rec.0 < 4, "thread id out of range: {rec:?}");
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ring.recorded() + ring.dropped(), 20_000);
    }
}
