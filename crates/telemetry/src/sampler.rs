//! Background time-series sampling.
//!
//! NEPTUNE's backpressure behavior (§III-B4, Fig. 4) is an *oscillation* —
//! throughput rises and falls as the watermark gate opens and closes — and
//! a single end-of-run number cannot show it. This module turns any
//! cheap-to-take snapshot into a bounded in-memory time series.
//!
//! Two layers:
//!
//! * [`SampleRing`] — the storage: a thread-safe bounded ring of
//!   `(elapsed_micros, sample)` pairs. Any scheduler can drive it; the
//!   runtime's IO tier records into one from a periodic timer task, so a
//!   job's sampling costs a timer registration instead of a dedicated
//!   thread.
//! * [`TelemetrySampler`] — the legacy self-threaded driver: spawns a
//!   background thread that invokes a closure at a fixed interval and
//!   records into its own ring. Kept for standalone use outside a runtime.
//!
//! Both are generic over the sample type so this crate stays free of
//! job-level types; `neptune-core` instantiates them with its own
//! `TelemetrySample`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A thread-safe bounded time series of `(elapsed_micros, sample)` pairs.
///
/// Elapsed time is measured from ring construction; once `capacity`
/// entries are retained the oldest drop first, and [`SampleRing::dropped`]
/// counts every eviction — bounded retention is by design, but the loss
/// is no longer silent (the counter surfaces in `ThreadModelStats` and
/// all exporters).
#[derive(Debug)]
pub struct SampleRing<T> {
    series: Mutex<VecDeque<(u64, T)>>,
    capacity: usize,
    started: Instant,
    dropped: AtomicU64,
}

impl<T> SampleRing<T> {
    /// An empty ring retaining at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        SampleRing {
            series: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            capacity: capacity.max(1),
            started: Instant::now(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one sample stamped with the elapsed time since the ring was
    /// created, evicting the oldest entry when full.
    pub fn record(&self, sample: T) {
        let elapsed = self.started.elapsed().as_micros() as u64;
        let mut series = self.series.lock().unwrap();
        if series.len() == self.capacity {
            series.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        series.push_back((elapsed, sample));
    }

    /// Samples evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.series.lock().unwrap().len()
    }

    /// True when no samples have been taken yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the retained series in chronological order.
    pub fn series(&self) -> Vec<(u64, T)>
    where
        T: Clone,
    {
        self.series.lock().unwrap().iter().cloned().collect()
    }
}

struct SamplerShared<T> {
    ring: SampleRing<T>,
    stop: AtomicBool,
}

/// A background thread sampling a closure into a bounded time series.
pub struct TelemetrySampler<T: Send + 'static> {
    shared: Arc<SamplerShared<T>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> TelemetrySampler<T> {
    /// Start sampling `f` every `interval` into a ring of at most
    /// `capacity` entries. One sample is taken immediately so even very
    /// short runs produce a non-empty series.
    pub fn start(
        interval: Duration,
        capacity: usize,
        f: impl Fn() -> T + Send + 'static,
    ) -> TelemetrySampler<T> {
        let shared = Arc::new(SamplerShared {
            ring: SampleRing::new(capacity),
            stop: AtomicBool::new(false),
        });
        let worker = shared.clone();
        let thread = std::thread::Builder::new()
            .name("neptune-telemetry-sampler".to_string())
            .spawn(move || loop {
                worker.ring.record(f());
                if worker.stop.load(Ordering::Acquire) {
                    return;
                }
                // Sleep in short slices so stop() is responsive even
                // with a long sampling interval.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if worker.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep((deadline - Instant::now()).min(Duration::from_millis(5)));
                }
            })
            .expect("spawn telemetry sampler thread");
        TelemetrySampler { shared, thread: Some(thread) }
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.shared.ring.len()
    }

    /// True when no samples have been taken yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the retained series as `(elapsed_micros, sample)` pairs in
    /// chronological order.
    pub fn series(&self) -> Vec<(u64, T)>
    where
        T: Clone,
    {
        self.shared.ring.series()
    }

    /// Stop the background thread. Idempotent; also invoked on drop.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl<T: Send + 'static> Drop for TelemetrySampler<T> {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn samples_at_interval_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let src = n.clone();
        let mut s = TelemetrySampler::start(Duration::from_millis(5), 1024, move || {
            src.fetch_add(1, Ordering::Relaxed)
        });
        std::thread::sleep(Duration::from_millis(40));
        s.stop();
        let series = s.series();
        assert!(series.len() >= 3, "expected several samples, got {}", series.len());
        // Chronological and strictly increasing sample values.
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        let len_after_stop = s.len();
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(s.len(), len_after_stop, "no samples after stop");
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = TelemetrySampler::start(Duration::from_micros(100), 8, || 0u8);
        std::thread::sleep(Duration::from_millis(30));
        s.stop();
        assert!(s.len() <= 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn immediate_sample_on_start() {
        let mut s = TelemetrySampler::start(Duration::from_secs(3600), 4, || 42u32);
        // Give the thread a moment to run its first iteration.
        for _ in 0..200 {
            if !s.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(s.series().first().map(|(_, v)| *v), Some(42));
        s.stop();
    }

    #[test]
    fn standalone_ring_bounds_and_orders() {
        let ring = SampleRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        for i in 0..10u32 {
            ring.record(i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6, "evictions are counted, not silent");
        let series = ring.series();
        assert_eq!(series.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0, "elapsed stamps must be monotonic");
        }
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let ring = SampleRing::new(0);
        ring.record(1u8);
        ring.record(2u8);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.series()[0].1, 2);
    }
}
