//! Per-operator stage timing: where a packet's end-to-end latency goes.
//!
//! NEPTUNE's data path decomposes a packet's journey into four waits
//! (§III-B): it sits in the sender's `OutputBuffer` until a size or timer
//! flush (*buffer-wait*), crosses the transport to the destination queue
//! (*transport*), waits there until the Granules scheduler runs the
//! receiving task (*schedule delay*), and is finally decoded and processed
//! (*execution*). [`OperatorTelemetry`] holds one lock-free histogram per
//! stage plus the end-to-end distribution measured against the source
//! timestamp carried in the packet — the quantity Fig. 2 bounds with the
//! flush timer.
//!
//! All durations are recorded in **microseconds**.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// Stage names in pipeline order, used by exporters as label values.
pub const STAGE_NAMES: [&str; 4] = ["buffer_wait", "transport", "schedule_delay", "execution"];

/// Lock-free per-operator recorder: four stage histograms plus end-to-end.
#[derive(Debug, Default)]
pub struct OperatorTelemetry {
    /// Packet enqueue → batch flush in the sender's `OutputBuffer`.
    pub buffer_wait: LatencyHistogram,
    /// Batch flush → arrival on the destination watermark queue.
    pub transport: LatencyHistogram,
    /// Frame arrival on the queue → receiving task execution.
    pub schedule_delay: LatencyHistogram,
    /// Time spent decoding and processing one scheduled batch.
    pub execution: LatencyHistogram,
    /// Source timestamp → processed by this operator (µs, wall clock).
    pub e2e: LatencyHistogram,
}

impl OperatorTelemetry {
    /// A recorder with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy every histogram into an inert snapshot.
    pub fn snapshot(&self) -> OperatorTelemetrySnapshot {
        OperatorTelemetrySnapshot {
            buffer_wait: self.buffer_wait.snapshot(),
            transport: self.transport.snapshot(),
            schedule_delay: self.schedule_delay.snapshot(),
            execution: self.execution.snapshot(),
            e2e: self.e2e.snapshot(),
        }
    }
}

/// Inert, mergeable copy of an [`OperatorTelemetry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorTelemetrySnapshot {
    pub buffer_wait: HistogramSnapshot,
    pub transport: HistogramSnapshot,
    pub schedule_delay: HistogramSnapshot,
    pub execution: HistogramSnapshot,
    pub e2e: HistogramSnapshot,
}

impl OperatorTelemetrySnapshot {
    /// The four stage snapshots paired with their [`STAGE_NAMES`] entry,
    /// in pipeline order (end-to-end excluded).
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); 4] {
        [
            ("buffer_wait", &self.buffer_wait),
            ("transport", &self.transport),
            ("schedule_delay", &self.schedule_delay),
            ("execution", &self.execution),
        ]
    }

    /// Fold another instance's snapshot into this one (parallel operators
    /// merge shard-wise, same as [`HistogramSnapshot::merge`]).
    pub fn merge(&mut self, other: &OperatorTelemetrySnapshot) {
        self.buffer_wait.merge(&other.buffer_wait);
        self.transport.merge(&other.transport);
        self.schedule_delay.merge(&other.schedule_delay);
        self.execution.merge(&other.execution);
        self.e2e.merge(&other.e2e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_align_with_names() {
        let t = OperatorTelemetry::new();
        t.buffer_wait.record(1);
        t.transport.record(2);
        t.schedule_delay.record(3);
        t.execution.record(4);
        t.e2e.record(10);
        let s = t.snapshot();
        let by_name = s.stages();
        assert_eq!(by_name.len(), STAGE_NAMES.len());
        for ((name, snap), expected) in by_name.iter().zip(STAGE_NAMES.iter()) {
            assert_eq!(name, expected);
            assert_eq!(snap.count(), 1);
        }
        assert_eq!(s.e2e.count(), 1);
    }

    #[test]
    fn merge_folds_all_stages() {
        let a = OperatorTelemetry::new();
        let b = OperatorTelemetry::new();
        a.e2e.record(100);
        b.e2e.record(200);
        b.execution.record(5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.e2e.count(), 2);
        assert_eq!(s.e2e.max(), 200);
        assert_eq!(s.execution.count(), 1);
    }
}
