//! Causal per-packet tracing: sampled spans in a lock-free ring,
//! exportable as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! A traced packet carries a 64-bit trace id on the wire (the
//! `FLAG_TRACE` frame extension in `neptune-net`) and leaves one
//! [`Span`] per pipeline stage it crosses: source pump → buffer-wait →
//! transport → schedule → execution → sink, plus reactor dispatch
//! stints. Sampling is deterministic — 1 in N source packets by
//! sequence number, N a power of two — so two runs over the same input
//! trace the same packets and an unsampled packet costs nothing beyond
//! one mask test.
//!
//! Spans land in a [`SpanRing`]: a set of seqlock-slot shards (see
//! [`crate::ring`]), one picked per writer thread by a cached
//! thread-local hash, so concurrent stages never contend on a slot in
//! the common case. The ring is bounded and overwrites oldest spans;
//! nothing on the hot path allocates or locks.

use crate::ring::{Packable, SeqRing};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pipeline stage a span measures, in causal order.
pub const STAGE_SOURCE: u8 = 0;
/// Enqueue → flush inside the sender's output buffer.
pub const STAGE_BUFFER_WAIT: u8 = 1;
/// Flush → arrival on the destination watermark queue.
pub const STAGE_TRANSPORT: u8 = 2;
/// Arrival → the receiving task actually running.
pub const STAGE_SCHEDULE: u8 = 3;
/// Decoding and processing one scheduled batch.
pub const STAGE_EXECUTION: u8 = 4;
/// Terminal-operator processing (end of the traced packet's journey).
pub const STAGE_SINK: u8 = 5;
/// One reactor dispatch stint (not tied to a single packet).
pub const STAGE_REACTOR: u8 = 6;

/// Stage names indexed by the `STAGE_*` constants, used as Chrome
/// trace-event names.
pub const TRACE_STAGE_NAMES: [&str; 7] =
    ["source", "buffer_wait", "transport", "schedule", "execution", "sink", "reactor"];

/// One recorded stage crossing of a traced packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// Trace id carried on the wire; 0 for spans not tied to a packet
    /// (reactor dispatch stints).
    pub trace_id: u64,
    /// Span start, microseconds wall clock (Unix epoch).
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub dur_micros: u64,
    /// One of the `STAGE_*` constants.
    pub stage: u8,
    /// Track id from [`SpanRing::register_track`] — the operator or
    /// subsystem this span executed in.
    pub track: u16,
}

impl Span {
    /// Stage name for exporters.
    pub fn stage_name(&self) -> &'static str {
        TRACE_STAGE_NAMES.get(self.stage as usize).copied().unwrap_or("unknown")
    }
}

impl Packable<4> for Span {
    fn pack(&self) -> [u64; 4] {
        [
            self.trace_id,
            self.start_micros,
            self.dur_micros,
            (self.stage as u64) | ((self.track as u64) << 8),
        ]
    }

    fn unpack(words: [u64; 4]) -> Self {
        Span {
            trace_id: words[0],
            start_micros: words[1],
            dur_micros: words[2],
            stage: (words[3] & 0xFF) as u8,
            track: ((words[3] >> 8) & 0xFFFF) as u16,
        }
    }
}

const SHARDS: usize = 8;

thread_local! {
    /// Per-thread shard pick, computed once from the thread id hash.
    static THREAD_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|c| match c.get() {
        Some(s) => s,
        None => {
            let mut h = DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            let s = (h.finish() as usize) % SHARDS;
            c.set(Some(s));
            s
        }
    })
}

/// Bounded, lock-free, thread-sharded store of sampled [`Span`]s.
#[derive(Debug)]
pub struct SpanRing {
    shards: [SeqRing<Span, 4>; SHARDS],
    tracks: Mutex<Vec<String>>,
    /// `sample_every - 1` for the power-of-two sampling mask.
    sample_mask: u64,
}

impl SpanRing {
    /// A ring holding roughly `capacity` spans total, sampling 1 in
    /// `sample_every` source packets (`sample_every` must be a power of
    /// two; it is rounded up if not).
    pub fn new(capacity: usize, sample_every: u32) -> Self {
        let per_shard = capacity.div_ceil(SHARDS);
        SpanRing {
            shards: std::array::from_fn(|_| SeqRing::new(per_shard)),
            tracks: Mutex::new(Vec::new()),
            sample_mask: (sample_every.max(1).next_power_of_two() as u64) - 1,
        }
    }

    /// True when `seq` is one of the 1-in-N sampled sequence numbers.
    /// Deterministic: the same stream samples the same packets.
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        seq & self.sample_mask == 0
    }

    /// The sampling period N (always a power of two).
    pub fn sample_every(&self) -> u64 {
        self.sample_mask + 1
    }

    /// Register (or look up) a named track — one per operator or
    /// subsystem — returning the id to stamp on spans. Tracks render as
    /// Perfetto threads.
    pub fn register_track(&self, name: &str) -> u16 {
        let mut tracks = self.tracks.lock().unwrap();
        if let Some(i) = tracks.iter().position(|t| t == name) {
            return i as u16;
        }
        tracks.push(name.to_string());
        (tracks.len() - 1) as u16
    }

    /// Registered track names, indexed by track id.
    pub fn track_names(&self) -> Vec<String> {
        self.tracks.lock().unwrap().clone()
    }

    /// Record one span (lock-free; drops under claim races).
    #[inline]
    pub fn record(&self, span: Span) {
        self.shards[thread_shard()].push(span);
    }

    /// Spans published so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.recorded()).sum()
    }

    /// Spans dropped to slot-claim races.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Copy out every stable span, ordered by start time.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self.shards.iter().flat_map(|s| s.snapshot()).collect();
        spans.sort_by_key(|s| (s.start_micros, s.trace_id, s.stage));
        spans
    }

    /// Render the ring as a Chrome trace-event JSON document (the
    /// `{"traceEvents": [...]}` object form Perfetto loads directly).
    /// Each track becomes a named thread; each span a complete (`"X"`)
    /// event with its trace id in `args`.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace_json(&self.snapshot(), &self.track_names())
    }
}

/// Minimal JSON string escaping for track names and messages.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render spans + track names as a Chrome trace-event JSON document.
pub fn chrome_trace_json(spans: &[Span], tracks: &[String]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in tracks.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"neptune\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:#x}\"}}}}",
            s.stage_name(),
            s.start_micros,
            s.dur_micros,
            s.track,
            s.trace_id
        ));
    }
    out.push_str("]}");
    out
}

/// Microseconds since the Unix epoch — the wall clock spans are
/// recorded against (matches the `sent_at`/source timestamps frames
/// already carry).
pub fn wall_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Sampled trace ids propagate through a fan-out buffer as a pending
/// mark: the first traced packet to enter an un-flushed batch tags it,
/// and the flush takes the tag onto the outgoing frame. Lock-free
/// (one atomic), loses later ids when two traced packets share a batch
/// — acceptable at 1-in-N sampling.
#[derive(Debug, Default)]
pub struct PendingTrace(AtomicU64);

impl PendingTrace {
    /// Empty mark.
    pub const fn new() -> Self {
        PendingTrace(AtomicU64::new(0))
    }

    /// Tag the batch with `trace_id` if it is not already tagged.
    #[inline]
    pub fn set_if_empty(&self, trace_id: u64) {
        let _ = self.0.compare_exchange(0, trace_id, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Take the tag off the batch (returns `None` when untagged).
    #[inline]
    pub fn take(&self) -> Option<u64> {
        match self.0.swap(0, Ordering::Relaxed) {
            0 => None,
            id => Some(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_power_of_two() {
        let ring = SpanRing::new(64, 128);
        assert_eq!(ring.sample_every(), 128);
        assert!(ring.sampled(0));
        assert!(!ring.sampled(1));
        assert!(ring.sampled(128));
        assert!(ring.sampled(256));
        let ring = SpanRing::new(64, 100); // rounds up to 128
        assert_eq!(ring.sample_every(), 128);
    }

    #[test]
    fn span_packs_round_trip() {
        let s = Span {
            trace_id: 0xDEAD_BEEF_0000_0001,
            start_micros: 123_456_789,
            dur_micros: 42,
            stage: STAGE_EXECUTION,
            track: 7,
        };
        assert_eq!(Span::unpack(s.pack()), s);
    }

    #[test]
    fn tracks_dedup_by_name() {
        let ring = SpanRing::new(64, 1);
        let a = ring.register_track("src");
        let b = ring.register_track("sink");
        assert_eq!(ring.register_track("src"), a);
        assert_ne!(a, b);
        assert_eq!(ring.track_names(), vec!["src".to_string(), "sink".to_string()]);
    }

    #[test]
    fn chrome_trace_renders_metadata_and_spans() {
        let ring = SpanRing::new(64, 1);
        let t = ring.register_track("relay \"ops\"");
        ring.record(Span {
            trace_id: 5,
            start_micros: 1000,
            dur_micros: 30,
            stage: STAGE_BUFFER_WAIT,
            track: t,
        });
        let json = ring.to_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("relay \\\"ops\\\""));
        assert!(json.contains("\"name\":\"buffer_wait\""));
        assert!(json.contains("\"ts\":1000"));
        assert!(json.contains("\"dur\":30"));
        assert!(json.contains("\"trace_id\":\"0x5\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_ring_renders_valid_document() {
        let ring = SpanRing::new(8, 1);
        assert_eq!(ring.to_chrome_trace(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn pending_trace_first_writer_wins() {
        let p = PendingTrace::new();
        assert_eq!(p.take(), None);
        p.set_if_empty(9);
        p.set_if_empty(11);
        assert_eq!(p.take(), Some(9));
        assert_eq!(p.take(), None);
    }

    #[test]
    fn snapshot_sorts_by_start_time() {
        let ring = SpanRing::new(64, 1);
        for (ts, stage) in [(300u64, STAGE_SINK), (100, STAGE_SOURCE), (200, STAGE_TRANSPORT)] {
            ring.record(Span { trace_id: 1, start_micros: ts, dur_micros: 1, stage, track: 0 });
        }
        let starts: Vec<u64> = ring.snapshot().iter().map(|s| s.start_micros).collect();
        assert_eq!(starts, vec![100, 200, 300]);
    }
}
