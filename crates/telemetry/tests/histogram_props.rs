//! Property tests for the latency histogram (ISSUE 2, satellite 3):
//! merge-of-shards equivalence, extreme-value edge cases, and quantile
//! monotonicity.

use neptune_telemetry::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, LatencyHistogram,
    N_BUCKETS,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Sharded recording + snapshot merge must be indistinguishable from
    /// recording every value into a single histogram — the property that
    /// makes per-instance recorders aggregate correctly per operator.
    #[test]
    fn merge_of_shards_equals_single_histogram(
        values in vec(any::<u64>(), 0..200),
        split in any::<usize>(),
    ) {
        let cut = if values.is_empty() { 0 } else { split % (values.len() + 1) };
        let (left, right) = values.split_at(cut);
        let mut merged = record_all(left);
        merged.merge(&record_all(right));
        prop_assert_eq!(merged, record_all(&values));
    }

    /// Every value maps into range, and the bucket bounds bracket it.
    #[test]
    fn bucket_bounds_bracket_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
    }

    /// bucket_index is monotone: a larger value never lands in an
    /// earlier bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantiles are monotone non-decreasing in q and never exceed max.
    #[test]
    fn quantiles_are_monotone(
        values in vec(any::<u64>(), 1..200),
        qs in vec(0.0f64..=1.0, 2..8),
    ) {
        let snap = record_all(&values);
        let mut sorted_q = qs;
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u64;
        for &q in &sorted_q {
            let v = snap.quantile(q);
            prop_assert!(v >= prev, "quantile({}) = {} < previous {}", q, v, prev);
            prop_assert!(v <= snap.max());
            prev = v;
        }
    }

    /// The top quantile hits the exact recorded maximum (clamping), and
    /// any quantile of a singleton histogram is that value.
    #[test]
    fn extremes_are_exact(values in vec(any::<u64>(), 1..50)) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.quantile(1.0), *values.iter().max().unwrap());
        let single = record_all(&values[..1]);
        prop_assert_eq!(single.p50(), values[0]);
        prop_assert_eq!(single.p99(), values[0]);
    }
}

#[test]
fn zero_and_max_are_recordable() {
    let h = LatencyHistogram::new();
    h.record(0);
    h.record(u64::MAX);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count(), 3);
    assert_eq!(s.max(), u64::MAX);
    assert_eq!(s.quantile(0.01), 0);
    assert_eq!(s.quantile(1.0), u64::MAX);
    // Sum wraps (documented): 0 + MAX + MAX == MAX - 1 mod 2^64.
    assert_eq!(s.sum(), u64::MAX.wrapping_add(u64::MAX));
}
