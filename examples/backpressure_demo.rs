//! Backpressure in action — the Fig. 3/4 experiment, live.
//!
//! A three-stage job (source A → relay B → variable-speed sink C). Stage C
//! sleeps after each packet; the sleep interval cycles 0 → 1 → 2 → 3 ms
//! exactly as in Fig. 4. The watermark backpressure must throttle stage A
//! so its emission rate tracks C's processing rate inversely — without
//! dropping a single packet.
//!
//! The demo prints the source's observed rate once per phase; watch it
//! step down as the sink slows and recover when the sink speeds back up.
//!
//! Run with:
//! ```text
//! cargo run --release --example backpressure_demo
//! ```

use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Free-running source; counts what it manages to emit. Packets carry a
/// 1 KB payload so the watermark byte-budget translates into a *small
/// number of packets* in flight — that keeps the source's observed rate
/// tightly coupled to the sink's rate instead of lagging behind a deep
/// backlog of tiny packets.
struct Firehose {
    emitted: Arc<AtomicU64>,
    stop_after: u64,
    payload: Vec<u8>,
}
impl StreamSource for Firehose {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.emitted.load(Ordering::Relaxed) >= self.stop_after {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.emitted.load(Ordering::Relaxed)))
            .push_field("pad", FieldValue::Bytes(self.payload.clone()));
        match ctx.emit(&p) {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

/// Stage B: pure relay.
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

/// Stage C: processes at a rate controlled by a shared sleep knob
/// (microseconds per packet).
struct VariableSink {
    sleep_us: Arc<AtomicU64>,
    processed: Arc<AtomicU64>,
}
impl StreamProcessor for VariableSink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        let us = self.sleep_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let sleep_us = Arc::new(AtomicU64::new(0));

    let (e2, p2, s2) = (emitted.clone(), processed.clone(), sleep_us.clone());
    let graph = GraphBuilder::new("backpressure-demo")
        .source("A", move || Firehose {
            emitted: e2.clone(),
            stop_after: u64::MAX,
            payload: vec![0xEE; 1024],
        })
        .processor("B", || Relay)
        .processor("C", move || VariableSink { sleep_us: s2.clone(), processed: p2.clone() })
        .link("A", "B", PartitioningScheme::Shuffle)
        .link("B", "C", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");

    // Small buffers and tight watermarks so pressure propagates quickly.
    let config = RuntimeConfig {
        buffer_bytes: 4 * 1024,
        flush_interval: Duration::from_millis(2),
        watermark_high: 64 * 1024,
        watermark_low: 16 * 1024,
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");

    // Fig. 4's cycle: sleep 0, 1, 2, 3 ms then back to 0.
    println!("phase | sink sleep | source rate (pkt/s) | sink rate (pkt/s)");
    let mut phase_rates = Vec::new();
    for (phase, sleep_ms) in [0u64, 1, 2, 3, 0].into_iter().enumerate() {
        sleep_us.store(sleep_ms * 1000, Ordering::Relaxed);
        let e0 = emitted.load(Ordering::Relaxed);
        let p0 = processed.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(900));
        let e1 = emitted.load(Ordering::Relaxed);
        let p1 = processed.load(Ordering::Relaxed);
        let src_rate = (e1 - e0) as f64 / 0.9;
        let sink_rate = (p1 - p0) as f64 / 0.9;
        println!("{phase:>5} | {sleep_ms:>7} ms | {src_rate:>19.0} | {sink_rate:>17.0}");
        phase_rates.push(src_rate);
    }
    job.stop();

    // The source's rate must track the sink inversely: each slower phase
    // strictly reduces it, and the final fast phase restores it.
    assert!(
        phase_rates[1] < phase_rates[0] / 2.0,
        "1 ms sink sleep must throttle the source: {phase_rates:?}"
    );
    assert!(phase_rates[2] < phase_rates[1], "2 ms slower than 1 ms: {phase_rates:?}");
    assert!(phase_rates[3] < phase_rates[2], "3 ms slower than 2 ms: {phase_rates:?}");
    assert!(
        phase_rates[4] > phase_rates[3] * 2.0,
        "source must recover when the sink speeds up: {phase_rates:?}"
    );
    println!("backpressure_demo OK — source rate tracked the sink inversely");
}
