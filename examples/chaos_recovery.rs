//! Chaos recovery, live — a relay pipeline survives a scripted link kill.
//!
//! A reliable link (assembled through the shared [`LinkBuilder`]) carries
//! a stream of sequenced batches toward a sink. Mid-stream, a seeded
//! [`FaultPlan`] cuts the link for several delivery attempts; the
//! reliability layer backs off, reconnects, and replays every unacked
//! frame. The sink classifies frames through [`ReliableIngress`] — the
//! same dedup + cumulative-ack object the cluster data plane uses — so
//! the stream arrives **complete and exactly once** despite the
//! at-least-once wire. The demo prints the recovery telemetry as it
//! happens: reconnect attempts, replayed frames, duplicates dropped.
//!
//! The fault script is positional (frame counts, not wall clock) and
//! seeded — run it twice with the same seed and the kill lands on the
//! same frame.
//!
//! Run with:
//! ```text
//! cargo run --release --example chaos_recovery
//! NEPTUNE_CHAOS_SEED=7 cargo run --release --example chaos_recovery
//! ```

use bytes::Bytes;
use neptune::link::{
    AckMode, ChaosLink, FaultEvent, FaultPlan, IngressVerdict, LinkBuilder, LinkEvent, QueueLink,
    ReconnectPolicy, RecoveryStats, ReliableIngress,
};
use neptune::net::frame::Frame;
use neptune::net::watermark::{WatermarkConfig, WatermarkQueue};
use std::sync::Arc;

const LINK: u64 = 1;
const TOTAL: u64 = 500;

fn main() {
    let seed =
        std::env::var("NEPTUNE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1u64);

    // Script the failure: one cut somewhere in the middle of the stream,
    // down for a few delivery attempts. The seed picks where.
    let plan = FaultPlan::new(seed);
    let at_frame = plan.jitter(1, TOTAL / 4, 3 * TOTAL / 4);
    let down_for = plan.jitter(2, 2, 7);
    let plan = plan.with_event(FaultEvent::CutLink { link_id: LINK, at_frame, down_for });
    println!("seed {seed}: link {LINK} dies at frame {at_frame}, down for {down_for} attempts\n");

    // Pipeline: reliable link -> chaos-wrapped in-process transport ->
    // sink queue drained through the shared ingress (dedup + cumulative
    // acks).
    let sink_queue: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(sink_queue.clone())), &plan, LINK));
    let stats = Arc::new(RecoveryStats::new());
    let link = LinkBuilder::new(LINK)
        .transport(chaos)
        .reliable(ReconnectPolicy::fast(seed), 1 << 20, stats.clone())
        .build();
    let supervisor = link.reliability().expect("reliable link").clone();
    supervisor.on_event(|id, event| match event {
        LinkEvent::Reconnecting { attempt } => {
            println!("  link {id}: reconnecting (attempt {attempt})");
        }
        LinkEvent::Reconnected { replayed } => {
            println!("  link {id}: reconnected, replayed {replayed} unacked frames");
        }
        LinkEvent::LinkFailed => println!("  link {id}: TERMINAL FAILURE"),
    });

    let ingress = ReliableIngress::new(AckMode::Immediate);
    let mut delivered = 0u64;
    let drain = |delivered: &mut u64| {
        while let Some(f) = sink_queue.pop() {
            if let IngressVerdict::Deliver { skip } =
                ingress.admit(f.link_id, f.base_seq, f.len() as u32)
            {
                *delivered += (f.len() as u64).saturating_sub(skip as u64);
            }
            if let Some((_, watermark)) = ingress.stage_ack(f.link_id) {
                link.ack(watermark);
            }
        }
    };

    for i in 0..TOTAL {
        let payload = i.to_le_bytes();
        let mut encoded = Vec::with_capacity(12);
        encoded.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        encoded.extend_from_slice(&payload);
        link.send_batch(i, Bytes::from(encoded), 1, 0, 0).expect("link recovers within budget");
        // The sink keeps a few frames in flight, like a real consumer.
        if i % 5 == 4 {
            drain(&mut delivered);
        }
    }
    drain(&mut delivered);

    let snap = stats.snapshot();
    let duplicates = ingress.duplicates_dropped();
    println!("\ndelivered {delivered}/{TOTAL} messages, {duplicates} duplicate frames dropped");
    println!(
        "recovery telemetry: retransmits={} retransmitted_bytes={} reconnect_attempts={} \
         reconnects={} acks={} replay_len={}",
        snap.retransmits,
        snap.retransmitted_bytes,
        snap.reconnect_attempts,
        snap.reconnects,
        snap.acks_received,
        supervisor.replay().len(),
    );
    assert_eq!(delivered, TOTAL, "zero loss despite the kill");
    assert!(snap.retransmits > 0 && snap.reconnects > 0, "the kill really happened");
    println!("\nOK: the stream survived the link kill with zero loss.");
}
