//! Ingestion gateway — a simulated device fleet fans into **one job**
//! over the readiness-driven IO tier.
//!
//! Hundreds of devices open real TCP connections to a reactor-backed
//! gateway receiver. Every connection is an IO task multiplexed onto a
//! two-thread event-driven pool (plus one epoll reactor thread), so the
//! gateway's thread bill stays O(io_threads) no matter how large the
//! fleet grows — the §IV-C two-tier model applied to the network edge.
//! A bridge source pumps the decoded frames into a NEPTUNE job that
//! aggregates readings per device.
//!
//! Run with:
//! ```text
//! cargo run --release --example ingestion_gateway
//! ```

use neptune::compress::SelectiveCompressor;
use neptune::granules::{IoPool, Reactor};
use neptune::net::frame::{encode_frame_raw_ext, Frame};
use neptune::net::tcp::TcpReceiver;
use neptune::net::watermark::{WatermarkConfig, WatermarkQueue};
use neptune::net::NetDriver;
use neptune::prelude::*;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Target fleet size, clamped at startup to the process fd budget:
/// each device costs a client and an accepted descriptor in this
/// single-process demo.
const DEVICES: usize = 512;
/// Readings each device streams before hanging up.
const READINGS_PER_DEVICE: usize = 20;
/// Threads simulating the fleet — deliberately far fewer than devices.
const FLEET_THREADS: usize = 4;
/// Event-driven IO threads serving every gateway connection.
const IO_THREADS: usize = 2;

/// Bridges the gateway's inbound frame queue into the job as a stream
/// source: one packet per device reading, exhausted once the whole
/// fleet's traffic has been pumped.
struct GatewayBridge {
    queue: Arc<WatermarkQueue<Frame>>,
    frames_seen: u64,
    expected_frames: u64,
}

impl StreamSource for GatewayBridge {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.frames_seen >= self.expected_frames {
            return SourceStatus::Exhausted;
        }
        let Some(frame) = self.queue.pop() else {
            return SourceStatus::Idle;
        };
        self.frames_seen += 1;
        let mut emitted = 0;
        for msg in frame.messages.iter() {
            let reading = u64::from_le_bytes(msg[..8].try_into().expect("8-byte reading"));
            let mut p = StreamPacket::new();
            p.push_field("device", FieldValue::U64(frame.link_id))
                .push_field("reading", FieldValue::U64(reading));
            if ctx.emit(&p).is_err() {
                return SourceStatus::Exhausted;
            }
            emitted += 1;
        }
        SourceStatus::Emitted(emitted)
    }
}

/// Per-device aggregation: count and sum of readings.
struct Aggregate {
    per_device: Arc<Mutex<HashMap<u64, (u64, u64)>>>,
    total: Arc<AtomicU64>,
}

impl StreamProcessor for Aggregate {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        let device = p.get("device").and_then(|f| f.as_u64()).expect("device field");
        let reading = p.get("reading").and_then(|f| f.as_u64()).expect("reading field");
        let mut map = self.per_device.lock().unwrap();
        let entry = map.entry(device).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += reading;
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Soft `RLIMIT_NOFILE` from `/proc/self/limits` (fallback 1024).
fn fd_soft_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(1024)
}

/// Threads whose name starts with `prefix` (gateway thread audit).
fn threads_prefixed(prefix: &str) -> usize {
    let mut n = 0;
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for e in entries.flatten() {
            if let Ok(c) = std::fs::read_to_string(e.path().join("comm")) {
                if c.trim().starts_with(prefix) {
                    n += 1;
                }
            }
        }
    }
    n
}

fn main() {
    // Two fds per device plus headroom for the pool/reactor/listener.
    let fd_limit = fd_soft_limit();
    let devices = DEVICES.min(((fd_limit.saturating_sub(64)) / 3) as usize).max(8);
    if devices < DEVICES {
        println!("fd soft limit {fd_limit} clamps the fleet to {devices} devices");
    }

    // The gateway rig: epoll reactor + event-driven pool + nonblocking
    // receiver. Declared reactor-first so the pool drops before it at
    // the end (retiring tasks deregister against a live reactor).
    let reactor = Reactor::new("gateway").expect("reactor thread");
    let io_pool = IoPool::new("gateway", IO_THREADS);
    let driver = NetDriver::new(io_pool.spawner(), reactor.handle());
    let rx =
        TcpReceiver::bind_reactor("127.0.0.1:0", WatermarkConfig::new(32 << 20, 1 << 20), &driver)
            .expect("bind gateway");
    let addr = rx.local_addr();
    println!("gateway listening on {addr} ({IO_THREADS} IO threads + 1 reactor thread)");

    // The job: bridge source → per-device aggregation sink.
    let per_device = Arc::new(Mutex::new(HashMap::new()));
    let total = Arc::new(AtomicU64::new(0));
    let (map2, total2) = (per_device.clone(), total.clone());
    let queue = rx.queue().clone();
    let graph = GraphBuilder::new("ingestion")
        .source("gateway", move || GatewayBridge {
            queue: queue.clone(),
            frames_seen: 0,
            expected_frames: (devices * READINGS_PER_DEVICE) as u64,
        })
        .processor("aggregate", move || Aggregate {
            per_device: map2.clone(),
            total: total2.clone(),
        })
        .link("gateway", "aggregate", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).expect("deploys");

    // The fleet: each thread drives a slice of the devices, one TCP
    // connection per device, streaming stamped readings round-robin.
    let compressor = SelectiveCompressor::disabled();
    let mut fleet = Vec::with_capacity(FLEET_THREADS);
    let mut first_device = 0usize;
    for t in 0..FLEET_THREADS {
        let share = devices / FLEET_THREADS + usize::from(t < devices % FLEET_THREADS);
        let base = first_device;
        first_device += share;
        fleet.push(std::thread::spawn(move || {
            let mut socks: Vec<TcpStream> = (0..share)
                .map(|_| {
                    let s = TcpStream::connect(addr).expect("device connect");
                    s.set_nodelay(true).expect("nodelay");
                    s
                })
                .collect();
            for round in 0..READINGS_PER_DEVICE {
                for (i, s) in socks.iter_mut().enumerate() {
                    let device = (base + i) as u64;
                    // One 8-byte reading, length-prefixed, per frame.
                    let reading = device * 1000 + round as u64;
                    let mut body = Vec::with_capacity(12);
                    body.extend_from_slice(&8u32.to_le_bytes());
                    body.extend_from_slice(&reading.to_le_bytes());
                    let wire = encode_frame_raw_ext(
                        device,
                        round as u64,
                        1,
                        &body,
                        &compressor,
                        neptune::core::now_micros(),
                        None,
                    );
                    s.write_all(&wire).expect("device write");
                }
            }
        }));
    }
    for f in fleet {
        f.join().expect("fleet thread");
    }
    println!("fleet done: {devices} devices sent {READINGS_PER_DEVICE} readings each");

    // While the gateway still holds the fleet's connections, audit the
    // thread bill: the whole edge runs on IO_THREADS + 1 threads.
    let gateway_threads = threads_prefixed("gateway-");
    assert_eq!(
        gateway_threads,
        IO_THREADS + 1,
        "gateway must run on io_threads + reactor, not per-connection threads"
    );

    assert!(job.await_sources(Duration::from_secs(60)), "bridge source must exhaust");
    assert!(job.settle(Duration::from_secs(30)), "job must settle");
    let stats = reactor.stats();
    job.stop();
    rx.shutdown();
    drop(io_pool);
    drop(reactor);

    let map = per_device.lock().unwrap();
    let expected = (devices * READINGS_PER_DEVICE) as u64;
    assert_eq!(total.load(Ordering::Relaxed), expected, "every reading must arrive");
    assert_eq!(map.len(), devices, "every device must be represented");
    assert!(map.values().all(|&(count, _)| count == READINGS_PER_DEVICE as u64));
    let grand_total: u64 = map.values().map(|&(_, sum)| sum).sum();
    println!(
        "aggregated {expected} readings from {} devices (sum {grand_total}) \
         on {gateway_threads} gateway threads \
         ({} readiness events, {} re-arms)",
        map.len(),
        stats.events_dispatched,
        stats.rearms
    );
    println!("ingestion_gateway OK — connection count never touched the thread bill");
}
