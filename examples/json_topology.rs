//! Building a job from a JSON descriptor (§III-A7).
//!
//! The paper: *"A stream processing graph can be created by directly
//! invoking the NEPTUNE API or through a JSON descriptor file."* Here the
//! descriptor declares a three-stage word-frequency pipeline with keyed
//! partitioning and per-link compression, while the operator
//! implementations are registered by factory name.
//!
//! Run with:
//! ```text
//! cargo run --release --example json_topology
//! ```

use neptune::core::descriptor::{parse_descriptor, OperatorRegistry};
use neptune::core::json::JsonValue;
use neptune::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const DESCRIPTOR: &str = r#"{
    "name": "word-frequency",
    "operators": [
        {"name": "sentences", "kind": "source", "factory": "sentence-source",
         "params": {"repeats": 2000}},
        {"name": "tokenize", "kind": "processor", "factory": "tokenizer",
         "parallelism": 2},
        {"name": "count", "kind": "processor", "factory": "word-count",
         "parallelism": 2}
    ],
    "links": [
        {"from": "sentences", "to": "tokenize",
         "partitioning": {"scheme": "shuffle"},
         "compression": {"mode": "threshold", "threshold": 5.0}},
        {"from": "tokenize", "to": "count",
         "partitioning": {"scheme": "fields", "keys": ["word"]}}
    ],
    "config": {"buffer_bytes": 16384, "flush_ms": 5}
}"#;

const SENTENCES: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "streams of small packets saturate ethernet frames",
    "buffering batching and backpressure keep the pipeline honest",
];

struct SentenceSource {
    remaining: u64,
    cursor: usize,
}

impl StreamSource for SentenceSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("text", FieldValue::Str(SENTENCES[self.cursor % SENTENCES.len()].into()));
        self.cursor += 1;
        self.remaining -= 1;
        match ctx.emit(&p) {
            Ok(()) => SourceStatus::Emitted(1),
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Tokenizer;
impl StreamProcessor for Tokenizer {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let Some(text) = packet.get("text").and_then(|v| v.as_str()) else {
            return;
        };
        // One output packet per word; reuse a workhorse packet.
        let mut out = StreamPacket::with_capacity(1);
        for word in text.split_whitespace() {
            out.clear();
            out.push_field("word", FieldValue::Str(word.to_string()));
            let _ = ctx.emit(&out);
        }
    }
}

struct WordCount {
    counts: HashMap<String, u64>,
    global: Arc<Mutex<HashMap<String, u64>>>,
}
impl StreamProcessor for WordCount {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        if let Some(w) = packet.get("word").and_then(|v| v.as_str()) {
            *self.counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    fn close(&mut self, _ctx: &mut OperatorContext) {
        let mut global = self.global.lock();
        for (w, c) in self.counts.drain() {
            *global.entry(w).or_insert(0) += c;
        }
    }
}

fn main() {
    let totals: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink = totals.clone();

    let mut registry = OperatorRegistry::new();
    registry.register_source("sentence-source", |params: &JsonValue| SentenceSource {
        remaining: params.get("repeats").and_then(JsonValue::as_u64).unwrap_or(100),
        cursor: 0,
    });
    registry.register_processor("tokenizer", |_params| Tokenizer);
    registry.register_processor("word-count", move |_params| WordCount {
        counts: HashMap::new(),
        global: sink.clone(),
    });

    let (graph, config) = parse_descriptor(DESCRIPTOR, &registry).expect("valid descriptor");
    println!(
        "descriptor parsed: job '{}' with {} operators, {} links, {} B buffers",
        graph.name(),
        graph.operators().len(),
        graph.links().len(),
        config.buffer_bytes
    );

    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    assert!(job.await_sources(Duration::from_secs(60)), "source timed out");
    let metrics = job.stop();

    let totals = totals.lock();
    let mut top: Vec<(&String, &u64)> = totals.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top words:");
    for (w, c) in top.iter().take(5) {
        println!("  {w:>12} {c}");
    }

    // 2000 sentences cycling 3 fixed strings: "the" appears twice in
    // sentence 0 and once in sentence 2 -> 667 sentences have 1, 667 have
    // 2... verify via direct recount.
    let expected: u64 = (0..2000)
        .map(|i| {
            SENTENCES[i % SENTENCES.len()].split_whitespace().filter(|w| *w == "the").count() as u64
        })
        .sum();
    assert_eq!(totals.get("the").copied().unwrap_or(0), expected);
    assert_eq!(metrics.total_seq_violations(), 0);
    // Keyed partitioning: every occurrence of a word landed on exactly one
    // instance, so the merged totals are exact.
    println!("json_topology OK — exact word counts under keyed partitioning");
}
