//! The manufacturing-equipment monitoring job of Fig. 8 (§IV-C).
//!
//! Four stages over the synthetic DEBS-2012-style stream:
//!
//! 1. **ingest** — the manufacturing source emits full 66-field readings;
//! 2. **extract** — keeps the timestamp plus the three additive-sensor
//!    and three valve fields (the 6-of-66 projection the paper uses);
//! 3. **detect** — watches each sensor/valve pair for state changes,
//!    emitting a delay event when a valve follows its sensor
//!    (keyed partitioning keeps a pair's events on one instance);
//! 4. **aggregate** — accumulates the sensor→valve actuation delays over
//!    the monitoring window and reports the distribution.
//!
//! The simulator's ground-truth actuation delay is 20 ms, so a correct
//! pipeline reports a mean close to that.
//!
//! Run with:
//! ```text
//! cargo run --release --example manufacturing_monitor
//! ```

use neptune::data::manufacturing::{ManufacturingSource, ADDITIVE_PAIRS};
use neptune::prelude::*;
use neptune::stats::OnlineStats;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Stage 2: project the 66-field reading down to the monitored fields.
/// Output packets come from the instance's pool (§III-B3 object reuse) so
/// the projection allocates nothing per reading in steady state.
struct Extract;
impl StreamProcessor for Extract {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let mut out = ctx.checkout_packet();
        let Some(ts) = packet.get("ts") else { return };
        out.push_field("ts", ts.clone());
        for pair in 0..ADDITIVE_PAIRS {
            let (Some(s), Some(v)) = (
                packet.get(&format!("additive_sensor_{pair}")),
                packet.get(&format!("valve_{pair}")),
            ) else {
                ctx.checkin_packet(out);
                return;
            };
            out.push_field(format!("s{pair}"), s.clone());
            out.push_field(format!("v{pair}"), v.clone());
        }
        let _ = ctx.emit(&out);
        ctx.checkin_packet(out);
    }
}

/// Stage 3: per-pair state-change detection -> delay events.
struct DetectDelays {
    last_sensor: [Option<(bool, u64)>; ADDITIVE_PAIRS],
    last_valve: [Option<bool>; ADDITIVE_PAIRS],
}
impl DetectDelays {
    fn new() -> Self {
        DetectDelays { last_sensor: [None; ADDITIVE_PAIRS], last_valve: [None; ADDITIVE_PAIRS] }
    }
}
impl StreamProcessor for DetectDelays {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let Some(ts) = packet.get("ts").and_then(|v| v.as_timestamp()) else {
            return;
        };
        for pair in 0..ADDITIVE_PAIRS {
            let Some(sensor) = packet.get(&format!("s{pair}")).and_then(|v| v.as_bool()) else {
                continue;
            };
            let Some(valve) = packet.get(&format!("v{pair}")).and_then(|v| v.as_bool()) else {
                continue;
            };
            // Sensor toggled: remember when.
            match self.last_sensor[pair] {
                Some((prev, _)) if prev != sensor => {
                    self.last_sensor[pair] = Some((sensor, ts));
                }
                None => self.last_sensor[pair] = Some((sensor, ts)),
                _ => {}
            }
            // Valve toggled: emit the delay since the sensor change.
            if let Some(prev_valve) = self.last_valve[pair] {
                if prev_valve != valve {
                    if let Some((_, sensor_ts)) = self.last_sensor[pair] {
                        let mut event = StreamPacket::with_capacity(2);
                        event
                            .push_field("pair", FieldValue::U64(pair as u64))
                            .push_field("delay_us", FieldValue::U64(ts - sensor_ts));
                        let _ = ctx.emit(&event);
                    }
                }
            }
            self.last_valve[pair] = Some(valve);
        }
    }
}

/// Stage 4: aggregate the delay distribution.
struct Aggregate {
    stats: Arc<Mutex<OnlineStats>>,
}
impl StreamProcessor for Aggregate {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        if let Some(d) = packet.get("delay_us").and_then(|v| v.as_u64()) {
            self.stats.lock().push(d as f64);
        }
    }
}

fn main() {
    const READINGS: u64 = 200_000;
    let delays = Arc::new(Mutex::new(OnlineStats::new()));
    let agg = delays.clone();

    // The delay detector is order-sensitive: it compares consecutive
    // readings. NEPTUNE guarantees in-order delivery *per channel*, so the
    // extract and detect stages run with parallelism 1 — a single channel
    // end to end. (Scaling this job means partitioning by sensor pair
    // upstream, which is exactly why the paper makes partitioning schemes
    // a first-class link property.)
    let graph = GraphBuilder::new("manufacturing")
        .source("ingest", || ManufacturingSource::new(7, READINGS))
        .processor("extract", || Extract)
        .processor("detect", DetectDelays::new)
        .processor("aggregate", move || Aggregate { stats: agg.clone() })
        .link("ingest", "extract", PartitioningScheme::Shuffle)
        .link("extract", "detect", PartitioningScheme::Global)
        .link("detect", "aggregate", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");

    let job = LocalRuntime::new(RuntimeConfig {
        buffer_bytes: 256 * 1024,
        flush_interval: Duration::from_millis(5),
        ..Default::default()
    })
    .submit(graph)
    .expect("deploys");

    let started = std::time::Instant::now();
    assert!(job.await_sources(Duration::from_secs(300)), "source timed out");
    let metrics = job.stop();
    let elapsed = started.elapsed().as_secs_f64();

    let d = delays.lock();
    println!("----------------------------------------------------");
    println!("readings ingested   : {}", metrics.operator("ingest").packets_out);
    println!("throughput          : {:.0} readings/s", READINGS as f64 / elapsed);
    println!("actuation events    : {}", d.count());
    println!(
        "sensor→valve delay  : mean {:.2} ms (σ {:.2} ms, min {:.2}, max {:.2})",
        d.mean() / 1e3,
        d.std_dev() / 1e3,
        d.min() / 1e3,
        d.max() / 1e3
    );
    println!("seq violations      : {}", metrics.total_seq_violations());

    // The simulator actuates valves 20 ms after the sensor changes; the
    // pipeline must recover that (within one reading interval).
    assert!(d.count() > 50, "too few actuation events observed");
    let mean_ms = d.mean() / 1e3;
    assert!((mean_ms - 20.0).abs() < 3.0, "recovered delay {mean_ms:.2} ms, expected ~20 ms");
    assert_eq!(metrics.total_seq_violations(), 0);
    println!("manufacturing_monitor OK");
}
