//! Quickstart: a two-stage NEPTUNE job in ~60 lines.
//!
//! A source emits 100,000 small sensor readings; a processor computes a
//! running average and prints job metrics at the end. Demonstrates the
//! core API surface: packets, operators, graph building, runtime
//! configuration, metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Emits `remaining` synthetic temperature readings, then exhausts.
struct TemperatureSource {
    remaining: u64,
    reading_id: u64,
}

impl StreamSource for TemperatureSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        let mut packet = StreamPacket::new();
        // A slowly oscillating temperature with the reading id and a
        // timestamp for latency accounting.
        let temp = 20.0 + 5.0 * ((self.reading_id as f64) / 1000.0).sin();
        packet
            .push_field("id", FieldValue::U64(self.reading_id))
            .push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("celsius", FieldValue::F64(temp));
        self.reading_id += 1;
        self.remaining -= 1;
        match ctx.emit(&packet) {
            Ok(()) => SourceStatus::Emitted(1),
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

/// Maintains a running average of the temperature field.
struct RunningAverage {
    count: u64,
    sum: f64,
    seen: Arc<AtomicU64>,
}

impl StreamProcessor for RunningAverage {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        if let Some(t) = packet.get("celsius").and_then(|v| v.as_f64()) {
            self.count += 1;
            self.sum += t;
        }
        self.seen.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, _ctx: &mut OperatorContext) {
        if self.count > 0 {
            println!(
                "instance done: {} readings, mean temperature {:.3} °C",
                self.count,
                self.sum / self.count as f64
            );
        }
    }
}

fn main() {
    const READINGS: u64 = 100_000;
    let seen = Arc::new(AtomicU64::new(0));
    let seen_handle = seen.clone();

    let graph = GraphBuilder::new("quickstart")
        .source("thermometer", || TemperatureSource { remaining: READINGS, reading_id: 0 })
        .processor_n("average", 2, move || RunningAverage {
            count: 0,
            sum: 0.0,
            seen: seen_handle.clone(),
        })
        .link("thermometer", "average", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");

    // The paper's default configuration: 1 MB buffers, timer flush,
    // batched scheduling, watermark backpressure.
    let runtime = LocalRuntime::new(RuntimeConfig::default());
    let job = runtime.submit(graph).expect("deploys");

    let started = std::time::Instant::now();
    assert!(job.await_sources(Duration::from_secs(60)), "source timed out");
    let metrics = job.stop();
    let elapsed = started.elapsed();

    let avg = metrics.operator("average");
    println!("--------------------------------------------------");
    println!("packets emitted : {}", metrics.operator("thermometer").packets_out);
    println!("packets received: {}", avg.packets_in);
    println!("frames          : {}", avg.frames_in);
    println!("executions      : {}", avg.executions);
    println!("packets/frame   : {:.1}", avg.packets_per_frame());
    println!("seq violations  : {}", metrics.total_seq_violations());
    println!(
        "throughput      : {:.0} packets/s",
        seen.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(seen.load(Ordering::Relaxed), READINGS);
    assert_eq!(metrics.total_seq_violations(), 0);
    println!("quickstart OK");
}
