//! The paper's three-stage message relay (Fig. 1), run for real.
//!
//! Stage A (sender, node/resource 0) emits fixed-size IoT packets;
//! stage B (relay, resource 1) forwards them; stage C (receiver,
//! resource 0) measures end-to-end latency from the embedded timestamps —
//! sender and receiver share a resource precisely so the latency clock is
//! one machine's clock, the paper's trick for avoiding clock-skew
//! corrections.
//!
//! Run with (message size and count optional):
//! ```text
//! cargo run --release --example relay_pipeline -- 200 500000
//! ```

use neptune::core::config::TransportMode;
use neptune::data::FixedSizeSource;
use neptune::prelude::*;
use neptune::stats::OnlineStats;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Stage B: forwards every packet unchanged.
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(packet);
    }
}

/// Stage C: accumulates end-to-end latency from the `ts` field.
struct LatencyProbe {
    stats: Arc<Mutex<OnlineStats>>,
}
impl StreamProcessor for LatencyProbe {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        if let Some(sent) = packet.get("ts").and_then(|v| v.as_timestamp()) {
            let latency_us = now_micros().saturating_sub(sent) as f64;
            self.stats.lock().push(latency_us);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let msg_size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let count: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500_000);

    let latency = Arc::new(Mutex::new(OnlineStats::new()));
    let probe = latency.clone();

    let graph = GraphBuilder::new("relay")
        .source("sender", move || FixedSizeSource::new(msg_size, count, 42))
        .processor("relay", || Relay)
        .processor("receiver", move || LatencyProbe { stats: probe.clone() })
        .link("sender", "relay", PartitioningScheme::Shuffle)
        .link("relay", "receiver", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");

    // Two resources so the relay genuinely crosses a TCP connection on
    // loopback, like the paper's two-machine deployment.
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 64 * 1024,
        flush_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");

    let started = std::time::Instant::now();
    assert!(job.await_sources(Duration::from_secs(300)), "sender timed out");
    let metrics = job.stop();
    let elapsed = started.elapsed().as_secs_f64();

    let recv = metrics.operator("receiver");
    let sent = metrics.operator("sender");
    let lat = latency.lock();
    println!("----------------------------------------------------");
    println!("message size     : {msg_size} B payload");
    println!("packets          : {} sent, {} received", sent.packets_out, recv.packets_in);
    println!("throughput       : {:.0} packets/s", recv.packets_in as f64 / elapsed);
    println!(
        "bandwidth        : {:.3} Gbps (app-level)",
        metrics.total_bytes_out() as f64 * 8.0 / elapsed / 1e9
    );
    println!(
        "latency          : mean {:.2} ms, max {:.2} ms over {} samples",
        lat.mean() / 1e3,
        lat.max() / 1e3,
        lat.count()
    );
    println!(
        "frames           : {} (batching {:.0} packets/frame)",
        recv.frames_in,
        recv.packets_per_frame()
    );
    println!("seq violations   : {}", metrics.total_seq_violations());
    assert_eq!(recv.packets_in, count, "exactly-once delivery");
    assert_eq!(metrics.total_seq_violations(), 0);
    println!("relay_pipeline OK");
}
