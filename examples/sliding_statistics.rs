//! The paper's flush-timer motivating scenario (§III-B1), end to end.
//!
//! *"if a stream operator calculates a descriptive statistic for a sliding
//! window over incoming stream packets and emits a new stream packet only
//! if it detects a significant change in the value that is of interest,
//! the outgoing stream will have a low and a variable data rate. This will
//! increase the time it takes to trigger a buffer flush causing an
//! increased queuing delay ... each buffer in NEPTUNE is equipped with a
//! timer that guarantees flushing of the buffer after a certain time
//! period since arrival of the first message."*
//!
//! The pipeline: a rate-limited sensor source → a sliding-window analyst
//! that emits only on significant change (a sparse stream!) → an alert
//! sink measuring how stale each alert is on arrival. With a 1 MB buffer
//! an alert would otherwise wait ~forever; the 10 ms flush timer bounds
//! its staleness.
//!
//! Run with:
//! ```text
//! cargo run --release --example sliding_statistics
//! ```

use neptune::core::sources::{IteratorSource, RateLimitedSource};
use neptune::core::SlidingWindow;
use neptune::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Synthetic sensor: a noisy baseline with occasional level shifts.
fn sensor_readings(n: usize) -> impl Iterator<Item = StreamPacket> + Send {
    (0..n).map(|i| {
        let level = match i / 400 {
            0 | 2 => 20.0,
            1 => 26.0,
            _ => 31.0,
        };
        let noise = ((i as f64 * 0.7).sin() + (i as f64 * 1.3).cos()) * 0.25;
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("value", FieldValue::F64(level + noise));
        p
    })
}

/// Sliding-window analyst: keeps a 200 ms window mean; emits an alert only
/// when the mean moves more than `threshold` from the last reported value.
struct ChangeDetector {
    window: SlidingWindow,
    last_reported: Option<f64>,
    threshold: f64,
}
impl StreamProcessor for ChangeDetector {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let (Some(ts), Some(v)) = (
            packet.get("ts").and_then(|x| x.as_timestamp()),
            packet.get("value").and_then(|x| x.as_f64()),
        ) else {
            return;
        };
        self.window.observe(ts, v);
        let mean = self.window.mean();
        let significant = match self.last_reported {
            None => true,
            Some(prev) => (mean - prev).abs() > self.threshold,
        };
        if significant {
            self.last_reported = Some(mean);
            let mut alert = ctx.checkout_packet();
            alert
                .push_field("emitted_at", FieldValue::Timestamp(now_micros()))
                .push_field("mean", FieldValue::F64(mean));
            let _ = ctx.emit(&alert);
            ctx.checkin_packet(alert);
        }
    }
}

/// Alert sink: records each alert's staleness (now - emitted_at), which is
/// exactly the buffering delay the flush timer bounds.
struct AlertSink {
    alerts: Arc<Mutex<Vec<(f64, u64)>>>,
}
impl StreamProcessor for AlertSink {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        let (Some(t0), Some(mean)) = (
            packet.get("emitted_at").and_then(|x| x.as_timestamp()),
            packet.get("mean").and_then(|x| x.as_f64()),
        ) else {
            return;
        };
        let staleness_us = now_micros().saturating_sub(t0);
        self.alerts.lock().push((mean, staleness_us));
    }
}

fn main() {
    const READINGS: usize = 1_600;
    let alerts = Arc::new(Mutex::new(Vec::new()));
    let sink_alerts = alerts.clone();

    let graph = GraphBuilder::new("sliding-stats")
        // ~2000 readings/s: a realistic sensor sampling rate.
        .source("sensor", || {
            RateLimitedSource::new(IteratorSource::new(sensor_readings(READINGS)), 2_000.0)
        })
        .processor("analyst", || ChangeDetector {
            window: SlidingWindow::new(200_000), // 200 ms of event time
            last_reported: None,
            threshold: 1.5,
        })
        .processor("alerts", move || AlertSink { alerts: sink_alerts.clone() })
        .link("sensor", "analyst", PartitioningScheme::Shuffle)
        .link("analyst", "alerts", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");

    // Huge buffers: only the flush timer can move the sparse alert stream.
    let config = RuntimeConfig {
        buffer_bytes: 1 << 20,
        flush_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    assert!(job.await_sources(Duration::from_secs(60)), "source timed out");
    let metrics = job.stop();

    let alerts = alerts.lock();
    println!("----------------------------------------------------");
    println!("readings processed : {}", metrics.operator("analyst").packets_in);
    println!("alerts emitted     : {}", alerts.len());
    for (i, (mean, stale)) in alerts.iter().enumerate() {
        println!("  alert {i}: window mean {mean:6.2}, staleness {:.2} ms", *stale as f64 / 1e3);
    }
    let worst = alerts.iter().map(|&(_, s)| s).max().unwrap_or(0);
    println!("worst staleness    : {:.2} ms (flush timer: 10 ms)", worst as f64 / 1e3);

    // The data has three level shifts; the window mean ramps through each
    // shift, so every shift yields a handful of alerts — a sparse stream
    // of a few dozen packets against 1,600 readings.
    assert!(
        (2..=30).contains(&alerts.len()),
        "expected a sparse alert stream, got {}",
        alerts.len()
    );
    // Without the flush timer an alert would sit in the 1 MB buffer until
    // job teardown; with it, staleness stays in the tens of milliseconds.
    assert!(worst < 100_000, "flush timer failed to bound alert staleness: {} us", worst);
    assert_eq!(metrics.total_seq_violations(), 0);
    println!("sliding_statistics OK — sparse alerts stayed fresh under a 1 MB buffer");
}
