//! Backpressure integration tests — §III-B4 end to end.
//!
//! The paper's claims under test:
//! * the source's emission rate is governed by the slowest downstream
//!   stage (Fig. 4),
//! * no packets are dropped (*"Some frameworks employ a fail-fast
//!   technique where the senders drop messages ... which causes loss of
//!   messages"* — NEPTUNE must not),
//! * queue levels stay bounded by the watermarks,
//! * the system recovers when the slow stage speeds back up.

use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Firehose {
    emitted: Arc<AtomicU64>,
    limit: u64,
}
impl StreamSource for Firehose {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.emitted.load(Ordering::Relaxed) >= self.limit {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.emitted.load(Ordering::Relaxed)));
        match ctx.emit(&p) {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

struct PacedSink {
    processed: Arc<AtomicU64>,
    delay_us: Arc<AtomicU64>,
}
impl StreamProcessor for PacedSink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        let us = self.delay_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
    }
}

fn tight_config() -> RuntimeConfig {
    RuntimeConfig {
        buffer_bytes: 2048,
        flush_interval: Duration::from_millis(2),
        // The high watermark must sit well below the mid-run gap bound
        // asserted by `slow_sink_throttles_source_without_loss` (2_500
        // packets at ~13 wire bytes each), otherwise the gate only engages
        // in the same region the gap assertion forbids and the two checks
        // race each other.
        watermark_high: 8 * 1024,
        watermark_low: 2 * 1024,
        ..Default::default()
    }
}

#[test]
fn slow_sink_throttles_source_without_loss() {
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let delay = Arc::new(AtomicU64::new(200)); // 200 us per packet
    let (e2, p2, d2) = (emitted.clone(), processed.clone(), delay.clone());

    let n = 3_000u64;
    let graph = GraphBuilder::new("bp-throttle")
        .source("src", move || Firehose { emitted: e2.clone(), limit: n })
        .processor("relay", || Forward)
        .processor("sink", move || PacedSink { processed: p2.clone(), delay_us: d2.clone() })
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(tight_config()).submit(graph).unwrap();

    // Mid-run: the source must not be arbitrarily far ahead of the sink —
    // in-flight data is bounded by buffers + watermarks (in packets:
    // a few thousand at these sizes), not by the total stream length.
    std::thread::sleep(Duration::from_millis(300));
    let e = emitted.load(Ordering::Relaxed);
    let p = processed.load(Ordering::Relaxed);
    if e < n {
        // Still running: the gap must be bounded.
        let gap = e - p;
        assert!(gap < 2_500, "source ran {gap} packets ahead despite watermarks");
    }
    assert!(job.await_sources(Duration::from_secs(120)));
    let gate_events = job.total_gate_events();
    let metrics = job.stop();
    assert_eq!(processed.load(Ordering::Relaxed), n, "backpressure must not drop");
    assert_eq!(metrics.total_seq_violations(), 0);
    assert!(gate_events > 0, "the watermark gate must actually have engaged during the run");
}

#[test]
fn source_rate_tracks_sink_rate_inversely() {
    // Fig. 4's staircase, compressed: two phases (fast, slow); the source
    // rate in the slow phase must be a fraction of the fast phase.
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let delay = Arc::new(AtomicU64::new(0));
    let (e2, p2, d2) = (emitted.clone(), processed.clone(), delay.clone());

    let graph = GraphBuilder::new("bp-staircase")
        .source("src", move || Firehose { emitted: e2.clone(), limit: u64::MAX })
        .processor("relay", || Forward)
        .processor("sink", move || PacedSink { processed: p2.clone(), delay_us: d2.clone() })
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(tight_config()).submit(graph).unwrap();

    let measure = |window_ms: u64| {
        let e0 = emitted.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(window_ms));
        let e1 = emitted.load(Ordering::Relaxed);
        (e1 - e0) as f64 / (window_ms as f64 / 1000.0)
    };

    delay.store(0, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(100)); // settle
    let fast = measure(400);
    delay.store(1_000, Ordering::Relaxed); // 1 ms per packet -> ~1k/s
    std::thread::sleep(Duration::from_millis(100));
    let slow = measure(400);
    delay.store(0, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(100));
    let recovered = measure(400);
    job.stop();

    assert!(slow < fast / 4.0, "slow-phase source rate {slow:.0} not throttled vs fast {fast:.0}");
    assert!(recovered > slow * 4.0, "source did not recover: {recovered:.0} after slow {slow:.0}");
}

#[test]
fn watermark_queue_levels_stay_bounded() {
    // Indirect but strong: with a sink 100x slower than the source, run
    // for a while and verify completion with zero loss — if queues were
    // unbounded the settle phase would never converge within the window,
    // and if flow control dropped packets the count would be short.
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let delay = Arc::new(AtomicU64::new(50));
    let (e2, p2, d2) = (emitted.clone(), processed.clone(), delay.clone());
    let n = 5_000u64;
    let graph = GraphBuilder::new("bp-bounded")
        .source("src", move || Firehose { emitted: e2.clone(), limit: n })
        .processor("sink", move || PacedSink { processed: p2.clone(), delay_us: d2.clone() })
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(tight_config()).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    let metrics = job.stop();
    assert_eq!(processed.load(Ordering::Relaxed), n);
    assert_eq!(metrics.operator("sink").packets_in, n);
    assert_eq!(metrics.total_seq_violations(), 0);
}

#[test]
fn backpressure_propagates_through_multiple_stages() {
    // Fig. 3: the slow stage is C, two hops from the source; pressure must
    // cross the intermediate stage B.
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let delay = Arc::new(AtomicU64::new(500));
    let (e2, p2, d2) = (emitted.clone(), processed.clone(), delay.clone());
    let graph = GraphBuilder::new("bp-chain")
        .source("a", move || Firehose { emitted: e2.clone(), limit: u64::MAX })
        .processor("b", || Forward)
        .processor("c", move || PacedSink { processed: p2.clone(), delay_us: d2.clone() })
        .link("a", "b", PartitioningScheme::Shuffle)
        .link("b", "c", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(tight_config()).submit(graph).unwrap();
    // Let the pipeline fill to its watermark-bounded capacity.
    std::thread::sleep(Duration::from_millis(700));
    let gap1 = emitted.load(Ordering::Relaxed) - processed.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(700));
    let gap2 = emitted.load(Ordering::Relaxed) - processed.load(Ordering::Relaxed);
    let p = processed.load(Ordering::Relaxed);
    job.stop();
    // Once the watermark capacity is full, the source can only run at the
    // sink's pace: the emitted-minus-processed gap must stop growing. An
    // unthrottled source would add hundreds of thousands of packets in
    // 700 ms.
    assert!(gap2 < gap1 + 2_000, "pressure failed to propagate: gap grew {gap1} -> {gap2}");
    // And the absolute gap stays within the configured in-flight budget
    // (watermarks + buffers across two hops), far below free-run volume.
    assert!(gap2 < 20_000, "gap {gap2} exceeds any bounded-queue explanation");
    assert!(p > 0, "sink made no progress");
}
