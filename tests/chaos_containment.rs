//! Failure-containment acceptance tests (ISSUE 5).
//!
//! Three claims under test, each seeded via `NEPTUNE_CHAOS_SEED` so the
//! CI chaos job can replay them under several seeds:
//!
//! 1. **Poison quarantine** — an operator that panics deterministically on
//!    one packet loses *only the frame carrying that packet*: every other
//!    packet is delivered, the poison frame lands in the dead-letter queue
//!    with its panic message, and the job completes.
//! 2. **Circuit breaking** — a *persistently* panicking operator trips its
//!    breaker; subsequent frames are drained-and-dropped instead of
//!    wedging the upstream gate, so the source still finishes.
//! 3. **SLO-driven shedding** — under ~2x overload, `DropOldest` keeps the
//!    source-side emit latency bounded while `shed_total` grows; the same
//!    overload under the default `ShedPolicy::None` delivers losslessly.

use neptune::net::watermark::ShedPolicy;
use neptune::prelude::*;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for the scripted faults; the CI chaos job varies it.
fn chaos_seed() -> u64 {
    std::env::var("NEPTUNE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

struct Firehose {
    emitted: Arc<AtomicU64>,
    limit: u64,
    /// Per-emit wall time in micros, for the shed SLO assertion.
    emit_micros: Arc<Mutex<Vec<u64>>>,
}

impl StreamSource for Firehose {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        let n = self.emitted.load(Ordering::Relaxed);
        if n >= self.limit {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(n));
        let started = Instant::now();
        match ctx.emit(&p) {
            Ok(()) => {
                self.emit_micros.lock().push(started.elapsed().as_micros() as u64);
                self.emitted.fetch_add(1, Ordering::Relaxed);
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

/// Sink that panics every time it sees the poison value, and records the
/// *distinct* values it completed (retries re-run messages, so a plain
/// counter would double-count).
struct PoisonSink {
    seen: Arc<Mutex<Vec<bool>>>,
    poison: Option<u64>,
    delay: Duration,
}

impl StreamProcessor for PoisonSink {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        let n = match p.get("n") {
            Some(FieldValue::U64(n)) => *n,
            _ => panic!("malformed packet"),
        };
        if Some(n) == self.poison {
            panic!("poison packet n={n}");
        }
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.seen.lock()[n as usize] = true;
    }
}

/// Sink that panics on *every* packet: the persistently sick operator.
struct AlwaysPanics;

impl StreamProcessor for AlwaysPanics {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        panic!("operator is wedged");
    }
}

fn containment_config() -> RuntimeConfig {
    RuntimeConfig {
        buffer_bytes: 256,
        flush_interval: Duration::from_millis(1),
        containment: ContainmentConfig::enabled(),
        ..Default::default()
    }
}

fn build_job<P, F>(
    name: &str,
    total: u64,
    config: RuntimeConfig,
    emitted: Arc<AtomicU64>,
    emit_micros: Arc<Mutex<Vec<u64>>>,
    sink: F,
) -> JobHandle
where
    P: StreamProcessor + 'static,
    F: Fn() -> P + Send + Sync + 'static,
{
    let graph = GraphBuilder::new(name)
        .source("src", move || Firehose {
            emitted: emitted.clone(),
            limit: total,
            emit_micros: emit_micros.clone(),
        })
        .processor("sink", sink)
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    LocalRuntime::new(config).submit(graph).unwrap()
}

#[test]
fn poison_packet_quarantines_only_its_frame() {
    let seed = chaos_seed();
    let total = 400u64;
    // The poison position moves with the seed; every position must contain.
    let poison = seed.wrapping_mul(0x9E37_79B9) % total;

    let emitted = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(Mutex::new(vec![false; total as usize]));
    let seen2 = seen.clone();
    let mut config = containment_config();
    config.containment.max_retries = 2;
    config.containment.breaker_threshold = 100; // keep the breaker out of this test
    let job = build_job(
        "poison-quarantine",
        total,
        config,
        emitted.clone(),
        Arc::new(Mutex::new(Vec::new())),
        move || PoisonSink { seen: seen2.clone(), poison: Some(poison), delay: Duration::ZERO },
    );

    assert!(job.await_sources(Duration::from_secs(60)), "source must finish");
    assert!(job.settle(Duration::from_secs(60)), "sink must drain");

    let letters = job.dead_letters();
    assert_eq!(letters.len(), 1, "exactly one poison frame must be quarantined");
    let letter = &letters[0];
    assert_eq!(letter.operator, "sink");
    assert!(letter.panic_msg.contains(&format!("poison packet n={poison}")));
    assert_eq!(letter.attempts, 3, "1 initial + 2 retries");
    assert!(letter.original_len > 0);
    assert!(!letter.bytes.is_empty(), "payload bytes must be captured");
    // The poison value sits inside the quarantined frame's message range.
    let range = letter.base_seq..letter.base_seq + letter.messages as u64;
    assert!(range.contains(&poison), "poison {poison} outside quarantined range {range:?}");

    // Zero loss elsewhere: every value outside the quarantined frame was
    // processed. (Values inside the frame but before the poison message
    // may also have been processed during the attempts — at-least-once
    // within the retry window.)
    let seen = seen.lock();
    for n in 0..total {
        if !range.contains(&n) {
            assert!(seen[n as usize], "packet {n} lost outside the quarantined frame");
        }
    }
    assert!(!seen[poison as usize], "the poison packet itself must never complete");

    let metrics = job.stop();
    let c = metrics.containment;
    assert_eq!(c.quarantined, 1);
    assert_eq!(c.panics, 3);
    assert_eq!(c.retries, 2);
    assert_eq!(c.breaker_trips, 0);
    assert_eq!(c.dead_letters, 1);
    assert_eq!(c.shed_total, 0, "no shedding in a lossless-policy run");
    assert_eq!(c.worker_panics, 0, "supervision must catch below the pool");
}

#[test]
fn persistent_failure_trips_breaker_without_stalling_source() {
    let total = 600u64;
    let emitted = Arc::new(AtomicU64::new(0));
    let mut config = containment_config();
    config.containment.max_retries = 0;
    config.containment.breaker_threshold = 3;
    // Long cooldown: the breaker must stay open for the rest of the run.
    config.containment.breaker_cooldown = Duration::from_secs(30);
    let job = build_job(
        "breaker-trip",
        total,
        config,
        emitted.clone(),
        Arc::new(Mutex::new(Vec::new())),
        || AlwaysPanics,
    );

    // The whole point: a persistently failing sink must not wedge the
    // upstream gate — the source still finishes in bounded time.
    assert!(job.await_sources(Duration::from_secs(60)), "source stalled behind a sick sink");
    assert!(job.settle(Duration::from_secs(60)));
    assert_eq!(emitted.load(Ordering::Relaxed), total);

    let letters = job.dead_letters();
    assert_eq!(letters.len(), 3, "threshold quarantines, then the breaker rejects");
    let metrics = job.stop();
    let c = metrics.containment;
    assert_eq!(c.quarantined, 3);
    assert_eq!(c.breaker_trips, 1);
    assert!(c.breaker_dropped > 0, "open breaker must drain-and-drop");
    assert_eq!(c.retries, 0);
}

/// ISSUE 10 satellite: checkpoint barrier frames are control plane, not
/// data — even when *every* data frame around them is quarantined, no
/// barrier may land in the dead-letter queue or count as a shed drop,
/// and alignment must keep completing rounds through the carnage.
#[test]
fn barriers_never_enter_the_dead_letter_queue() {
    let total = 400u64;
    let emitted = Arc::new(AtomicU64::new(0));
    let mut config = containment_config();
    config.containment.max_retries = 0;
    config.containment.breaker_threshold = 1_000_000; // quarantine every frame
    config.checkpoint = CheckpointConfig::every(Duration::from_millis(2));
    let job = build_job(
        "barrier-dlq-exemption",
        total,
        config,
        emitted.clone(),
        Arc::new(Mutex::new(Vec::new())),
        || AlwaysPanics,
    );
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(60)));
    assert_eq!(emitted.load(Ordering::Relaxed), total);

    let letters = job.dead_letters();
    assert!(!letters.is_empty(), "every data frame should have been quarantined");
    for letter in &letters {
        assert!(
            letter.messages > 0,
            "a zero-message (control) frame reached the dead-letter queue"
        );
    }
    let stats = job.checkpoint_stats().expect("checkpointing enabled");
    assert!(
        stats.completed + stats.in_flight + stats.abandoned > 0,
        "barrier rounds must have been requested"
    );
    let metrics = job.stop();
    assert_eq!(metrics.containment.shed_total, 0, "barriers must never count as shed drops");
}

#[test]
fn drop_oldest_bounds_source_latency_under_overload() {
    let total = 1_500u64;
    let emitted = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(Mutex::new(vec![false; total as usize]));
    let seen2 = seen.clone();
    let emit_micros = Arc::new(Mutex::new(Vec::new()));
    let mut config = containment_config();
    // Small watermarks so the slow sink gates quickly, and a short stall
    // budget so the policy arms within the test's patience.
    config.watermark_high = 4 * 1024;
    config.watermark_low = 1024;
    config.containment.shed_policy = ShedPolicy::DropOldest;
    config.containment.max_stall = Duration::from_millis(10);
    let job = build_job(
        "shed-drop-oldest",
        total,
        config,
        emitted.clone(),
        emit_micros.clone(),
        move || PoisonSink {
            seen: seen2.clone(),
            poison: None,
            delay: Duration::from_micros(400), // ~2x the source's pace
        },
    );

    assert!(job.await_sources(Duration::from_secs(60)), "shedding source must not stall");
    assert!(job.settle(Duration::from_secs(60)));
    let metrics = job.stop();
    assert!(metrics.containment.shed_total > 0, "overload must actually shed");
    assert!(metrics.containment.shed_bytes > 0);

    // The SLO: no single emit may block longer than the shed stall budget
    // plus generous scheduling slack — far below the unbounded waits a
    // lossless gate would impose on a persistently slower consumer.
    let mut lat = emit_micros.lock().clone();
    assert!(!lat.is_empty());
    lat.sort_unstable();
    let p99 = lat[(lat.len() - 1) * 99 / 100];
    assert!(p99 < 250_000, "p99 emit latency {p99}us breaches the shed SLO (max_stall=10ms)");
    // Shedding sacrifices frames: the sink must have seen strictly fewer
    // packets than were emitted, and the books must balance.
    let delivered = seen.lock().iter().filter(|s| **s).count() as u64;
    assert!(delivered < total, "2x overload with DropOldest must lose something");
    assert!(delivered > 0);
}

#[test]
fn lossless_policy_delivers_everything_under_same_overload() {
    let total = 1_500u64;
    let emitted = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(Mutex::new(vec![false; total as usize]));
    let seen2 = seen.clone();
    let mut config = containment_config();
    config.watermark_high = 4 * 1024;
    config.watermark_low = 1024;
    // Default ShedPolicy::None: same overload, zero loss (§III-B4).
    let job = build_job(
        "shed-none-lossless",
        total,
        config,
        emitted.clone(),
        Arc::new(Mutex::new(Vec::new())),
        move || PoisonSink { seen: seen2.clone(), poison: None, delay: Duration::from_micros(400) },
    );

    assert!(job.await_sources(Duration::from_secs(120)));
    assert!(job.settle(Duration::from_secs(120)));
    let metrics = job.stop();
    assert_eq!(metrics.containment.shed_total, 0);
    let delivered = seen.lock().iter().filter(|s| **s).count() as u64;
    assert_eq!(delivered, total, "lossless backpressure must deliver every packet");
    assert_eq!(metrics.total_seq_violations(), 0);
}
