//! Fault-tolerance acceptance tests: a seeded [`FaultPlan`] kills and
//! restores a link mid-stream and the job must complete with **zero
//! message loss** — at-least-once delivery on the wire, deduplicated by
//! sequence number at the sink — while the recovery telemetry shows the
//! failure actually happened (retransmits > 0, reconnects > 0) and
//! detection latency stays within the acceptance bound (p99 below
//! 3x the heartbeat timeout).
//!
//! Links are assembled through the shared [`LinkBuilder`] and sinks
//! classify frames through [`ReliableIngress`] — the same stack every
//! production path uses, so these scenarios exercise the real machinery.
//!
//! Everything is scripted by *position* (frame counts) and seeded, so the
//! CI chaos job replays these scenarios bit-identically under several
//! seeds (`NEPTUNE_CHAOS_SEED`).

use bytes::Bytes;
use neptune::compress::SelectiveCompressor;
use neptune::core::checkpoint::{CheckpointSnapshot, InstanceState};
use neptune::core::state::StateReader;
use neptune::core::{TumblingWindow, WindowAggregate};
use neptune::granules::{IoPool, Reactor};
use neptune::ha::{DetectorConfig, FailureDetector, PeerState};
use neptune::link::{
    AckMode, ChaosLink, FaultEvent, FaultPlan, FrameLink, IngressVerdict, LinkBuilder, QueueLink,
    ReconnectPolicy, RecoveryStats, ReliableIngress, TcpFrameLink,
};
use neptune::net::frame::{ControlKind, Frame};
use neptune::net::tcp::{TcpReceiver, TcpSender};
use neptune::net::transport::TransportError;
use neptune::net::watermark::{WatermarkConfig, WatermarkQueue};
use neptune::net::NetDriver;
use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Seed for the scripted faults; the CI chaos job varies it.
fn chaos_seed() -> u64 {
    std::env::var("NEPTUNE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

fn batch_of(msgs: &[&[u8]]) -> (Bytes, u32) {
    let mut out = Vec::new();
    for m in msgs {
        out.extend_from_slice(&(m.len() as u32).to_le_bytes());
        out.extend_from_slice(m);
    }
    (Bytes::from(out), msgs.len() as u32)
}

#[test]
fn seeded_link_cut_mid_stream_loses_nothing() {
    let seed = chaos_seed();
    const LINK: u64 = 1;
    const TOTAL: u64 = 200;

    // Script the cut from the seed: somewhere in the first half of the
    // stream, down for a few delivery attempts. Different seeds move the
    // cut; every seed must recover.
    let plan = FaultPlan::new(seed);
    let at_frame = plan.jitter(1, 10, 90);
    let down_for = plan.jitter(2, 2, 6);
    let plan = plan.with_event(FaultEvent::CutLink { link_id: LINK, at_frame, down_for });

    let sink_queue: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(sink_queue.clone())), &plan, LINK));
    let stats = Arc::new(RecoveryStats::new());
    let link = LinkBuilder::new(LINK)
        .transport(chaos)
        .reliable(ReconnectPolicy::fast(seed), 1 << 20, stats.clone())
        .build();

    // Stream TOTAL one-message batches through the failing link; the sink
    // drains concurrently with the sends, dedups by message sequence
    // through the shared ingress, and acks cumulatively (trimming the
    // sender's replay buffer).
    let ingress = ReliableIngress::new(AckMode::Immediate);
    let mut delivered: Vec<u64> = Vec::new();
    let drain = |delivered: &mut Vec<u64>| {
        while let Some(f) = sink_queue.pop() {
            if let IngressVerdict::Deliver { skip: 0 } =
                ingress.admit(f.link_id, f.base_seq, f.len() as u32)
            {
                delivered.push(f.base_seq);
            }
            if let Some((_, watermark)) = ingress.stage_ack(f.link_id) {
                link.ack(watermark);
            }
        }
    };
    for i in 0..TOTAL {
        let payload = i.to_le_bytes();
        let (encoded, count) = batch_of(&[&payload]);
        link.send_batch(i, encoded, count, 0, 0)
            .expect("link must recover within its retry budget");
        // The sink drains (and acks) every few sends, so several frames
        // are in flight when the cut lands — the replay then re-sends
        // delivered-but-unacked frames and the dedup filter must absorb
        // the duplicates.
        if i % 7 == 6 {
            drain(&mut delivered);
        }
    }
    drain(&mut delivered);

    // Zero loss, in order, exactly once past the dedup filter.
    assert_eq!(delivered, (0..TOTAL).collect::<Vec<_>>(), "seed {seed}: lost or reordered");

    let snap = stats.snapshot();
    assert!(snap.retransmits > 0, "seed {seed}: the cut must force replay");
    assert!(snap.reconnects >= 1, "seed {seed}: the link must have reconnected");
    assert_eq!(snap.link_failures, 0, "seed {seed}: retry budget must not exhaust");
    // Replay happened, so the wire carried duplicates the sink dropped.
    assert!(ingress.duplicates_dropped() > 0, "seed {seed}: replay implies duplicates at the sink");
    // Everything delivered was eventually acked and trimmed.
    let sup = link.reliability().expect("reliable link");
    assert!(sup.replay().is_empty(), "seed {seed}: acks must trim the replay buffer");
}

/// The same seeded link-cut scenario, but over real sockets on the
/// readiness-driven path: an epoll-backed [`TcpReceiver`] serves the
/// sink, the reliability layer (re)connects nonblocking [`TcpSender`]s
/// through the shared reactor, and the cut severs every established
/// connection server-side mid-stream. Unlike the in-process link, socket
/// death surfaces *asynchronously* — sends keep succeeding into the
/// doomed sender's queue until the reactor reports the socket closed —
/// so frames can be lost by the wire after `send_batch` returned `Ok`.
/// The replay buffer must bring them back, and the sink's dedup filter
/// must squeeze the wire's at-least-once delivery to exactly-once.
#[test]
fn reactor_link_cut_replays_exactly_once_over_tcp() {
    let seed = chaos_seed();
    const LINK: u64 = 7;
    const TOTAL: u64 = 300;
    let plan = FaultPlan::new(seed);
    let cut_at = plan.jitter(21, 40, 220);

    let reactor = Reactor::new("chaos-net").expect("reactor thread");
    let io_pool = IoPool::new("chaos-net", 2);
    let driver = NetDriver::new(io_pool.spawner(), reactor.handle());

    let rx =
        TcpReceiver::bind_reactor("127.0.0.1:0", WatermarkConfig::new(1 << 20, 1 << 10), &driver)
            .expect("bind");
    let addr = rx.local_addr();

    // Wire acks land on the sender's IO task; the freshest cumulative
    // value is mirrored into a shared cell that the test thread feeds
    // back into the link, trimming its replay buffer.
    let acked = Arc::new(AtomicU64::new(0));
    let stats = Arc::new(RecoveryStats::new());
    let connect_driver = driver.clone();
    let connect_acked = acked.clone();
    let link = LinkBuilder::new(LINK)
        .reliable_with(
            Box::new(move || {
                let acked = connect_acked.clone();
                let tx = TcpSender::connect_reactor_with_acks(
                    addr,
                    64,
                    &connect_driver,
                    move |_, cum| {
                        acked.fetch_max(cum, Ordering::Relaxed);
                    },
                )
                .map_err(|e| TransportError::Io(e.to_string()))?;
                Ok(Arc::new(TcpFrameLink::new(tx, SelectiveCompressor::disabled()))
                    as Arc<dyn FrameLink>)
            }),
            ReconnectPolicy::fast(seed),
            1 << 20,
            stats.clone(),
        )
        .build();

    let ingress = ReliableIngress::new(AckMode::Immediate);
    let queue = rx.queue().clone();
    let mut delivered: Vec<u64> = Vec::new();
    let drain = |delivered: &mut Vec<u64>| {
        while let Some(f) = queue.pop() {
            if let IngressVerdict::Deliver { skip: 0 } =
                ingress.admit(f.link_id, f.base_seq, f.len() as u32)
            {
                delivered.push(f.base_seq);
            }
        }
        link.ack(acked.load(Ordering::Relaxed));
    };

    for i in 0..TOTAL {
        if i == cut_at {
            // Sever every established connection server-side. The sender
            // only learns when the reactor reports the socket closed.
            rx.chaos_drop_connections();
        }
        let payload = i.to_le_bytes();
        let (encoded, count) = batch_of(&[&payload]);
        link.send_batch(i, encoded, count, 0, 0)
            .expect("link must recover within its retry budget");
        if i % 7 == 6 {
            drain(&mut delivered);
        }
    }

    // Frames enqueued between the cut and its detection were lost by the
    // wire even though `send_batch` returned `Ok`. Keep probing — a
    // failed heartbeat triggers the same reconnect + replay as a failed
    // send — until every message has come out the other side.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while delivered.len() < TOTAL as usize {
        assert!(
            std::time::Instant::now() < deadline,
            "seed {seed}: only {}/{TOTAL} delivered after the cut at frame {cut_at}",
            delivered.len()
        );
        let _ = link.heartbeat();
        drain(&mut delivered);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Zero loss, in order, exactly once past the dedup filter.
    assert_eq!(delivered, (0..TOTAL).collect::<Vec<_>>(), "seed {seed}: lost or reordered");
    let snap = stats.snapshot();
    assert!(snap.retransmits > 0, "seed {seed}: the cut must force replay");
    assert!(snap.reconnects >= 1, "seed {seed}: the link must have reconnected");
    assert_eq!(snap.link_failures, 0, "seed {seed}: retry budget must not exhaust");

    // Acks for the replayed tail eventually trim the replay buffer.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !link.reliability().expect("reliable link").replay().is_empty() {
        assert!(std::time::Instant::now() < deadline, "seed {seed}: replay buffer never trimmed");
        link.ack(acked.load(Ordering::Relaxed));
        std::thread::sleep(Duration::from_millis(2));
    }

    // Teardown in dependency order: endpoints first (their IO tasks
    // retire while pool + reactor still serve), then the pool, then the
    // reactor.
    drop(link);
    rx.shutdown();
    drop(io_pool);
    drop(reactor);
}

#[test]
fn detection_latency_p99_within_three_timeouts() {
    let seed = chaos_seed();
    let interval = Duration::from_millis(10);
    let timeout = Duration::from_millis(60);
    let stats = Arc::new(RecoveryStats::new());
    let detector = FailureDetector::new(DetectorConfig::new(interval, timeout), stats.clone());
    let plan = FaultPlan::new(seed);

    // Five peers beat regularly (with seeded phase jitter), then go
    // silent one by one; a poll loop on the detector's cadence must
    // declare each dead within the acceptance bound.
    let peers: Vec<String> = (0..5).map(|i| format!("res-{i}")).collect();
    let interval_us = interval.as_micros() as u64;
    for (i, p) in peers.iter().enumerate() {
        let phase = plan.jitter(10 + i as u64, 0, interval_us / 2);
        let mut t = phase;
        // Beat for 20 intervals, then fall silent at a seeded instant.
        let silent_after = phase + 20 * interval_us + plan.jitter(100 + i as u64, 1, 5_000);
        while t < silent_after {
            detector.heartbeat_at(p, t);
            t += interval_us;
        }
    }
    // Poll on the monitor cadence (half the heartbeat interval) until
    // every peer is declared dead.
    let mut now = 0u64;
    let horizon = 60 * interval_us;
    while detector.peers_in(PeerState::Dead).len() < peers.len() && now < horizon {
        now += interval_us / 2;
        detector.poll_at(now);
    }
    assert_eq!(
        detector.peers_in(PeerState::Dead).len(),
        peers.len(),
        "seed {seed}: every silent peer must be declared dead"
    );

    let snap = stats.snapshot();
    assert_eq!(snap.deaths, peers.len() as u64);
    assert!(snap.suspects >= peers.len() as u64, "the suspect rung fires before dead");
    let bound = 3 * timeout.as_micros() as u64;
    assert!(
        snap.detection_latency.p99() < bound,
        "seed {seed}: detection p99 {}µs exceeds 3x timeout {}µs",
        snap.detection_latency.p99(),
        bound
    );
}

/// ISSUE 7 acceptance: the flight recorder must timeline a seeded outage
/// *causally* — the link cut, the peer turning suspect while the link is
/// down, the reconnect, and the replay — in that order.
///
/// Detector verdicts use explicit timestamps, so they are deterministic;
/// only the interleaving rides the wall clock, and the reconnect
/// schedule is slowed far past the watcher's poll cadence to make the
/// cut window impossible to miss.
#[test]
fn flight_recorder_timelines_cut_suspect_reconnect_replay() {
    use neptune::telemetry::{EventKind, FlightRecorder};

    let seed = chaos_seed();
    const LINK: u64 = 3;
    let recorder = Arc::new(FlightRecorder::new(256));

    // The peer beats once while the link is healthy; the silence window
    // that follows spans the cut.
    let detector_stats = Arc::new(RecoveryStats::new());
    let detector = Arc::new(FailureDetector::new(
        DetectorConfig::new(Duration::from_millis(10), Duration::from_millis(60)),
        detector_stats.clone(),
    ));
    detector.attach_recorder(recorder.clone());
    detector.heartbeat_at("peer-0", 0);

    let plan = FaultPlan::new(seed);
    let at_frame = plan.jitter(31, 5, 40);
    let down_for = plan.jitter(32, 2, 4);
    let plan = plan.with_event(FaultEvent::CutLink { link_id: LINK, at_frame, down_for });
    let sink: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(sink.clone())), &plan, LINK));
    // ≥30ms (post-jitter) before the first reconnect attempt: the watcher
    // polls every 200µs, so the suspect verdict lands inside the outage.
    let policy = ReconnectPolicy {
        base: Duration::from_millis(40),
        cap: Duration::from_millis(40),
        max_attempts: 10,
        jitter_seed: seed,
    };
    let link_stats = Arc::new(RecoveryStats::new());
    let link =
        LinkBuilder::new(LINK).transport(chaos).reliable(policy, 1 << 20, link_stats).build();
    link.reliability().expect("reliable link").attach_recorder(recorder.clone());

    // Watcher: the moment the recorder shows the cut, evaluate the peer —
    // silent for 45 "ms" by its deterministic clock, past the suspect
    // rung (30ms) but short of dead (60ms).
    let rec2 = recorder.clone();
    let det2 = detector.clone();
    let watcher = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if rec2.snapshot().iter().any(|e| e.kind == EventKind::LinkCut) {
                det2.poll_at(45_000);
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        panic!("watcher never saw the link cut");
    });

    for i in 0..(at_frame + down_for + 10) {
        let payload = i.to_le_bytes();
        let (encoded, count) = batch_of(&[&payload]);
        link.send_batch(i, encoded, count, 0, 0)
            .expect("link must recover within its retry budget");
    }
    watcher.join().unwrap();

    let kinds: Vec<EventKind> = recorder.snapshot().iter().map(|e| e.kind).collect();
    assert!(
        recorder.contains_sequence(&[
            EventKind::LinkCut,
            EventKind::PeerSuspect,
            EventKind::Reconnected,
            EventKind::Replay,
        ]),
        "seed {seed}: causal order missing from recorder timeline {kinds:?}"
    );
    // The JSON dump of the same timeline is non-empty and well-formed.
    let json = recorder.to_json();
    let doc = neptune::core::json::parse(&json).expect("recorder JSON parses");
    assert!(!doc.get("events").unwrap().as_array().unwrap().is_empty());
}

struct NumberSource {
    remaining: u64,
}

impl StreamSource for NumberSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.remaining -= 1;
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.remaining));
        ctx.emit(&p).unwrap();
        SourceStatus::Emitted(1)
    }
}

struct Count(Arc<AtomicU64>);
impl StreamProcessor for Count {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn runtime_job_with_ha_enabled_reports_recovery_telemetry() {
    // End-to-end: a relay job run with the HA layer on. Resources beat,
    // the monitor observes them, a scripted suspension kills one resource
    // and the detector + recovery counters must show the death and the
    // revival — the runtime-level half of the chaos harness.
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = seen.clone();
    let n = 5_000u64;
    let graph = GraphBuilder::new("chaos-it")
        .source("src", move || NumberSource { remaining: n })
        .processor("sink", move || Count(seen2.clone()))
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        ha: HaConfig {
            heartbeat_interval: Duration::from_millis(10),
            failure_timeout: Duration::from_millis(60),
            ..HaConfig::enabled()
        },
        telemetry: TelemetryConfig::enabled(),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));
    assert_eq!(seen.load(Ordering::Relaxed), n);

    // All resources alive and monitored.
    let wait_state = |res: usize, want: PeerState| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let states = job.resource_states().expect("ha enabled");
            if states.get(res).map(|(_, s)| *s) == Some(want) {
                return;
            }
            assert!(std::time::Instant::now() < deadline, "resource {res} never became {want:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    wait_state(0, PeerState::Alive);

    // Scripted failure: freeze resource 0's beacon, await the Dead
    // verdict, thaw, await revival.
    job.chaos_suspend_resource(0, true);
    wait_state(0, PeerState::Dead);
    job.chaos_suspend_resource(0, false);
    wait_state(0, PeerState::Alive);

    let recovery = job.recovery().expect("ha enabled");
    assert!(recovery.deaths >= 1);
    assert!(recovery.recoveries >= 1);
    assert_eq!(recovery.detection_latency.count(), recovery.deaths);
    let bound = 3 * 60_000u64;
    assert!(
        recovery.detection_latency.p99() < bound,
        "detection p99 {}µs exceeds 3x failure timeout",
        recovery.detection_latency.p99()
    );

    // The recovery section rides the standard telemetry exports.
    let snap = job.telemetry().expect("telemetry enabled");
    let doc = neptune::core::json::parse(&snap.to_json()).expect("JSON export parses");
    assert!(doc.get("recovery").is_some(), "recovery section in JSON export");
    assert!(snap.render_prometheus().contains("neptune_recovery_deaths_total"));
    job.stop();
}

// ---- Stateful recovery (ISSUE 10): windowed aggregation under seeded
// faults, checkpointed mid-window, must reproduce the uncut run's
// aggregates bit for bit. ----

/// Window geometry shared by the stateful scenarios: event time advances
/// 250µs per packet, so a 5ms tumbling window holds exactly 20 packets.
const WIDTH_US: u64 = 5_000;
const TS_STEP_US: u64 = 250;
const FRAMES_PER_WINDOW: u64 = WIDTH_US / TS_STEP_US;

fn event_time(i: u64) -> u64 {
    i * TS_STEP_US
}

/// Deterministic observation for packet `i` — fractional, sign-crossing
/// values so sum/min/max exercise real float accumulation.
fn observation(i: u64) -> f64 {
    ((i * 31) % 101) as f64 * 0.25 - 12.0
}

/// Bit-exact aggregate comparison: `byte-identical final aggregates` is
/// the acceptance bar, so floats compare by bit pattern, not epsilon.
fn aggs_identical(a: &[WindowAggregate], b: &[WindowAggregate]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.start_us == y.start_us
                && x.end_us == y.end_us
                && x.count == y.count
                && x.sum.to_bits() == y.sum.to_bits()
                && x.min.to_bits() == y.min.to_bits()
                && x.max.to_bits() == y.max.to_bits()
        })
}

/// The headline acceptance scenario: a windowed aggregation fed through a
/// link that suffers a seeded cut, with aligned checkpoints forced
/// mid-window, must produce final aggregates **byte-identical** to an
/// uncut run — and restoring the newest cut into a fresh aggregator,
/// then replaying the entire stream from zero (the most pessimistic
/// at-least-once upstream), must converge on the same aggregates with
/// every pre-cut frame classified as a duplicate.
#[test]
fn checkpointed_window_under_link_cut_matches_uncut_aggregates() {
    let seed = chaos_seed();
    const LINK: u64 = 11;
    const TOTAL: u64 = 240; // 12 windows of 20 frames
    const BARRIER_EVERY: u64 = 16; // never a multiple of the window: cuts land mid-fill

    // The uncut baseline, straight into the aggregator.
    let mut baseline = TumblingWindow::new(WIDTH_US);
    let mut baseline_closed = Vec::new();
    for i in 0..TOTAL {
        baseline_closed.extend(baseline.observe(event_time(i), observation(i)));
    }
    let baseline_flush = baseline.flush().expect("stream ends mid-window");

    // Seeded cut somewhere mid-stream, as in the stateless scenario.
    let plan = FaultPlan::new(seed);
    let at_frame = plan.jitter(41, 20, 180);
    let down_for = plan.jitter(42, 2, 6);
    let plan = plan.with_event(FaultEvent::CutLink { link_id: LINK, at_frame, down_for });

    let sink_queue: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let chaos = Arc::new(ChaosLink::new(Arc::new(QueueLink::new(sink_queue.clone())), &plan, LINK));
    let stats = Arc::new(RecoveryStats::new());
    let link = LinkBuilder::new(LINK)
        .transport(chaos)
        .reliable(ReconnectPolicy::fast(seed), 1 << 20, stats.clone())
        .build();

    // Sink: dedup through the shared ingress, aggregate delivered frames,
    // and on every barrier capture (window state + dedup cursors) as one
    // consistent cut — exactly what the runtime's alignment layer does.
    let store = MemorySnapshotStore::new(32);
    let ingress = ReliableIngress::new(AckMode::Immediate);
    let mut window = TumblingWindow::new(WIDTH_US);
    let mut closed: Vec<WindowAggregate> = Vec::new();
    let drain = |window: &mut TumblingWindow, closed: &mut Vec<WindowAggregate>| {
        while let Some(f) = sink_queue.pop() {
            if f.control == Some(ControlKind::Barrier) {
                let snap = CheckpointSnapshot {
                    checkpoint_id: f.base_seq,
                    states: vec![InstanceState::capture("win", 0, window)],
                    cursors: ingress.cursors(),
                };
                store.put(&snap).expect("memory store never fails");
                continue;
            }
            if let IngressVerdict::Deliver { skip: 0 } =
                ingress.admit(f.link_id, f.base_seq, f.len() as u32)
            {
                closed.extend(window.observe(event_time(f.base_seq), observation(f.base_seq)));
            }
            if let Some((_, watermark)) = ingress.stage_ack(f.link_id) {
                link.ack(watermark);
            }
        }
    };
    for i in 0..TOTAL {
        let payload = i.to_le_bytes();
        let (encoded, count) = batch_of(&[&payload]);
        link.send_batch(i, encoded, count, 0, 0)
            .expect("link must recover within its retry budget");
        // A barrier behind every 16-frame stride (skipping the final one
        // so the last cut is genuinely mid-stream). A barrier issued
        // while the link is down is simply lost — that round is
        // abandoned, never replayed — so sends must tolerate Err.
        if i % BARRIER_EVERY == BARRIER_EVERY - 1 && i + BARRIER_EVERY < TOTAL {
            let _ = link.barrier(i / BARRIER_EVERY + 1);
        }
        if i % 5 == 4 {
            drain(&mut window, &mut closed);
        }
    }
    drain(&mut window, &mut closed);

    // The cut run's aggregates are byte-identical to the uncut run's.
    let cut_flush = window.flush().expect("stream ends mid-window");
    assert!(
        aggs_identical(&closed, &baseline_closed),
        "seed {seed}: closed windows diverge from the uncut run"
    );
    assert!(
        aggs_identical(&[cut_flush], &[baseline_flush.clone()]),
        "seed {seed}: the final open window diverges from the uncut run"
    );
    let snap = stats.snapshot();
    assert!(snap.retransmits > 0, "seed {seed}: the cut must force replay");
    assert!(snap.reconnects >= 1, "seed {seed}: the link must have reconnected");
    assert!(ingress.duplicates_dropped() > 0, "seed {seed}: replay implies duplicates");

    // Checkpoints were taken, and at least one sliced a window mid-fill.
    let ids = store.list().expect("memory store never fails");
    assert!(!ids.is_empty(), "seed {seed}: no checkpoint survived the outage");
    let mid_window = ids.iter().any(|&id| {
        let snap = store.get(id).unwrap().expect("listed id present");
        let mut probe = TumblingWindow::new(1);
        snap.state_for("win", 0).expect("window contributed").restore_into(&mut probe).unwrap();
        probe.flush().is_some_and(|agg| agg.count % FRAMES_PER_WINDOW != 0)
    });
    assert!(mid_window, "seed {seed}: every checkpoint landed exactly on a window boundary");

    // Exactly-once stateful recovery: restore the newest cut into a fresh
    // aggregator + dedup filter, then replay the whole stream from zero.
    // The restored cursors absorb everything the restored state already
    // contains; the tail completes the uncut aggregates bit for bit.
    let snap = store.latest().unwrap().expect("at least one checkpoint stored");
    let cursor = snap
        .cursors
        .iter()
        .find_map(|&(l, c)| (l == LINK).then_some(c))
        .expect("cursor for the data link");
    assert!(cursor >= 1 && cursor < TOTAL, "seed {seed}: cut must be mid-stream, got {cursor}");
    let mut restored = TumblingWindow::new(1);
    snap.state_for("win", 0).unwrap().restore_into(&mut restored).unwrap();
    let ingress2 = ReliableIngress::new(AckMode::Immediate);
    ingress2.restore_cursors(&snap.cursors);

    let replay_queue: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let replay_link = LinkBuilder::new(LINK).in_process(replay_queue.clone()).build();
    let mut resumed: Vec<WindowAggregate> = Vec::new();
    for i in 0..TOTAL {
        let payload = i.to_le_bytes();
        let (encoded, count) = batch_of(&[&payload]);
        replay_link.send_batch(i, encoded, count, 0, 0).expect("plain in-process link");
        while let Some(f) = replay_queue.pop() {
            if let IngressVerdict::Deliver { skip: 0 } =
                ingress2.admit(f.link_id, f.base_seq, f.len() as u32)
            {
                resumed.extend(restored.observe(event_time(f.base_seq), observation(f.base_seq)));
            }
        }
    }
    assert_eq!(
        ingress2.duplicates_dropped(),
        cursor,
        "seed {seed}: exactly the pre-cut frames are duplicates, nothing else"
    );
    // Windows closing after the cut come out bit-identical to the uncut
    // run: the restored window's open window is the one holding frame
    // `cursor - 1`, and every closed aggregate from there on matches.
    let first = ((cursor - 1) / FRAMES_PER_WINDOW) as usize;
    assert!(
        aggs_identical(&resumed, &baseline_closed[first..]),
        "seed {seed}: post-restore aggregates diverge from the uncut run"
    );
    let resumed_flush = restored.flush().expect("stream ends mid-window");
    assert!(
        aggs_identical(&[resumed_flush], &[baseline_flush]),
        "seed {seed}: post-restore final window diverges from the uncut run"
    );
}

/// A replayable source whose read cursor is its checkpointable state:
/// restore rewinds it to the cut and it re-emits from there. The
/// periodic `Idle` breath paces emission so checkpoint rounds land while
/// the stream is genuinely mid-flight.
struct CursorSource {
    next: u64,
    total: u64,
    since_breath: u32,
}

impl OperatorState for CursorSource {
    fn state_kind(&self) -> &'static str {
        "cursor-source"
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.next.to_le_bytes());
    }

    fn restore_state(&mut self, version: u32, bytes: &[u8]) -> Result<(), StateError> {
        if version != 1 {
            return Err(StateError::VersionMismatch { supported: 1, found: version });
        }
        let mut r = StateReader::new(bytes);
        self.next = r.u64()?;
        r.finish()?;
        Ok(())
    }
}

impl StreamSource for CursorSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= self.total {
            return SourceStatus::Exhausted;
        }
        if self.since_breath >= 64 {
            self.since_breath = 0;
            return SourceStatus::Idle;
        }
        self.since_breath += 1;
        let mut p = StreamPacket::new();
        p.push_field("i", FieldValue::U64(self.next));
        self.next += 1;
        ctx.emit(&p).unwrap();
        SourceStatus::Emitted(1)
    }

    fn state(&mut self) -> Option<&mut dyn OperatorState> {
        Some(self)
    }
}

/// A windowed-aggregation sink exposing its window as checkpoint state;
/// closed aggregates (and the final flush at close) land in a shared
/// list for the test to compare.
struct WindowSink {
    window: TumblingWindow,
    closed: Arc<Mutex<Vec<WindowAggregate>>>,
}

impl StreamProcessor for WindowSink {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        let i = p.get("i").unwrap().as_u64().unwrap();
        if let Some(agg) = self.window.observe(event_time(i), observation(i)) {
            self.closed.lock().unwrap().push(agg);
        }
    }

    fn close(&mut self, _ctx: &mut OperatorContext) {
        if let Some(agg) = self.window.flush() {
            self.closed.lock().unwrap().push(agg);
        }
    }

    fn state(&mut self) -> Option<&mut dyn OperatorState> {
        Some(&mut self.window)
    }
}

/// Kill-and-resume through the real runtime: a checkpointed windowed job
/// is stopped mid-stream; a second job over the same file-backed store
/// restores the newest cut — the source rewinds its cursor, the sink
/// rewinds its half-filled window — and the resumed run's aggregates
/// are byte-identical to an uncut run of the whole stream. Runs under
/// both reactor flavours via `NEPTUNE_NET_REACTOR` in CI.
#[test]
fn stateful_job_killed_mid_stream_resumes_from_file_checkpoint() {
    let seed = chaos_seed();
    const TOTAL: u64 = 20_000;

    // The uncut baseline.
    let mut baseline = TumblingWindow::new(WIDTH_US);
    let mut baseline_closed = Vec::new();
    for i in 0..TOTAL {
        baseline_closed.extend(baseline.observe(event_time(i), observation(i)));
    }
    let baseline_flush = baseline.flush().expect("stream ends mid-window");

    let dir =
        std::env::temp_dir().join(format!("neptune-chaos-ckpt-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || RuntimeConfig {
        checkpoint: CheckpointConfig {
            interval: Duration::from_millis(2),
            ..CheckpointConfig::file_backed(&dir)
        },
        ..Default::default()
    };
    let graph = |name: &str, closed: &Arc<Mutex<Vec<WindowAggregate>>>| {
        let closed = closed.clone();
        GraphBuilder::new(name)
            .source("src", move || CursorSource { next: 0, total: TOTAL, since_breath: 0 })
            .processor("win", move || WindowSink {
                window: TumblingWindow::new(WIDTH_US),
                closed: closed.clone(),
            })
            .link("src", "win", PartitioningScheme::Shuffle)
            .build()
            .unwrap()
    };

    // Run 1: start the full stream, kill the job once two cuts completed.
    // The paced source needs far longer to finish than the coordinator
    // needs two rounds, so the kill lands mid-stream.
    let run1_closed = Arc::new(Mutex::new(Vec::new()));
    let job = LocalRuntime::new(config()).submit(graph("ckpt-kill", &run1_closed)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let stats = job.checkpoint_stats().expect("checkpointing enabled");
        if stats.completed >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "seed {seed}: no checkpoint completed before the kill"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(job.latest_checkpoint().is_some(), "completed rounds are readable");
    job.stop();

    // The newest cut on disk names the source's resume position; its
    // window blob holds exactly the packets before that position.
    let snap = FileSnapshotStore::new(&dir, 3)
        .latest()
        .expect("store readable")
        .expect("completed checkpoints on disk");
    let blob = &snap.state_for("src", 0).expect("source contributed state").blob;
    let resume_at = u64::from_le_bytes(blob[..8].try_into().unwrap());
    assert!(resume_at >= 1, "seed {seed}: the cut captured an empty stream");
    assert!(resume_at < TOTAL, "seed {seed}: the kill must land mid-stream, got {resume_at}");

    // Run 2: same graph, same store directory. The runtime restores the
    // newest cut before open(): the source resumes at `resume_at`, the
    // sink's window resumes half-filled, and the stream runs to the end.
    let run2_closed = Arc::new(Mutex::new(Vec::new()));
    let job2 = LocalRuntime::new(config()).submit(graph("ckpt-resume", &run2_closed)).unwrap();
    assert!(job2.await_sources(Duration::from_secs(120)), "seed {seed}: resumed source stalled");
    assert!(job2.settle(Duration::from_secs(60)), "seed {seed}: resumed job never settled");
    job2.stop(); // close() flushes the final open window into the list

    // The resumed run closes exactly the windows from the cut onward —
    // the one holding packet `resume_at - 1` and everything after —
    // byte-identical to the uncut baseline, final flush included.
    let got = run2_closed.lock().unwrap();
    let first = ((resume_at - 1) / FRAMES_PER_WINDOW) as usize;
    let mut want: Vec<WindowAggregate> = baseline_closed[first..].to_vec();
    want.push(baseline_flush);
    assert!(
        aggs_identical(&got, &want),
        "seed {seed}: resumed aggregates diverge from the uncut run \
         (resumed {} windows from position {resume_at}, expected {})",
        got.len(),
        want.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
