//! Selective compression end to end (§III-B5).
//!
//! The compression decision must be invisible to correctness (identical
//! delivery under every mode) while changing the bytes on the wire in the
//! direction the paper reports: low-entropy sensor batches shrink, random
//! batches do not.

use neptune::core::config::{CompressionMode, LinkOptions, TransportMode};
use neptune::data::manufacturing::ManufacturingSource;
use neptune::data::RandomSource;
use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Counter(Arc<AtomicU64>);
impl StreamProcessor for Counter {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run a single-link job with the given source factory and compression
/// mode; return (packets delivered, wire bytes).
fn run_with_mode<S, F>(source: F, mode: CompressionMode, n: u64) -> (u64, u64)
where
    S: StreamSource + 'static,
    F: Fn() -> S + Send + Sync + 'static,
{
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("compression")
        .source("src", source)
        .processor("sink", move || Counter(s2.clone()))
        .link_with(
            "src",
            "sink",
            PartitioningScheme::Shuffle,
            LinkOptions::default().compression(mode),
        )
        .build()
        .unwrap();
    // TCP so the compressed frames genuinely traverse the encode/decode
    // path (in-process transports skip wire encoding).
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 64 * 1024,
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(120)), "source timed out");
    let metrics = job.stop();
    assert_eq!(metrics.total_seq_violations(), 0);
    assert_eq!(seen.load(Ordering::Relaxed), n, "delivery must be mode-independent");
    (seen.load(Ordering::Relaxed), metrics.operator("src").bytes_out)
}

const N: u64 = 8_000;

#[test]
fn sensor_stream_shrinks_under_selective_compression() {
    let (_, raw) = run_with_mode(|| ManufacturingSource::new(11, N), CompressionMode::Disabled, N);
    let (_, selective) =
        run_with_mode(|| ManufacturingSource::new(11, N), CompressionMode::Threshold(5.0), N);
    assert!(selective < raw / 2, "low-entropy stream should compress >2x: {raw} -> {selective}");
}

#[test]
fn random_stream_does_not_shrink() {
    let (_, raw) = run_with_mode(|| RandomSource::new(256, N, 3), CompressionMode::Disabled, N);
    let (_, selective) =
        run_with_mode(|| RandomSource::new(256, N, 3), CompressionMode::Threshold(5.0), N);
    // Selective mode must skip compression for high-entropy payloads; wire
    // bytes stay close (timer flushes split batches slightly differently
    // between runs, so allow some slack — a compression win would show up
    // as a 2x+ difference, not 10%).
    let ratio = selective as f64 / raw as f64;
    assert!(
        (0.90..=1.10).contains(&ratio),
        "selective mode should not touch random data: {raw} vs {selective}"
    );
}

#[test]
fn always_mode_pays_for_random_data_but_stays_correct() {
    let (count, bytes) = run_with_mode(|| RandomSource::new(256, N, 7), CompressionMode::Always, N);
    assert_eq!(count, N);
    // The expansion guard keeps wire bytes near raw even in Always mode.
    let (_, raw) = run_with_mode(|| RandomSource::new(256, N, 7), CompressionMode::Disabled, N);
    assert!(bytes as f64 <= raw as f64 * 1.05, "guard failed: {raw} -> {bytes}");
}

#[test]
fn per_link_modes_are_independent() {
    // One job, two links: a compressible link and a raw link, verifying
    // the paper's point that compression "should be enabled and configured
    // for each stream individually even within the same stream processing
    // job".
    struct Fanout;
    impl StreamProcessor for Fanout {
        fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
            let _ = ctx.emit(p);
        }
    }
    let a = Arc::new(AtomicU64::new(0));
    let b = Arc::new(AtomicU64::new(0));
    let (a2, b2) = (a.clone(), b.clone());
    let graph = GraphBuilder::new("two-links")
        .source("src", || ManufacturingSource::new(5, 4_000))
        .processor("mid", || Fanout)
        .processor("sink_a", move || Counter(a2.clone()))
        .processor("sink_b", move || Counter(b2.clone()))
        .link_with(
            "src",
            "mid",
            PartitioningScheme::Shuffle,
            LinkOptions::default().compression(CompressionMode::Threshold(5.0)),
        )
        .link_with(
            "mid",
            "sink_a",
            PartitioningScheme::Shuffle,
            LinkOptions::default().compression(CompressionMode::Disabled),
        )
        .link_with(
            "mid",
            "sink_b",
            PartitioningScheme::Shuffle,
            LinkOptions::default().compression(CompressionMode::Threshold(5.0)),
        )
        .build()
        .unwrap();
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 64 * 1024,
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    let metrics = job.stop();
    assert_eq!(a.load(Ordering::Relaxed), 4_000);
    assert_eq!(b.load(Ordering::Relaxed), 4_000);
    assert_eq!(metrics.total_seq_violations(), 0);
}
