//! JSON descriptor jobs end to end: descriptors written to disk, loaded,
//! executed, and verified — the full §III-A7 path a deployment would use.

use neptune::core::descriptor::{parse_descriptor, OperatorRegistry};
use neptune::core::json::JsonValue;
use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct ParamSource {
    remaining: u64,
    value: u64,
}
impl StreamSource for ParamSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.remaining -= 1;
        let mut p = StreamPacket::new();
        p.push_field("v", FieldValue::U64(self.value));
        match ctx.emit(&p) {
            Ok(()) => SourceStatus::Emitted(1),
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Double;
impl StreamProcessor for Double {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let v = p.get("v").and_then(|x| x.as_u64()).unwrap_or(0);
        let mut out = StreamPacket::new();
        out.push_field("v", FieldValue::U64(v * 2));
        let _ = ctx.emit(&out);
    }
}

struct Sum(Arc<AtomicU64>);
impl StreamProcessor for Sum {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(p.get("v").and_then(|x| x.as_u64()).unwrap_or(0), Ordering::Relaxed);
    }
}

fn registry(total: Arc<AtomicU64>) -> OperatorRegistry {
    let mut r = OperatorRegistry::new();
    r.register_source("param-source", |params: &JsonValue| ParamSource {
        remaining: params.get("count").and_then(JsonValue::as_u64).unwrap_or(10),
        value: params.get("value").and_then(JsonValue::as_u64).unwrap_or(1),
    });
    r.register_processor("double", |_| Double);
    r.register_processor("sum", move |_| Sum(total.clone()));
    r
}

#[test]
fn descriptor_file_roundtrip_and_execution() {
    let descriptor = r#"{
        "name": "doubling",
        "operators": [
            {"name": "src", "kind": "source", "factory": "param-source",
             "params": {"count": 1000, "value": 3}},
            {"name": "double", "kind": "processor", "factory": "double", "parallelism": 2},
            {"name": "sum", "kind": "processor", "factory": "sum"}
        ],
        "links": [
            {"from": "src", "to": "double"},
            {"from": "double", "to": "sum", "partitioning": {"scheme": "global"}}
        ],
        "config": {"buffer_bytes": 8192, "flush_ms": 5}
    }"#;

    // Write to disk and load back — the descriptor-file workflow.
    let dir = std::env::temp_dir().join("neptune-descriptor-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doubling.json");
    std::fs::write(&path, descriptor).unwrap();
    let loaded = std::fs::read_to_string(&path).unwrap();

    let total = Arc::new(AtomicU64::new(0));
    let (graph, config) = parse_descriptor(&loaded, &registry(total.clone())).unwrap();
    assert_eq!(graph.name(), "doubling");
    assert_eq!(config.buffer_bytes, 8192);

    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    let metrics = job.stop();
    assert_eq!(total.load(Ordering::Relaxed), 1000 * 3 * 2);
    assert_eq!(metrics.operator("src").packets_out, 1000);
    assert_eq!(metrics.total_seq_violations(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn parallel_sources_from_descriptor() {
    let descriptor = r#"{
        "name": "multi-src",
        "operators": [
            {"name": "src", "kind": "source", "factory": "param-source",
             "parallelism": 3, "params": {"count": 500, "value": 1}},
            {"name": "sum", "kind": "processor", "factory": "sum"}
        ],
        "links": [{"from": "src", "to": "sum"}]
    }"#;
    let total = Arc::new(AtomicU64::new(0));
    let (graph, config) = parse_descriptor(descriptor, &registry(total.clone())).unwrap();
    assert_eq!(graph.operator("src").unwrap().parallelism, 3);
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    job.stop();
    // Three instances x 500 packets x value 1.
    assert_eq!(total.load(Ordering::Relaxed), 1500);
}

#[test]
fn bad_descriptors_fail_cleanly() {
    let total = Arc::new(AtomicU64::new(0));
    let reg = registry(total);
    // Structural, factory, and graph-level failures must all surface as
    // errors, never panics.
    let cases = [
        "{",                    // invalid json
        r#"{"operators": []}"#, // missing name
        r#"{"name": "x", "operators": [{"name": "s", "kind": "source", "factory": "nope"}]}"#,
        r#"{"name": "x", "operators": [
            {"name": "s", "kind": "source", "factory": "param-source"},
            {"name": "p", "kind": "processor", "factory": "double"}
           ], "links": [{"from": "p", "to": "p"}]}"#,
    ];
    for c in cases {
        assert!(parse_descriptor(c, &reg).is_err(), "should reject: {c}");
    }
}
