//! End-to-end relay integration: the Fig. 1 topology exercised across
//! transports, resource counts, parallelism, and scheduling modes, with
//! the paper's correctness contract asserted throughout: *"Our proposed
//! solution should not result in dropped or corrupted stream packets.
//! Furthermore, packets must be processed in-order and exactly-once."*

use neptune::core::config::TransportMode;
use neptune::prelude::*;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct SeqSource {
    remaining: u64,
    next: u64,
    payload: usize,
}

impl StreamSource for SeqSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("seq", FieldValue::U64(self.next))
            .push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("pad", FieldValue::Bytes(vec![0xAB; self.payload]));
        match ctx.emit(&p) {
            Ok(()) => {
                self.next += 1;
                self.remaining -= 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

#[derive(Default)]
struct Audit {
    seen: AtomicU64,
    sum: AtomicU64,
    corrupt: AtomicU64,
    max_latency_us: AtomicU64,
}

struct AuditSink {
    audit: Arc<Audit>,
    payload: usize,
}
impl StreamProcessor for AuditSink {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.audit.seen.fetch_add(1, Ordering::Relaxed);
        match p.get("seq").and_then(|v| v.as_u64()) {
            Some(seq) => {
                self.audit.sum.fetch_add(seq, Ordering::Relaxed);
            }
            None => {
                self.audit.corrupt.fetch_add(1, Ordering::Relaxed);
            }
        }
        match p.get("pad").and_then(|v| v.as_bytes()) {
            Some(pad) if pad.len() == self.payload && pad.iter().all(|&b| b == 0xAB) => {}
            _ => {
                self.audit.corrupt.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(ts) = p.get("ts").and_then(|v| v.as_timestamp()) {
            let lat = now_micros().saturating_sub(ts);
            self.audit.max_latency_us.fetch_max(lat, Ordering::Relaxed);
        }
    }
}

fn run_relay(
    config: RuntimeConfig,
    n: u64,
    payload: usize,
    relay_par: usize,
) -> (Arc<Audit>, neptune::core::JobMetrics) {
    let audit = Arc::new(Audit::default());
    let sink_audit = audit.clone();
    let graph = GraphBuilder::new("e2e-relay")
        .source("sender", move || SeqSource { remaining: n, next: 0, payload })
        .processor_n("relay", relay_par, || Forward)
        .processor("receiver", move || AuditSink { audit: sink_audit.clone(), payload })
        .link("sender", "relay", PartitioningScheme::Shuffle)
        .link("relay", "receiver", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    assert!(job.await_sources(Duration::from_secs(120)), "source timed out");
    let metrics = job.stop();
    (audit, metrics)
}

fn assert_exact(audit: &Audit, metrics: &neptune::core::JobMetrics, n: u64) {
    assert_eq!(audit.seen.load(Ordering::Relaxed), n, "exactly-once count");
    assert_eq!(
        audit.sum.load(Ordering::Relaxed),
        n * (n - 1) / 2,
        "payload integrity (sum of sequence numbers)"
    );
    assert_eq!(audit.corrupt.load(Ordering::Relaxed), 0, "no corrupted packets");
    assert_eq!(metrics.total_seq_violations(), 0, "in-order, exactly-once framing");
}

#[test]
fn in_process_single_resource() {
    let (audit, metrics) = run_relay(RuntimeConfig::default(), 20_000, 50, 1);
    assert_exact(&audit, &metrics, 20_000);
}

#[test]
fn in_process_multi_resource_parallel_relay() {
    let config = RuntimeConfig { resources: 3, buffer_bytes: 8 * 1024, ..Default::default() };
    let (audit, metrics) = run_relay(config, 30_000, 100, 4);
    assert_exact(&audit, &metrics, 30_000);
}

#[test]
fn tcp_transport_full_path() {
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 16 * 1024,
        ..Default::default()
    };
    let (audit, metrics) = run_relay(config, 20_000, 200, 1);
    assert_exact(&audit, &metrics, 20_000);
    // The relay crossed real sockets: wire bytes were accounted.
    assert!(metrics.operator("sender").bytes_out > 20_000 * 200);
}

#[test]
fn tcp_transport_parallel_stages() {
    let config = RuntimeConfig {
        resources: 3,
        transport: TransportMode::Tcp,
        buffer_bytes: 4 * 1024,
        ..Default::default()
    };
    let (audit, metrics) = run_relay(config, 15_000, 64, 3);
    assert_exact(&audit, &metrics, 15_000);
}

#[test]
fn per_message_mode_still_exact() {
    // The Table-I ablation configuration must preserve correctness.
    let config = RuntimeConfig { batched_scheduling: false, ..Default::default() };
    let (audit, metrics) = run_relay(config, 3_000, 50, 1);
    assert_exact(&audit, &metrics, 3_000);
    assert_eq!(metrics.operator("relay").frames_in, 3_000, "one frame per packet");
}

#[test]
fn payload_sizes_sweep() {
    // The Fig. 2 size range: everything from 50 B to 10 KB must flow.
    for payload in [50usize, 400, 10 * 1024] {
        let n = if payload >= 10 * 1024 { 2_000 } else { 10_000 };
        let config = RuntimeConfig { buffer_bytes: 64 * 1024, ..Default::default() };
        let (audit, metrics) = run_relay(config, n, payload, 1);
        assert_exact(&audit, &metrics, n);
    }
}

#[test]
fn tcp_high_volume_teardown_loses_nothing() {
    // Regression test: job teardown used to close queues while frames were
    // still in flight inside TCP sender queues / kernel sockets, dropping
    // the tail of high-volume streams. settle() must wait for
    // frames_out == frames_in across the job.
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 64 * 1024,
        ..Default::default()
    };
    let (audit, metrics) = run_relay(config, 60_000, 256, 1);
    assert_exact(&audit, &metrics, 60_000);
}

#[test]
fn flush_timer_bounds_latency_of_trickle() {
    // A slow source with huge buffers: only the flush timer moves data, so
    // observed end-to-end latency must stay near the timer bound, not the
    // buffer-fill time (which would be ~forever).
    struct Trickle {
        left: u32,
    }
    impl StreamSource for Trickle {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.left == 0 {
                return SourceStatus::Exhausted;
            }
            self.left -= 1;
            let mut p = StreamPacket::new();
            p.push_field("ts", FieldValue::Timestamp(now_micros()));
            ctx.emit(&p).unwrap();
            std::thread::sleep(Duration::from_millis(3));
            SourceStatus::Emitted(1)
        }
    }
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let sink = latencies.clone();
    struct LatSink(Arc<Mutex<Vec<u64>>>);
    impl StreamProcessor for LatSink {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            if let Some(ts) = p.get("ts").and_then(|v| v.as_timestamp()) {
                self.0.lock().push(now_micros().saturating_sub(ts));
            }
        }
    }
    let graph = GraphBuilder::new("trickle")
        .source("src", || Trickle { left: 50 })
        .processor("sink", move || LatSink(sink.clone()))
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        buffer_bytes: 16 << 20,
        flush_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    job.stop();
    let lats = latencies.lock();
    assert_eq!(lats.len(), 50);
    // Soft upper bound: flush timer (10ms) + scheduling slack. The paper
    // promises a "soft upper bound on expected end-to-end latency".
    let p95 = {
        let mut v = lats.clone();
        v.sort_unstable();
        v[(v.len() * 95 / 100).min(v.len() - 1)]
    };
    assert!(p95 < 200_000, "p95 latency {}us exceeds the flush-timer regime", p95);
}
