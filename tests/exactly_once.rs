//! Exactly-once / in-order delivery across a matrix of configurations —
//! the paper's §I-B correctness contract, stress-tested.
//!
//! Every test pushes a known arithmetic series through a topology and
//! checks count + sum (loss or duplication perturbs the sum even when the
//! count accidentally matches), plus the runtime's own per-channel
//! sequence validation.

use neptune::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Numbers {
    next: u64,
    end: u64,
}
impl StreamSource for Numbers {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= self.end {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.next));
        match ctx.emit(&p) {
            Ok(()) => {
                self.next += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

#[derive(Default)]
struct Tally {
    count: AtomicU64,
    sum: AtomicU64,
}
struct TallySink(Arc<Tally>);
impl StreamProcessor for TallySink {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(p.get("n").unwrap().as_u64().unwrap(), Ordering::Relaxed);
    }
}

fn run_chain(config: RuntimeConfig, n: u64, stages: usize, parallelism: usize) -> Arc<Tally> {
    let tally = Arc::new(Tally::default());
    let sink_tally = tally.clone();
    let mut builder = GraphBuilder::new("chain").source("src", move || Numbers { next: 0, end: n });
    let mut prev = "src".to_string();
    for s in 0..stages {
        let name = format!("stage{s}");
        builder = builder.processor_n(&name, parallelism, || Forward).link(
            prev.clone(),
            name.clone(),
            PartitioningScheme::Shuffle,
        );
        prev = name;
    }
    let graph = builder
        .processor("sink", move || TallySink(sink_tally.clone()))
        .link(prev, "sink", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    assert!(job.await_sources(Duration::from_secs(120)), "source timed out");
    let metrics = job.stop();
    assert_eq!(metrics.total_seq_violations(), 0, "sequence validation failed");
    tally
}

fn expect_series(tally: &Tally, n: u64) {
    assert_eq!(tally.count.load(Ordering::Relaxed), n);
    assert_eq!(tally.sum.load(Ordering::Relaxed), n * (n - 1) / 2);
}

#[test]
fn buffer_size_matrix() {
    for buffer in [1usize, 64, 512, 4096, 1 << 20] {
        let config = RuntimeConfig { buffer_bytes: buffer, ..Default::default() };
        let tally = run_chain(config, 5_000, 1, 1);
        expect_series(&tally, 5_000);
    }
}

#[test]
fn deep_chain() {
    let config = RuntimeConfig { buffer_bytes: 2048, ..Default::default() };
    let tally = run_chain(config, 5_000, 6, 1);
    expect_series(&tally, 5_000);
}

#[test]
fn wide_stages() {
    let config = RuntimeConfig { buffer_bytes: 1024, ..Default::default() };
    let tally = run_chain(config, 10_000, 2, 6);
    expect_series(&tally, 10_000);
}

#[test]
fn deep_and_wide_across_resources() {
    let config = RuntimeConfig { buffer_bytes: 1024, resources: 4, ..Default::default() };
    let tally = run_chain(config, 8_000, 4, 3);
    expect_series(&tally, 8_000);
}

#[test]
fn tiny_flush_interval() {
    let config = RuntimeConfig {
        flush_interval: Duration::from_micros(500),
        buffer_bytes: 1 << 20, // timer does all the flushing
        ..Default::default()
    };
    let tally = run_chain(config, 5_000, 2, 2);
    expect_series(&tally, 5_000);
}

#[test]
fn multiple_sources_fan_in() {
    // Several source instances into one keyed stage: per-key ordering must
    // hold per source (each source's packets arrive in emission order).
    let order_violations = Arc::new(AtomicU64::new(0));
    let per_source_last: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let total = Arc::new(AtomicU64::new(0));

    struct TaggedSource {
        tag: Arc<AtomicU64>,
        id: Option<u64>,
        next: u64,
        end: u64,
    }
    impl StreamSource for TaggedSource {
        fn open(&mut self, _ctx: &mut OperatorContext) {
            self.id = Some(self.tag.fetch_add(1, Ordering::Relaxed));
        }
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.next >= self.end {
                return SourceStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("src", FieldValue::U64(self.id.expect("opened")))
                .push_field("n", FieldValue::U64(self.next));
            match ctx.emit(&p) {
                Ok(()) => {
                    self.next += 1;
                    SourceStatus::Emitted(1)
                }
                Err(_) => SourceStatus::Exhausted,
            }
        }
    }
    struct OrderSink {
        last: Arc<Mutex<HashMap<u64, u64>>>,
        violations: Arc<AtomicU64>,
        total: Arc<AtomicU64>,
    }
    impl StreamProcessor for OrderSink {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            let src = p.get("src").unwrap().as_u64().unwrap();
            let n = p.get("n").unwrap().as_u64().unwrap();
            let mut last = self.last.lock();
            if let Some(&prev) = last.get(&src) {
                if n != prev + 1 {
                    self.violations.fetch_add(1, Ordering::Relaxed);
                }
            } else if n != 0 {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            last.insert(src, n);
            self.total.fetch_add(1, Ordering::Relaxed);
        }
    }

    let tag = Arc::new(AtomicU64::new(0));
    let (l2, v2, t2) = (per_source_last.clone(), order_violations.clone(), total.clone());
    let graph = GraphBuilder::new("fan-in")
        .source_n("sources", 4, move || TaggedSource {
            tag: tag.clone(),
            id: None,
            next: 0,
            end: 2_500,
        })
        // Global partitioning: one sink instance sees all packets, so
        // per-source FIFO order is observable end to end.
        .processor("sink", move || OrderSink {
            last: l2.clone(),
            violations: v2.clone(),
            total: t2.clone(),
        })
        .link("sources", "sink", PartitioningScheme::Global)
        .build()
        .unwrap();
    let job = LocalRuntime::new(RuntimeConfig { buffer_bytes: 512, ..Default::default() })
        .submit(graph)
        .unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    let metrics = job.stop();
    assert_eq!(total.load(Ordering::Relaxed), 10_000);
    assert_eq!(order_violations.load(Ordering::Relaxed), 0, "per-source FIFO order violated");
    assert_eq!(metrics.total_seq_violations(), 0);
}

#[test]
fn keyed_counts_are_exact() {
    // Fields partitioning with parallel counting must produce exact
    // per-key counts (each key counted at exactly one instance).
    let counts: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    struct KeySource {
        next: u64,
        end: u64,
    }
    impl StreamSource for KeySource {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.next >= self.end {
                return SourceStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("key", FieldValue::U64(self.next % 23));
            match ctx.emit(&p) {
                Ok(()) => {
                    self.next += 1;
                    SourceStatus::Emitted(1)
                }
                Err(_) => SourceStatus::Exhausted,
            }
        }
    }
    struct KeyCounter {
        local: HashMap<u64, u64>,
        global: Arc<Mutex<HashMap<u64, u64>>>,
    }
    impl StreamProcessor for KeyCounter {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            let k = p.get("key").unwrap().as_u64().unwrap();
            *self.local.entry(k).or_insert(0) += 1;
        }
        fn close(&mut self, _ctx: &mut OperatorContext) {
            let mut g = self.global.lock();
            for (k, c) in self.local.drain() {
                *g.entry(k).or_insert(0) += c;
            }
        }
    }
    let g2 = counts.clone();
    let graph = GraphBuilder::new("keyed-count")
        .source("src", || KeySource { next: 0, end: 23_000 })
        .processor_n("count", 5, move || KeyCounter { local: HashMap::new(), global: g2.clone() })
        .link("src", "count", PartitioningScheme::by_field("key"))
        .build()
        .unwrap();
    let job = LocalRuntime::new(RuntimeConfig { buffer_bytes: 4096, ..Default::default() })
        .submit(graph)
        .unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    job.stop();
    let counts = counts.lock();
    assert_eq!(counts.len(), 23);
    for (k, c) in counts.iter() {
        assert_eq!(*c, 1000, "key {k} has count {c}");
    }
}
