//! The facade must re-export the link stack: `neptune::link` is the
//! path downstream code builds links through, so this test fails to
//! *compile* if the re-export disappears — and fails to run if the
//! re-exported builder stops producing a working link.

use bytes::Bytes;
use neptune::link::{LinkBuilder, TraceTagger, TransportError};
use neptune::net::frame::Frame;
use neptune::net::watermark::{WatermarkConfig, WatermarkQueue};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn facade_reexports_a_working_link_stack() {
    let q: Arc<WatermarkQueue<Frame>> =
        Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
    let link = LinkBuilder::new(9).in_process(q.clone()).tracing(TraceTagger::every_n(1)).build();

    let payload = b"via the facade";
    let mut encoded = Vec::new();
    encoded.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    encoded.extend_from_slice(payload);
    link.send_batch(0, Bytes::from(encoded), 1, 0, 0).expect("send");

    let f = q.pop_timeout(Duration::from_secs(5)).expect("frame delivered");
    assert_eq!(f.link_id, 9);
    assert_eq!(f.trace, Some(neptune::link::tag::mint_every_n_trace_id(9, 0)));
    assert_eq!(f.messages.iter().next().unwrap(), payload.as_slice());

    // The shared error taxonomy is part of the facade contract too.
    q.close();
    let mut enc = Vec::new();
    enc.extend_from_slice(&4u32.to_le_bytes());
    enc.extend_from_slice(b"late");
    let err = link.send_batch(1, Bytes::from(enc), 1, 0, 0).expect_err("closed sink");
    assert!(matches!(err, TransportError::Closed));
}
