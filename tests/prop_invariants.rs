//! Property-based tests over the NEPTUNE stack's core invariants.
//!
//! * Arbitrary packets survive codec round-trips (and batched framing).
//! * Random DAG shapes either build or fail validation — never panic.
//! * End-to-end delivery is exact for random (small) configurations.
//! * Partitioners always route in range; keyed routing is a pure function
//!   of the key fields.

use neptune::core::codec::PacketCodec;
use neptune::core::partition::{Partitioner, Route};
use neptune::net::frame::{decode_frame, encode_frame};
use neptune::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        any::<i64>().prop_map(FieldValue::I64),
        any::<u64>().prop_map(FieldValue::U64),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(FieldValue::F64),
        any::<bool>().prop_map(FieldValue::Bool),
        "[a-zA-Z0-9 _:/,.-]{0,40}".prop_map(FieldValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(FieldValue::Bytes),
        any::<u64>().prop_map(FieldValue::Timestamp),
    ]
}

fn arb_packet() -> impl Strategy<Value = StreamPacket> {
    proptest::collection::vec(("[a-z][a-z0-9_]{0,12}", arb_field_value()), 0..12).prop_map(
        |fields| {
            let mut p = StreamPacket::new();
            for (name, value) in fields {
                p.push_field(name, value);
            }
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_arbitrary_packets(packet in arb_packet()) {
        let mut codec = PacketCodec::new();
        let bytes = codec.encode(&packet).unwrap();
        let decoded = codec.decode(&bytes).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn codec_reuse_path_equals_fresh_path(
        packets in proptest::collection::vec(arb_packet(), 1..20)
    ) {
        // Decoding into a reused workhorse must equal fresh decodes.
        let mut codec = PacketCodec::new();
        let mut workhorse = StreamPacket::new();
        for p in &packets {
            let bytes = codec.encode(p).unwrap();
            codec.decode_into(&bytes, &mut workhorse).unwrap();
            prop_assert_eq!(&workhorse, p);
        }
    }

    #[test]
    fn framing_roundtrips_arbitrary_batches(
        packets in proptest::collection::vec(arb_packet(), 0..20),
        link in any::<u64>(),
        base_seq in any::<u64>(),
        threshold in 0.0f64..=8.0,
    ) {
        let mut codec = PacketCodec::new();
        let messages: Vec<Vec<u8>> =
            packets.iter().map(|p| codec.encode(p).unwrap()).collect();
        let compressor = neptune::compress::SelectiveCompressor::new(threshold);
        let wire = encode_frame(link, base_seq, &messages, &compressor);
        let (frame, used) = decode_frame(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(frame.link_id, link);
        prop_assert_eq!(frame.base_seq, base_seq);
        prop_assert_eq!(frame.messages, messages);
    }

    #[test]
    fn frame_decoder_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&garbage);
    }

    #[test]
    fn partitioners_route_in_range(
        packet in arb_packet(),
        n in 1usize..40,
        key in "[a-z][a-z0-9_]{0,8}",
    ) {
        for scheme in [
            PartitioningScheme::Shuffle,
            PartitioningScheme::Global,
            PartitioningScheme::Fields(vec![key.clone()]),
        ] {
            let mut part = Partitioner::new(&scheme);
            match part.route(&packet, n) {
                Route::One(i) => prop_assert!(i < n),
                Route::All => {}
            }
        }
    }

    #[test]
    fn keyed_routing_is_deterministic(
        key_value in any::<u64>(),
        n in 1usize..40,
        noise in any::<u64>(),
    ) {
        // Two packets with the same key but different other fields must
        // co-locate.
        let mut a = StreamPacket::new();
        a.push_field("k", FieldValue::U64(key_value));
        a.push_field("noise", FieldValue::U64(noise));
        let mut b = StreamPacket::new();
        b.push_field("k", FieldValue::U64(key_value));
        b.push_field("noise", FieldValue::U64(noise.wrapping_add(1)));
        let mut part = Partitioner::new(&PartitioningScheme::by_field("k"));
        prop_assert_eq!(part.route(&a, n), part.route(&b, n));
    }
}

// End-to-end delivery with randomized configuration knobs. Kept to few
// cases because each spins a runtime.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn end_to_end_exact_delivery_random_configs(
        buffer_exp in 6u32..18,
        parallelism in 1usize..4,
        resources in 1usize..3,
        n in 500u64..3_000,
    ) {
        struct Src(u64, u64);
        impl StreamSource for Src {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.0 >= self.1 {
                    return SourceStatus::Exhausted;
                }
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.0));
                match ctx.emit(&p) {
                    Ok(()) => { self.0 += 1; SourceStatus::Emitted(1) }
                    Err(_) => SourceStatus::Exhausted,
                }
            }
        }
        struct Sink(Arc<AtomicU64>, Arc<AtomicU64>);
        impl StreamProcessor for Sink {
            fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.fetch_add(1, Ordering::Relaxed);
                self.1.fetch_add(p.get("n").unwrap().as_u64().unwrap(), Ordering::Relaxed);
            }
        }
        let count = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (c2, s2) = (count.clone(), sum.clone());
        let graph = GraphBuilder::new("prop-e2e")
            .source("src", move || Src(0, n))
            .processor_n("sink", parallelism, move || Sink(c2.clone(), s2.clone()))
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 1usize << buffer_exp,
            resources,
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        prop_assert!(job.await_sources(Duration::from_secs(60)));
        let metrics = job.stop();
        prop_assert_eq!(count.load(Ordering::Relaxed), n);
        prop_assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        prop_assert_eq!(metrics.total_seq_violations(), 0);
    }
}
