//! Cross-engine integration: the same workload through NEPTUNE and the
//! Storm-like baseline, verifying both deliver correctly while exhibiting
//! the structural differences the paper measures (per-tuple frames vs
//! batched frames; bounded vs unbounded queues).

use neptune::prelude::*;
use neptune::storm::{
    Bolt, BoltCollector, SpoutCollector, SpoutStatus, StormConfig, StormRuntime, StormSpout,
    TopologyBuilder,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: u64 = 20_000;

fn make_packet(n: u64) -> StreamPacket {
    let mut p = StreamPacket::new();
    p.push_field("n", FieldValue::U64(n)).push_field("pad", FieldValue::Bytes(vec![7u8; 42]));
    p
}

// ---- NEPTUNE side ----

struct NSource {
    next: u64,
}
impl StreamSource for NSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= N {
            return SourceStatus::Exhausted;
        }
        let p = make_packet(self.next);
        match ctx.emit(&p) {
            Ok(()) => {
                self.next += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct NForward;
impl StreamProcessor for NForward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct NSink(Arc<AtomicU64>, Arc<AtomicU64>);
impl StreamProcessor for NSink {
    fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
        self.1.fetch_add(p.get("n").unwrap().as_u64().unwrap(), Ordering::Relaxed);
    }
}

// ---- Storm side ----

struct SSpout {
    next: u64,
}
impl StormSpout for SSpout {
    fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
        if self.next >= N {
            return SpoutStatus::Exhausted;
        }
        c.emit(make_packet(self.next));
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}
struct SForward;
impl Bolt for SForward {
    fn execute(&mut self, t: &StreamPacket, c: &mut BoltCollector) {
        c.emit(t.clone());
    }
}
struct SSink(Arc<AtomicU64>, Arc<AtomicU64>);
impl Bolt for SSink {
    fn execute(&mut self, t: &StreamPacket, _c: &mut BoltCollector) {
        self.0.fetch_add(1, Ordering::Relaxed);
        self.1.fetch_add(t.get("n").unwrap().as_u64().unwrap(), Ordering::Relaxed);
    }
}

#[test]
fn both_engines_deliver_the_same_stream_exactly() {
    // NEPTUNE.
    let (n_count, n_sum) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (c2, s2) = (n_count.clone(), n_sum.clone());
    let graph = GraphBuilder::new("neptune-relay")
        .source("src", || NSource { next: 0 })
        .processor("relay", || NForward)
        .processor("sink", move || NSink(c2.clone(), s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(RuntimeConfig { buffer_bytes: 32 * 1024, ..Default::default() })
        .submit(graph)
        .unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    let n_metrics = job.stop();

    // Storm baseline.
    let (s_count, s_sum) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (c3, s3) = (s_count.clone(), s_sum.clone());
    let topo = TopologyBuilder::new("storm-relay")
        .set_spout("src", 1, || SSpout { next: 0 })
        .set_bolt("relay", 1, || SForward)
        .shuffle_grouping("src")
        .set_bolt("sink", 1, move || SSink(c3.clone(), s3.clone()))
        .shuffle_grouping("relay")
        .build()
        .unwrap();
    let s_job = StormRuntime::new(StormConfig::default()).submit(topo);
    assert!(s_job.await_quiescent(Duration::from_secs(120)));
    let s_metrics = s_job.stop();

    // Identical delivery.
    let expected_sum = N * (N - 1) / 2;
    assert_eq!(n_count.load(Ordering::Relaxed), N);
    assert_eq!(s_count.load(Ordering::Relaxed), N);
    assert_eq!(n_sum.load(Ordering::Relaxed), expected_sum);
    assert_eq!(s_sum.load(Ordering::Relaxed), expected_sum);

    // Structural contrast (the paper's mechanism): Storm frames every
    // tuple; NEPTUNE batches many packets per frame.
    let storm_frames = s_metrics.operator("src").frames_out;
    let neptune_frames = n_metrics.operator("src").frames_out;
    assert_eq!(storm_frames, N, "storm: one frame per tuple");
    assert!(
        neptune_frames < N / 20,
        "neptune batching too weak: {neptune_frames} frames for {N} packets"
    );

    // And the wire cost follows: per-tuple headers vs per-batch headers.
    let storm_bytes = s_metrics.operator("src").bytes_out;
    let neptune_bytes = n_metrics.operator("src").bytes_out;
    assert!(
        storm_bytes > neptune_bytes,
        "per-tuple overhead must exceed batched overhead: {storm_bytes} vs {neptune_bytes}"
    );
}

#[test]
fn storm_keyed_grouping_matches_neptune_semantics() {
    // Same keyed counting job on both engines -> identical per-key totals.
    use parking_lot::Mutex;
    use std::collections::HashMap;

    let keys = 13u64;
    let per_key = 700u64;

    // NEPTUNE keyed count.
    let n_counts: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    struct KeyedSource {
        next: u64,
        end: u64,
        keys: u64,
    }
    impl StreamSource for KeyedSource {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.next >= self.end {
                return SourceStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("k", FieldValue::U64(self.next % self.keys));
            match ctx.emit(&p) {
                Ok(()) => {
                    self.next += 1;
                    SourceStatus::Emitted(1)
                }
                Err(_) => SourceStatus::Exhausted,
            }
        }
    }
    struct KeyedCounter(Arc<Mutex<HashMap<u64, u64>>>);
    impl StreamProcessor for KeyedCounter {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            let k = p.get("k").unwrap().as_u64().unwrap();
            *self.0.lock().entry(k).or_insert(0) += 1;
        }
    }
    let nc = n_counts.clone();
    let graph = GraphBuilder::new("nk")
        .source("src", move || KeyedSource { next: 0, end: keys * per_key, keys })
        .processor_n("count", 4, move || KeyedCounter(nc.clone()))
        .link("src", "count", PartitioningScheme::by_field("k"))
        .build()
        .unwrap();
    let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(120)));
    job.stop();

    // Storm keyed count.
    let s_counts: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    struct KeyedSpout {
        next: u64,
        end: u64,
        keys: u64,
    }
    impl StormSpout for KeyedSpout {
        fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
            if self.next >= self.end {
                return SpoutStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("k", FieldValue::U64(self.next % self.keys));
            c.emit(p);
            self.next += 1;
            SpoutStatus::Emitted(1)
        }
    }
    struct KeyedBolt(Arc<Mutex<HashMap<u64, u64>>>);
    impl Bolt for KeyedBolt {
        fn execute(&mut self, t: &StreamPacket, _c: &mut BoltCollector) {
            let k = t.get("k").unwrap().as_u64().unwrap();
            *self.0.lock().entry(k).or_insert(0) += 1;
        }
    }
    let sc = s_counts.clone();
    let topo = TopologyBuilder::new("sk")
        .set_spout("src", 1, move || KeyedSpout { next: 0, end: keys * per_key, keys })
        .set_bolt("count", 4, move || KeyedBolt(sc.clone()))
        .fields_grouping("src", vec!["k".into()])
        .build()
        .unwrap();
    let s_job = StormRuntime::new(StormConfig::default()).submit(topo);
    assert!(s_job.await_quiescent(Duration::from_secs(120)));
    s_job.stop();

    let n_counts = n_counts.lock();
    let s_counts = s_counts.lock();
    assert_eq!(n_counts.len(), keys as usize);
    assert_eq!(s_counts.len(), keys as usize);
    for k in 0..keys {
        assert_eq!(n_counts[&k], per_key);
        assert_eq!(s_counts[&k], per_key);
    }
}
