//! End-to-end telemetry integration: a relay job run with telemetry
//! enabled must report per-operator end-to-end latency quantiles, the
//! four-stage breakdown (buffer wait, transport, schedule delay,
//! execution), a non-empty sampler time series, and snapshots in all
//! three export formats.
//!
//! The latency test pins down the Fig. 2 invariant: with a buffer far too
//! large to fill, *only the flush timer moves packets*, so observed
//! end-to-end p99 must stay within a small multiple of the configured
//! flush interval — the paper's argument that timers bound the latency
//! cost of application-level buffering (§III-B1).

use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct StampedSource {
    remaining: u64,
    /// Per-packet pause; a trickle keeps buffers from filling by size.
    pause: Duration,
}

impl StreamSource for StampedSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.remaining -= 1;
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("n", FieldValue::U64(self.remaining));
        ctx.emit(&p).unwrap();
        if !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        SourceStatus::Emitted(1)
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

struct Count(Arc<AtomicU64>);
impl StreamProcessor for Count {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn relay_graph(n: u64, pause: Duration, seen: Arc<AtomicU64>) -> neptune::core::Graph {
    GraphBuilder::new("telemetry-it")
        .source("src", move || StampedSource { remaining: n, pause })
        .processor("relay", || Forward)
        .processor("sink", move || Count(seen.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap()
}

#[test]
fn flush_timer_bounds_p99_latency() {
    // Fig. 2: huge buffer, 10 ms flush timer, trickle source — packets can
    // only move when the timer fires, so e2e latency is timer-dominated
    // and must stay bounded by a small multiple of the interval.
    let flush = Duration::from_millis(10);
    let seen = Arc::new(AtomicU64::new(0));
    let n = 300u64;
    let graph = relay_graph(n, Duration::from_millis(2), seen.clone());
    let config = RuntimeConfig {
        buffer_bytes: 1 << 20,
        flush_interval: flush,
        telemetry: TelemetryConfig::enabled(),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));
    let snap = job.telemetry().expect("telemetry enabled");
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), n);

    let sink = &snap.operators["sink"];
    assert_eq!(sink.e2e.count(), n);
    // Two timer-flushed hops plus scheduling. The ceiling is 25x the
    // interval: loose enough for a loaded CI machine running the whole
    // suite in parallel, but far below a broken flush timer, which would
    // hold packets until source close — the emission window alone is
    // 300 packets x 2 ms = 600 ms, so the earliest packets would show
    // p99 near that.
    let bound_us = 25 * flush.as_micros() as u64;
    assert!(
        sink.e2e.p99() < bound_us,
        "sink p99 {}µs exceeds flush-timer bound {}µs",
        sink.e2e.p99(),
        bound_us
    );
    // The breakdown must show where that time went: the relay's output
    // buffer held packets for roughly one flush interval.
    let relay_wait = &snap.operators["relay"].buffer_wait;
    assert!(relay_wait.count() > 0);
    assert!(
        relay_wait.max() >= flush.as_micros() as u64 / 2,
        "timer-flushed buffer wait {}µs implausibly small",
        relay_wait.max()
    );
}

#[test]
fn telemetry_reports_breakdown_sampler_and_all_export_formats() {
    let seen = Arc::new(AtomicU64::new(0));
    let n = 20_000u64;
    let graph = relay_graph(n, Duration::ZERO, seen.clone());
    let config = RuntimeConfig {
        buffer_bytes: 4096,
        telemetry: TelemetryConfig {
            sample_interval: Duration::from_millis(5),
            ..TelemetryConfig::enabled()
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));

    // Named queue gauges (one per processor instance).
    let gauges = job.queue_gauges();
    assert_eq!(gauges.len(), 2);
    assert!(gauges.iter().all(|g| g.capacity > 0));

    let snap = job.telemetry().expect("telemetry enabled");
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), n);

    // Every pipeline stage reports quantiles; the breakdown is complete.
    for op in ["relay", "sink"] {
        let t = &snap.operators[op];
        assert!(t.e2e.count() > 0, "{op}: empty e2e");
        assert!(t.e2e.p50() <= t.e2e.p95() && t.e2e.p95() <= t.e2e.p99());
        assert!(t.e2e.p99() <= t.e2e.max());
        assert!(t.transport.count() > 0, "{op}: empty transport");
        assert!(t.schedule_delay.count() > 0, "{op}: empty schedule_delay");
        assert!(t.execution.count() > 0, "{op}: empty execution");
    }
    assert!(snap.operators["src"].buffer_wait.count() > 0, "src: empty buffer_wait");
    assert!(snap.operators["relay"].buffer_wait.count() > 0, "relay: empty buffer_wait");

    // Sampler filled its time series while the job ran.
    assert!(!snap.series.is_empty());
    let (_, last) = snap.series.last().unwrap();
    assert_eq!(last.queues.len(), 2);

    // All three export formats are non-empty and structurally sound.
    let pretty = snap.render_pretty();
    assert!(pretty.contains("operator relay"));
    assert!(pretty.contains("p99="));

    let doc = neptune::core::json::parse(&snap.to_json()).expect("JSON export parses");
    let relay = doc.get("operators").unwrap().get("relay").unwrap();
    assert!(relay.get("e2e").unwrap().get("p99_micros").unwrap().as_u64().is_some());
    assert_eq!(relay.get("stages").unwrap().as_object().unwrap().len(), 4);

    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE neptune_e2e_latency_micros summary"));
    assert!(prom.contains("neptune_e2e_latency_micros{operator=\"sink\",quantile=\"0.99\"}"));
    assert!(prom.contains("neptune_stage_latency_micros{operator=\"sink\",stage=\"transport\""));
}

/// Minimal HTTP GET against the job's scrape listener; returns the
/// response head and body separately.
fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: neptune\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// ISSUE 7 tentpole: tracing at 1-in-1 must produce schema-valid Chrome
/// trace-event JSON covering the causal stage chain, and the live scrape
/// endpoint must serve `/metrics`, `/traces`, and `/events`.
#[test]
fn tracing_job_emits_causal_spans_and_serves_scrape_endpoints() {
    let seen = Arc::new(AtomicU64::new(0));
    let n = 4_000u64;
    let graph = relay_graph(n, Duration::ZERO, seen.clone());
    let config = RuntimeConfig {
        telemetry: TelemetryConfig {
            scrape_addr: Some("127.0.0.1:0".into()),
            ..TelemetryConfig::with_tracing(1)
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));
    assert_eq!(seen.load(Ordering::Relaxed), n);

    // Spans reached the ring and surfaced in the thread-model gauges.
    let tm = job.thread_model();
    assert!(tm.trace_spans > 0, "no spans recorded");

    // Chrome trace schema: displayTimeUnit plus a traceEvents array of
    // "M" thread-name metadata and "X" complete events with ts/dur and
    // the trace id in args.
    let trace = job.chrome_trace().expect("tracing enabled");
    let doc = neptune::core::json::parse(&trace).expect("chrome trace parses");
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let events = doc.get("traceEvents").unwrap().as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "empty trace");
    let mut stages = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().expect("ph string");
        assert!(ev.get("name").unwrap().as_str().is_some(), "missing name");
        assert!(ev.get("pid").unwrap().as_u64().is_some(), "missing pid");
        assert!(ev.get("tid").unwrap().as_u64().is_some(), "missing tid");
        match ph {
            "M" => {}
            "X" => {
                assert!(ev.get("ts").unwrap().as_f64().is_some(), "X without ts");
                assert!(ev.get("dur").unwrap().as_f64().is_some(), "X without dur");
                let id = ev.get("args").unwrap().get("trace_id").unwrap();
                assert!(id.as_str().unwrap().starts_with("0x"), "trace_id not hex");
                stages.insert(ev.get("name").unwrap().as_str().unwrap().to_string());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for want in ["buffer_wait", "schedule"] {
        assert!(stages.contains(want), "missing stage {want} in {stages:?}");
    }
    assert!(
        stages.contains("execution") || stages.contains("sink"),
        "no execution/sink stage in {stages:?}"
    );

    // The scrape listener serves all three routes and 404s the rest.
    let addr = job.scrape_addr().expect("scrape listener bound");
    let (head, body) = scrape(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    assert!(body.contains("# TYPE neptune_e2e_latency_micros summary"), "{body}");
    assert!(body.contains("neptune_trace_spans_total"), "{body}");

    let (head, body) = scrape(addr, "/traces");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let doc = neptune::core::json::parse(&body).expect("/traces parses");
    assert!(doc.get("traceEvents").unwrap().as_array().is_some());

    let (head, body) = scrape(addr, "/events");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let doc = neptune::core::json::parse(&body).expect("/events parses");
    assert!(doc.get("events").unwrap().as_array().is_some());

    let (head, _) = scrape(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    job.stop();
}

/// Satellite (c): lint the Prometheus exposition itself. Every sample
/// line must parse as `name[{labels}] value`, every series must be
/// TYPE-declared exactly once and *before* its first sample, and TYPE
/// kinds must be legal.
#[test]
fn prometheus_exposition_lint() {
    let seen = Arc::new(AtomicU64::new(0));
    let graph = relay_graph(2_000, Duration::ZERO, seen.clone());
    let config = RuntimeConfig {
        telemetry: TelemetryConfig::with_tracing(64),
        ha: HaConfig::enabled(),
        containment: ContainmentConfig::enabled(),
        checkpoint: CheckpointConfig::every(Duration::from_millis(5)),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));
    let snap = job.telemetry().expect("telemetry enabled");
    job.stop();

    let text = snap.render_prometheus();
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    let mut declared: std::collections::BTreeMap<String, usize> = Default::default();
    let mut sampled: std::collections::BTreeSet<String> = Default::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE without name").to_string();
            let kind = it.next().expect("TYPE without kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary" | "histogram"),
                "illegal TYPE {kind:?} for {name}"
            );
            assert!(it.next().is_none(), "trailing tokens in {line:?}");
            assert!(!sampled.contains(&name), "{name}: TYPE declared after first sample");
            *declared.entry(name).or_default() += 1;
        } else if !line.starts_with('#') && !line.is_empty() {
            let (series, value) = line.rsplit_once(' ').expect("sample line needs a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("unparsable value in {line:?}"));
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
            if let Some(idx) = series.find('{') {
                assert!(series.ends_with('}'), "unterminated label block in {line:?}");
                for pair in series[idx + 1..series.len() - 1].split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').expect("label must be k=\"v\"");
                    assert!(k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "unquoted label value in {line:?}"
                    );
                }
            }
            // Summaries sample through name_sum / name_count companions.
            let base = if declared.contains_key(name) {
                name
            } else {
                name.strip_suffix("_sum").or_else(|| name.strip_suffix("_count")).unwrap_or(name)
            };
            assert!(declared.contains_key(base), "{name}: sample without a TYPE declaration");
            sampled.insert(base.to_string());
        }
    }
    for (name, count) in &declared {
        assert_eq!(*count, 1, "{name}: TYPE declared {count} times");
    }
    // The observability families from this PR are present.
    for family in ["neptune_trace_spans_total", "neptune_sampler_dropped_total"] {
        assert!(declared.contains_key(family), "missing family {family}");
    }
    // With checkpointing enabled, the whole checkpoint family must be
    // declared and pass the same lint as everything else.
    for family in [
        "neptune_checkpoint_completed_total",
        "neptune_checkpoint_abandoned_total",
        "neptune_checkpoint_store_failures_total",
        "neptune_checkpoint_in_flight",
        "neptune_checkpoint_last_completed_id",
        "neptune_checkpoint_last_age_micros",
        "neptune_checkpoint_duration_micros",
        "neptune_checkpoint_size_bytes",
    ] {
        assert!(declared.contains_key(family), "missing family {family}");
    }
}
