//! End-to-end telemetry integration: a relay job run with telemetry
//! enabled must report per-operator end-to-end latency quantiles, the
//! four-stage breakdown (buffer wait, transport, schedule delay,
//! execution), a non-empty sampler time series, and snapshots in all
//! three export formats.
//!
//! The latency test pins down the Fig. 2 invariant: with a buffer far too
//! large to fill, *only the flush timer moves packets*, so observed
//! end-to-end p99 must stay within a small multiple of the configured
//! flush interval — the paper's argument that timers bound the latency
//! cost of application-level buffering (§III-B1).

use neptune::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct StampedSource {
    remaining: u64,
    /// Per-packet pause; a trickle keeps buffers from filling by size.
    pause: Duration,
}

impl StreamSource for StampedSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.remaining -= 1;
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("n", FieldValue::U64(self.remaining));
        ctx.emit(&p).unwrap();
        if !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        SourceStatus::Emitted(1)
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

struct Count(Arc<AtomicU64>);
impl StreamProcessor for Count {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn relay_graph(n: u64, pause: Duration, seen: Arc<AtomicU64>) -> neptune::core::Graph {
    GraphBuilder::new("telemetry-it")
        .source("src", move || StampedSource { remaining: n, pause })
        .processor("relay", || Forward)
        .processor("sink", move || Count(seen.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap()
}

#[test]
fn flush_timer_bounds_p99_latency() {
    // Fig. 2: huge buffer, 10 ms flush timer, trickle source — packets can
    // only move when the timer fires, so e2e latency is timer-dominated
    // and must stay bounded by a small multiple of the interval.
    let flush = Duration::from_millis(10);
    let seen = Arc::new(AtomicU64::new(0));
    let n = 300u64;
    let graph = relay_graph(n, Duration::from_millis(2), seen.clone());
    let config = RuntimeConfig {
        buffer_bytes: 1 << 20,
        flush_interval: flush,
        telemetry: TelemetryConfig::enabled(),
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));
    let snap = job.telemetry().expect("telemetry enabled");
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), n);

    let sink = &snap.operators["sink"];
    assert_eq!(sink.e2e.count(), n);
    // Two timer-flushed hops plus scheduling. The ceiling is 25x the
    // interval: loose enough for a loaded CI machine running the whole
    // suite in parallel, but far below a broken flush timer, which would
    // hold packets until source close — the emission window alone is
    // 300 packets x 2 ms = 600 ms, so the earliest packets would show
    // p99 near that.
    let bound_us = 25 * flush.as_micros() as u64;
    assert!(
        sink.e2e.p99() < bound_us,
        "sink p99 {}µs exceeds flush-timer bound {}µs",
        sink.e2e.p99(),
        bound_us
    );
    // The breakdown must show where that time went: the relay's output
    // buffer held packets for roughly one flush interval.
    let relay_wait = &snap.operators["relay"].buffer_wait;
    assert!(relay_wait.count() > 0);
    assert!(
        relay_wait.max() >= flush.as_micros() as u64 / 2,
        "timer-flushed buffer wait {}µs implausibly small",
        relay_wait.max()
    );
}

#[test]
fn telemetry_reports_breakdown_sampler_and_all_export_formats() {
    let seen = Arc::new(AtomicU64::new(0));
    let n = 20_000u64;
    let graph = relay_graph(n, Duration::ZERO, seen.clone());
    let config = RuntimeConfig {
        buffer_bytes: 4096,
        telemetry: TelemetryConfig {
            sample_interval: Duration::from_millis(5),
            ..TelemetryConfig::enabled()
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    assert!(job.settle(Duration::from_secs(30)));

    // Named queue gauges (one per processor instance).
    let gauges = job.queue_gauges();
    assert_eq!(gauges.len(), 2);
    assert!(gauges.iter().all(|g| g.capacity > 0));

    let snap = job.telemetry().expect("telemetry enabled");
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), n);

    // Every pipeline stage reports quantiles; the breakdown is complete.
    for op in ["relay", "sink"] {
        let t = &snap.operators[op];
        assert!(t.e2e.count() > 0, "{op}: empty e2e");
        assert!(t.e2e.p50() <= t.e2e.p95() && t.e2e.p95() <= t.e2e.p99());
        assert!(t.e2e.p99() <= t.e2e.max());
        assert!(t.transport.count() > 0, "{op}: empty transport");
        assert!(t.schedule_delay.count() > 0, "{op}: empty schedule_delay");
        assert!(t.execution.count() > 0, "{op}: empty execution");
    }
    assert!(snap.operators["src"].buffer_wait.count() > 0, "src: empty buffer_wait");
    assert!(snap.operators["relay"].buffer_wait.count() > 0, "relay: empty buffer_wait");

    // Sampler filled its time series while the job ran.
    assert!(!snap.series.is_empty());
    let (_, last) = snap.series.last().unwrap();
    assert_eq!(last.queues.len(), 2);

    // All three export formats are non-empty and structurally sound.
    let pretty = snap.render_pretty();
    assert!(pretty.contains("operator relay"));
    assert!(pretty.contains("p99="));

    let doc = neptune::core::json::parse(&snap.to_json()).expect("JSON export parses");
    let relay = doc.get("operators").unwrap().get("relay").unwrap();
    assert!(relay.get("e2e").unwrap().get("p99_micros").unwrap().as_u64().is_some());
    assert_eq!(relay.get("stages").unwrap().as_object().unwrap().len(), 4);

    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE neptune_e2e_latency_micros summary"));
    assert!(prom.contains("neptune_e2e_latency_micros{operator=\"sink\",quantile=\"0.99\"}"));
    assert!(prom.contains("neptune_stage_latency_micros{operator=\"sink\",stage=\"transport\""));
}
