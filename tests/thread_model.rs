//! Two-tier thread model integration tests (§IV-C).
//!
//! The refactor's end-to-end claims:
//! * **shutdown hygiene** — a job using every background facility
//!   (sources, processors, HA, telemetry) leaves no thread behind after
//!   `stop()`, and the IO tier drains its queue before exiting;
//! * **exact flush firing** — the per-endpoint flush deadline registers
//!   directly with the timer wheel, so observed buffering delay tracks
//!   the configured `flush_interval` to within 10%, not within the 50%
//!   a half-interval scan tick would allow;
//! * **O(1) idle cost** — thread count does not scale with source
//!   parallelism: 64 idle sources run on the same fixed IO tier as 1;
//! * **io_threads = 1 correctness** — a single IO thread still serves
//!   every pump, flusher, monitor, and sampler without starvation.
//!
//! Thread accounting reads `/proc/self/task/*/comm`. Every job thread is
//! prefixed by the graph name (`{graph}-res{i}-worker-{j}` workers,
//! `{graph}-io-{i}` IO tier), so short unique graph names keep the
//! prefix intact despite the kernel's 15-char comm truncation, and
//! concurrently running tests (with different graph names) cannot
//! pollute the counts.

use neptune::core::config::TransportMode;
use neptune::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Thread names of every task in this process, as the kernel reports
/// them (truncated to 15 chars).
fn thread_comms() -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for e in entries.flatten() {
            if let Ok(s) = std::fs::read_to_string(e.path().join("comm")) {
                out.push(s.trim().to_string());
            }
        }
    }
    out
}

fn count_prefixed(prefix: &str) -> usize {
    thread_comms().iter().filter(|c| c.starts_with(prefix)).count()
}

/// `/proc/<tid>/comm` is written by each spawned thread itself, so a
/// sample taken right after spawn can miss threads that exist but have
/// not yet renamed themselves. Poll until the count holds still.
fn settled_count_prefixed(prefix: &str) -> usize {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut last = count_prefixed(prefix);
    let mut stable = 0;
    while std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        let now = count_prefixed(prefix);
        if now == last && now > 0 {
            stable += 1;
            if stable >= 3 {
                break;
            }
        } else {
            stable = 0;
            last = now;
        }
    }
    last
}

struct Burst {
    remaining: u64,
}
impl StreamSource for Burst {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.remaining -= 1;
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.remaining));
        ctx.emit(&p).unwrap();
        SourceStatus::Emitted(1)
    }
}

/// Never exhausts, never emits: exercises the idle-park path until the
/// job is stopped.
struct Quiet {
    stopped: Arc<AtomicBool>,
}
impl StreamSource for Quiet {
    fn next(&mut self, _ctx: &mut OperatorContext) -> SourceStatus {
        if self.stopped.load(Ordering::Acquire) {
            SourceStatus::Exhausted
        } else {
            SourceStatus::Idle
        }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

struct Count(Arc<AtomicU64>);
impl StreamProcessor for Count {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// A job with every background facility active (source pumps, flush
/// tasks, the HA monitor, the telemetry sampler) must join every thread
/// it spawned, and the IO tier must drain before exit.
#[test]
fn shutdown_leaves_no_job_threads_and_drains_io_tier() {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("tmj")
        .source_n("src", 2, || Burst { remaining: 500 })
        .processor_n("relay", 2, || Forward)
        .processor("sink", move || Count(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        telemetry: TelemetryConfig::enabled(),
        ha: HaConfig::enabled(),
        io_threads: Some(2),
        ..Default::default()
    };
    let rt = LocalRuntime::new(config);
    let job = rt.submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(20)), "sources stalled");
    assert!(count_prefixed("tmj-") > 0, "job threads must be running and name-prefixed while live");
    let metrics = job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), 2 * 500, "packets lost");
    assert_eq!(metrics.thread_model.live_io_tasks, 0, "IO tasks leaked past stop()");
    assert_eq!(metrics.thread_model.queued_io_tasks, 0, "IO queue not drained at stop()");
    let leaked: Vec<String> =
        thread_comms().into_iter().filter(|c| c.starts_with("tmj-")).collect();
    assert!(leaked.is_empty(), "threads leaked after stop(): {leaked:?}");
}

/// One-packet-at-a-time traffic against a huge buffer: only the flush
/// timer moves data, so sink-observed latency is the flush firing time.
/// With deadlines registered directly on the timer wheel the median
/// firing error must stay under 10% of the configured interval — the
/// old half-interval scan tick sat at 50%.
#[test]
fn flush_fires_within_ten_percent_of_interval() {
    const INTERVAL: Duration = Duration::from_millis(20);
    const SAMPLES: usize = 5;
    let latencies = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));

    struct Paced {
        left: usize,
        last: Option<std::time::Instant>,
    }
    impl StreamSource for Paced {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            // Emit (or exhaust) only after the previous packet has
            // certainly flushed: each packet starts its own flush clock,
            // and exhaustion's force-flush can't clip the last deadline.
            if let Some(t) = self.last {
                if t.elapsed() < Duration::from_millis(60) {
                    return SourceStatus::Idle;
                }
            }
            if self.left == 0 {
                return SourceStatus::Exhausted;
            }
            self.left -= 1;
            self.last = Some(std::time::Instant::now());
            let mut p = StreamPacket::new();
            p.push_field("ts", FieldValue::Timestamp(neptune::core::now_micros()));
            ctx.emit(&p).unwrap();
            SourceStatus::Emitted(1)
        }
    }

    struct LatSink(Arc<parking_lot::Mutex<Vec<i64>>>);
    impl StreamProcessor for LatSink {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            if let Some(FieldValue::Timestamp(ts)) = p.get("ts") {
                self.0.lock().push(neptune::core::now_micros() as i64 - *ts as i64);
            }
        }
    }

    let l2 = latencies.clone();
    let graph = GraphBuilder::new("tmf")
        .source("src", || Paced { left: SAMPLES, last: None })
        .processor("sink", move || LatSink(l2.clone()))
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        buffer_bytes: 1 << 20, // never flushes by size
        flush_interval: INTERVAL,
        ..Default::default()
    };
    let rt = LocalRuntime::new(config);
    let job = rt.submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(20)), "source stalled");
    job.stop();

    let mut lat = latencies.lock().clone();
    assert_eq!(lat.len(), SAMPLES, "missing samples");
    lat.sort_unstable();
    let median_us = lat[SAMPLES / 2];
    let error_us = (median_us - INTERVAL.as_micros() as i64).abs();
    let bound_us = INTERVAL.as_micros() as i64 / 10;
    assert!(
        error_us < bound_us,
        "median flush firing error {error_us}µs exceeds 10% of {INTERVAL:?} \
         (bound {bound_us}µs; samples {lat:?})"
    );
}

/// The whole point of the IO tier: thread count is a function of
/// `io_threads`, not of source parallelism. 64 always-idle sources must
/// run on exactly as many job threads as 1.
#[test]
fn idle_thread_count_does_not_scale_with_sources() {
    fn spawn_idle_job(
        name: &'static str,
        sources: usize,
        rt: &LocalRuntime,
        stopped: &Arc<AtomicBool>,
    ) -> JobHandle {
        let s = stopped.clone();
        let graph = GraphBuilder::new(name)
            .source_n("src", sources, move || Quiet { stopped: s.clone() })
            .processor("sink", || Count(Arc::new(AtomicU64::new(0))))
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        rt.submit(graph).unwrap()
    }

    let config =
        RuntimeConfig { io_threads: Some(2), worker_threads: Some(2), ..Default::default() };
    let rt = LocalRuntime::new(config);

    let stop1 = Arc::new(AtomicBool::new(false));
    let job1 = spawn_idle_job("idj1-", 1, &rt, &stop1);
    let threads_for_1 = settled_count_prefixed("idj1-");
    stop1.store(true, Ordering::Release);
    job1.stop();

    let stop64 = Arc::new(AtomicBool::new(false));
    let job64 = spawn_idle_job("idj64-", 64, &rt, &stop64);
    let threads_for_64 = settled_count_prefixed("idj64-");
    let tm = job64.thread_model();
    stop64.store(true, Ordering::Release);
    job64.stop();

    assert!(threads_for_1 > 0 && threads_for_64 > 0, "jobs spawned no threads");
    assert_eq!(
        threads_for_64, threads_for_1,
        "thread count scaled with source parallelism (1 source: {threads_for_1}, \
         64 sources: {threads_for_64})"
    );
    assert_eq!(tm.io_threads, 2, "IO tier must honour io_threads");
    assert!(
        tm.live_io_tasks >= 64,
        "every idle source must be a live IO task, got {}",
        tm.live_io_tasks
    );
}

/// Readiness-driven TCP keeps the two-tier promise on the network path:
/// with the reactor enabled, a cross-resource TCP job runs **zero**
/// per-connection IO threads — the blocking path's `neptune-io-tx-*` /
/// `neptune-io-rx-*` / `neptune-io-accept-*` threads must not exist; all
/// socket traffic runs as IO-pool tasks plus one reactor thread.
#[test]
fn reactor_tcp_spawns_no_per_connection_threads() {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let stopped = Arc::new(AtomicBool::new(false));
    let s = stopped.clone();
    let graph = GraphBuilder::new("tmr")
        .source_n("src", 2, move || Quiet { stopped: s.clone() })
        .processor_n("relay", 2, || Forward)
        .processor("sink", move || Count(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        net_reactor: true, // explicit: independent of NEPTUNE_NET_REACTOR
        io_threads: Some(2),
        worker_threads: Some(2),
        ..Default::default()
    };
    let rt = LocalRuntime::new(config);
    let job = rt.submit(graph).unwrap();

    // Cross-resource TCP links are connected at submit time; on the
    // reactor path none of them may own a thread.
    let per_conn =
        thread_comms().into_iter().filter(|c| c.starts_with("neptune-io-")).collect::<Vec<_>>();
    assert!(per_conn.is_empty(), "reactor path spawned per-connection threads: {per_conn:?}");
    assert_eq!(settled_count_prefixed("tmr-reactor"), 1, "exactly one reactor thread");

    // Senders connected at submit; give the acceptor tasks a moment to
    // drain their readiness events before reading the gauges.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut tm = job.thread_model();
    while (tm.net_connections == 0 || tm.net_interests == 0) && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
        tm = job.thread_model();
    }
    assert!(tm.net_connections > 0, "TCP links must register as open connections");
    assert!(tm.net_interests > 0, "sockets must be registered with the reactor");

    stopped.store(true, Ordering::Release);
    let metrics = job.stop();
    assert!(
        metrics.thread_model.net_readiness_events > 0,
        "readiness events must have flowed through the reactor"
    );
    let leaked: Vec<String> = thread_comms()
        .into_iter()
        .filter(|c| c.starts_with("tmr-") || c.starts_with("neptune-io-"))
        .collect();
    assert!(leaked.is_empty(), "threads leaked after stop(): {leaked:?}");
}

/// A single IO thread must still serve all pumps, flush tasks, the HA
/// monitor, and the sampler: full relay completes exactly-once.
#[test]
fn single_io_thread_serves_full_job() {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("tm1")
        .source_n("src", 4, || Burst { remaining: 250 })
        .processor_n("relay", 2, || Forward)
        .processor("sink", move || Count(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        io_threads: Some(1),
        telemetry: TelemetryConfig::enabled(),
        ha: HaConfig::enabled(),
        ..Default::default()
    };
    let rt = LocalRuntime::new(config);
    let job = rt.submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(30)), "sources stalled on 1 IO thread");
    let metrics = job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), 4 * 250, "exactly-once violated");
    assert_eq!(metrics.thread_model.io_threads, 1);
    assert!(metrics.thread_model.io_parks > 0, "tasks never parked");
    assert!(metrics.thread_model.io_wakes > 0, "tasks never woke");
}
